//! Saleor (Python/Django): stock allocations and payment capture.
//!
//! Scenarios reproduced:
//! * **§3.2.1's Saleor listing** — `allocate`: `SELECT … FOR UPDATE` on
//!   the allocation and its stock inside one Read Committed transaction;
//!   the database locks *are* the ad hoc lock.
//! * **Payment capture** — guarded by Saleor's re-entrant `SETNX` lock;
//!   pairing it with a short TTL and a long critical section reproduces
//!   the Table 5b "overcharging" consequence.

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_core::locks::AdHocLock;
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};
use std::sync::Arc;
use std::time::Duration;

/// Create Saleor's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "stocks",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("qty", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "allocations",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("stock_id", ColumnType::Int),
                Column::new("item_id", ColumnType::Int),
                Column::new("qty", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("item_id")?,
    )?;
    db.create_table(Schema::new(
        "captures",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("order_id", ColumnType::Int),
            Column::new("authorized_cents", ColumnType::Int),
            Column::new("captured_cents", ColumnType::Int),
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("stocks"))
        .register(EntityDef::new("allocations"))
        .register(EntityDef::new("captures"));
    Ok(Orm::new(db.clone(), registry))
}

/// The Saleor application model.
pub struct Saleor {
    orm: Orm,
    /// The capture lock (public so tests can exercise re-entrancy).
    pub lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
    /// Stretches the capture critical section (past a lease TTL when the
    /// injected lock has one).
    pub capture_delay: Duration,
}

impl Saleor {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            lock,
            coord,
            mode,
            capture_delay: Duration::ZERO,
        }
    }

    /// Stretch the capture critical section by `d`.
    pub fn with_capture_delay(mut self, d: Duration) -> Self {
        self.capture_delay = d;
        self
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed a stock record.
    pub fn seed_stock(&self, stock_id: i64, qty: i64) -> Result<()> {
        self.orm
            .create("stocks", &[("id", stock_id.into()), ("qty", qty.into())])?;
        Ok(())
    }

    /// Seed a stock allocation for an item; returns its id.
    pub fn seed_allocation(&self, item_id: i64, stock_id: i64, qty: i64) -> Result<i64> {
        let obj = self.orm.create(
            "allocations",
            &[
                ("stock_id", stock_id.into()),
                ("item_id", item_id.into()),
                ("qty", qty.into()),
            ],
        )?;
        Ok(obj.id)
    }

    /// Seed an authorized-but-uncaptured payment.
    pub fn seed_capture(&self, order_id: i64, authorized_cents: i64) -> Result<()> {
        self.orm.create(
            "captures",
            &[
                ("id", order_id.into()),
                ("order_id", order_id.into()),
                ("authorized_cents", authorized_cents.into()),
                ("captured_cents", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// §3.2.1's listing: apply an item's allocation against its stock.
    /// Returns `false` when stock is insufficient (the listing's abort).
    pub fn allocate(&self, item_id: i64) -> Result<bool> {
        let alloc_schema = self.orm.db().schema("allocations")?;
        let stock_schema = self.orm.db().schema("stocks")?;
        let run = |t: &mut adhoc_storage::Transaction| -> std::result::Result<bool, DbError> {
            let allocs = t.select_for_update("allocations", &Predicate::eq("item_id", item_id))?;
            let Some((alloc_id, alloc)) = allocs.into_iter().next() else {
                return Ok(false);
            };
            let stock_id = alloc.get_int(&alloc_schema, "stock_id")?;
            let stock = t
                .get_for_update("stocks", stock_id)?
                .ok_or(DbError::NoSuchRow {
                    table: "stocks".into(),
                    id: stock_id,
                })?;
            let alloc_qty = alloc.get_int(&alloc_schema, "qty")?;
            let stock_qty = stock.get_int(&stock_schema, "qty")?;
            if alloc_qty > stock_qty {
                return Ok(false);
            }
            t.update("allocations", alloc_id, &[("qty", 0.into())])?;
            t.update(
                "stocks",
                stock_id,
                &[("qty", (stock_qty - alloc_qty).into())],
            )?;
            Ok(true)
        };
        match self.mode {
            // The ad hoc transaction *is* a Read Committed transaction
            // whose FOR UPDATE locks do the coordination (§3.2.1: "this
            // database transaction could be configured with a weak
            // isolation level such as Read Committed").
            Mode::AdHoc => Ok(self.orm.db().run_with_retries(
                IsolationLevel::ReadCommitted,
                DBT_RETRIES,
                run,
            )?),
            Mode::DatabaseTxn => Ok(self.orm.db().run_with_retries(
                IsolationLevel::Serializable,
                DBT_RETRIES,
                run,
            )?),
            Mode::Confluent => {
                // Escrow split of `stock.qty >= 0`: the stock decrement —
                // the hot, contended half — needs no FOR UPDATE lock at
                // all. A reservation against the escrow ledger guarantees
                // the budget, a commutative delta applies it, and only the
                // cold allocation row is OCC-validated (it guards against
                // double-consuming the *same* allocation, a per-item race,
                // not the hot per-stock one).
                let allocs = self.orm.transaction(|t| {
                    Ok(t.raw()
                        .scan("allocations", &Predicate::eq("item_id", item_id))?)
                })?;
                let Some((alloc_id, _)) = allocs.into_iter().next() else {
                    return Ok(false);
                };
                let mut holder: Option<adhoc_storage::EscrowReservation> = None;
                let ok = run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    // A retry re-runs the body; release the failed
                    // attempt's reservation first.
                    holder.take();
                    let alloc = occ
                        .read_fields(&self.orm, "allocations", alloc_id, &["stock_id", "qty"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "allocations".into(),
                            id: alloc_id,
                        })?;
                    let stock_id = alloc.get_int("stock_id")?;
                    let alloc_qty = alloc.get_int("qty")?;
                    if alloc_qty == 0 {
                        return Ok(false);
                    }
                    match self.coord.reserve("stocks", stock_id, "qty", alloc_qty) {
                        Ok(r) => holder = Some(r),
                        Err(OrmError::Db(DbError::EscrowExhausted { .. })) => return Ok(false),
                        Err(e) => return Err(e),
                    }
                    occ.stage_update("allocations", alloc_id, &[("qty", 0.into())]);
                    occ.add_delta("stocks", stock_id, "qty", -alloc_qty);
                    Ok(true)
                })?;
                if ok {
                    if let Some(r) = holder {
                        r.confirm();
                    }
                }
                Ok(ok)
            }
            Mode::Cured => {
                // §7 cure: §3.2.1 is the pattern the paper praises; the
                // cured variant keeps its shape but takes the locks through
                // the façade's portable row-lock hint instead of
                // hand-written FOR UPDATE, in one Read Committed
                // transaction. Same lock order as the original.
                Ok(self.orm.transaction(|t| {
                    let allocs = t
                        .raw()
                        .scan("allocations", &Predicate::eq("item_id", item_id))?;
                    let Some((alloc_id, _)) = allocs.into_iter().next() else {
                        return Ok(false);
                    };
                    self.coord.row_lock(t.raw(), "allocations", alloc_id)?;
                    let alloc = t.find_required("allocations", alloc_id)?;
                    let stock_id = alloc.get_int("stock_id")?;
                    self.coord.row_lock(t.raw(), "stocks", stock_id)?;
                    let stock = t.find_required("stocks", stock_id)?;
                    let alloc_qty = alloc.get_int("qty")?;
                    let stock_qty = stock.get_int("qty")?;
                    if alloc_qty > stock_qty {
                        return Ok(false);
                    }
                    t.raw()
                        .update("allocations", alloc_id, &[("qty", 0.into())])?;
                    t.raw().update(
                        "stocks",
                        stock_id,
                        &[("qty", (stock_qty - alloc_qty).into())],
                    )?;
                    Ok(true)
                })?)
            }
        }
    }

    /// Capture part of an authorized payment under the re-entrant KV lock.
    /// Returns `false` when the capture would exceed the authorization.
    pub fn capture_payment(&self, order_id: i64, cents: i64) -> Result<bool> {
        if self.mode.on_cured_layer() {
            // §7 cure for Table 5b overcharging: no lock and no TTL to
            // outlive — one optimistic validate-and-commit on exactly the
            // two cents columns. However long the stretch delay, a stale
            // read conflicts and retries instead of double-capturing.
            return Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                let capture = occ
                    .read_fields(
                        &self.orm,
                        "captures",
                        order_id,
                        &["authorized_cents", "captured_cents"],
                    )?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "captures".into(),
                        id: order_id,
                    })?;
                let authorized = capture.get_int("authorized_cents")?;
                let captured = capture.get_int("captured_cents")?;
                std::thread::sleep(self.capture_delay);
                if captured + cents > authorized {
                    return Ok(false);
                }
                occ.stage_update(
                    "captures",
                    order_id,
                    &[("captured_cents", (captured + cents).into())],
                );
                Ok(true)
            })?);
        }
        let guard = self.lock.lock(&format!("capture:{order_id}"))?;
        let capture = self.orm.find_required("captures", order_id)?;
        let authorized = capture.get_int("authorized_cents")?;
        let captured = capture.get_int("captured_cents")?;
        std::thread::sleep(self.capture_delay);
        let ok = if captured + cents <= authorized {
            self.orm.transaction(|t| {
                t.raw().update(
                    "captures",
                    order_id,
                    &[("captured_cents", (captured + cents).into())],
                )?;
                Ok(())
            })?;
            true
        } else {
            false
        };
        let _ = guard.unlock();
        Ok(ok)
    }

    /// Invariant: captured never exceeds authorized (Table 5b's Saleor
    /// "overcharging" is this invariant breaking).
    pub fn capture_within_authorization(&self, order_id: i64) -> Result<bool> {
        let c = self.orm.find_required("captures", order_id)?;
        Ok(c.get_int("captured_cents")? <= c.get_int("authorized_cents")?)
    }

    /// Current quantity of a stock record.
    pub fn stock_qty(&self, stock_id: i64) -> Result<i64> {
        Ok(self.orm.find_required("stocks", stock_id)?.get_int("qty")?)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// Saleor's boot-time recovery pass. Over-capture (Table 5b) is
/// *detection-only*: once money beyond the authorization has been taken,
/// no automatic write can honestly undo it — the finding stays in the
/// report for an operator (a refund flow) instead of a silent "fix".
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("saleor").rule(over_capture_rule())
}

/// Flag captures whose `captured_cents` exceeds `authorized_cents`.
fn over_capture_rule() -> CheckRule {
    let name = "saleor:capture-within-authorization";
    CheckRule::new(name, move |db| {
        let (Ok(rows), Ok(schema)) = (db.dump_table("captures"), db.schema("captures")) else {
            return Vec::new();
        };
        rows.iter()
            .filter_map(|(id, row)| {
                let captured = row.get_int(&schema, "captured_cents").ok()?;
                let authorized = row.get_int(&schema, "authorized_cents").ok()?;
                (captured > authorized).then(|| Violation {
                    rule: name.to_string(),
                    table: "captures".to_string(),
                    row_id: *id,
                    message: format!("captured {captured} cents of {authorized} authorized"),
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::KvSetNxLock;
    use adhoc_kv::{Client, Store};
    use adhoc_sim::{LatencyModel, RealClock};
    use adhoc_storage::EngineProfile;

    fn kv_lock(ttl: Option<Duration>) -> Arc<dyn AdHocLock> {
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        let mut lock = KvSetNxLock::new(kv).reentrant();
        if let Some(ttl) = ttl {
            lock = lock.with_ttl(ttl);
        }
        Arc::new(lock)
    }

    fn fixture(mode: Mode) -> Saleor {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        Saleor::new(orm, kv_lock(None), mode)
    }

    #[test]
    fn allocate_applies_once_and_respects_stock() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode);
            app.seed_stock(1, 10).unwrap();
            app.seed_allocation(100, 1, 4).unwrap();
            assert!(app.allocate(100).unwrap());
            assert_eq!(app.stock_qty(1).unwrap(), 6, "{mode:?}");
            // Second run: allocation qty is now 0, so it "succeeds" as a
            // no-op against stock.
            assert!(app.allocate(100).unwrap());
            assert_eq!(app.stock_qty(1).unwrap(), 6, "{mode:?}");
        }
    }

    #[test]
    fn allocate_refuses_oversized_allocations() {
        let app = fixture(Mode::AdHoc);
        app.seed_stock(1, 3).unwrap();
        app.seed_allocation(100, 1, 5).unwrap();
        assert!(!app.allocate(100).unwrap());
        assert_eq!(app.stock_qty(1).unwrap(), 3);
    }

    #[test]
    fn concurrent_allocations_never_oversell() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_stock(1, 10).unwrap();
        for i in 0..8 {
            app.seed_allocation(100 + i, 1, 3).unwrap();
        }
        let applied: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        // Each thread allocates a distinct item against the
                        // same stock row.
                        let before = app.stock_qty(1).unwrap();
                        let _ = before;
                        app.allocate(100 + i).unwrap() as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        // 10 units, 3 per allocation: exactly 3 can apply.
        assert_eq!(applied, 3);
        assert_eq!(app.stock_qty(1).unwrap(), 1);
    }

    #[test]
    fn capture_respects_authorization_with_correct_lock() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_capture(1, 100).unwrap();
        let successes: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let app = Arc::clone(&app);
                    s.spawn(move || app.capture_payment(1, 30).unwrap() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(successes, 3, "3 × 30 fits in 100, a 4th does not");
        assert!(app.capture_within_authorization(1).unwrap());
    }

    #[test]
    fn reentrant_lock_permits_nested_capture_flows() {
        // Saleor's re-entrancy: an outer checkout step already holding the
        // capture lock can call capture_payment without deadlocking.
        let app = fixture(Mode::AdHoc);
        app.seed_capture(1, 100).unwrap();
        let outer = app.lock.lock("capture:1").unwrap();
        assert!(app.capture_payment(1, 40).unwrap());
        outer.unlock().unwrap();
        assert!(app.capture_within_authorization(1).unwrap());
    }

    #[test]
    fn expired_lease_overcharges() {
        // Table 5b (Saleor, overcharging): TTL shorter than the capture
        // critical section, expiry unchecked.
        let app = Arc::new(
            Saleor::new(
                {
                    let db = Database::in_memory(EngineProfile::PostgresLike);
                    setup(&db).unwrap()
                },
                kv_lock(Some(Duration::from_millis(4))),
                Mode::AdHoc,
            )
            .with_capture_delay(Duration::from_millis(10)),
        );
        app.seed_capture(1, 100).unwrap();
        let successes: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let app = Arc::clone(&app);
                    s.spawn(move || app.capture_payment(1, 100).unwrap() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        // Each racer read captured = 0 and "successfully" captured the
        // full authorization: the customer was charged more than once even
        // though the column ends at 100 — the overcharge is the number of
        // captures, which a correct lock would hold to exactly one.
        assert!(
            successes > 1,
            "expired capture leases must double-capture (got {successes})"
        );
    }
    #[test]
    fn stock_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (1..=6)
            .map(|id| {
                app.seed_stock(id, 10).unwrap();
                crate::observed_footprint(app.orm(), |t| {
                    t.raw().update("stocks", id, &[("qty", 10.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
