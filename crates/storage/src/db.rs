//! The database: table registry, transaction lifecycle, commit protocol,
//! and SSI-style commit-time certification for the PostgreSQL-like profile.

use crate::engine::{AccessEvent, DbConfig, EngineProfile, IsolationLevel, StatementObserver};
use crate::error::{DbError, TxnId};
use crate::lock::{LockManager, LockStats};
use crate::predicate::ValueInterval;
use crate::schema::{Row, Schema};
use crate::table::{CommitTs, Table};
use crate::txn::Transaction;
use crate::value::Value;
use crate::Result;
use adhoc_sim::latency::Cost;
use adhoc_sim::{BackoffPolicy, FaultKind, FaultPlan, OpClass, RetryObserver, RetryPolicy};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A committed transaction's footprint, retained for SSI certification of
/// concurrent readers (pruned once no active snapshot predates it).
#[derive(Debug)]
pub(crate) struct CommittedTxn {
    pub commit_ts: CommitTs,
    /// Rows written: (table, primary key).
    pub rows: HashSet<(usize, i64)>,
    /// Indexed keys touched (old and new): (table, column, key value).
    pub keys: Vec<(usize, usize, Value)>,
}

/// Aggregate counters exposed for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (explicit, dropped, or failed).
    pub aborts: u64,
    /// Statements executed.
    pub statements: u64,
    /// First-committer/updater and certification aborts.
    pub serialization_failures: u64,
    /// Lock-manager counters.
    pub lock_stats: LockStats,
}

pub(crate) struct DbInner {
    pub config: DbConfig,
    /// Observer installed after construction (in addition to any in the
    /// config); used by monitors that attach to an existing database.
    pub late_observer: parking_lot::RwLock<Option<Arc<dyn StatementObserver>>>,
    /// Fault plan consulted once per commit attempt (class
    /// [`OpClass::DbCommit`]); installed after construction like
    /// `late_observer`.
    pub faults: parking_lot::RwLock<Option<FaultPlan>>,
    /// Observer of [`run_with_retries`](Database::run_with_retries)
    /// decisions (retries and give-ups); the hazard monitor attaches here.
    pub retry_observer: parking_lot::RwLock<Option<Arc<dyn RetryObserver>>>,
    pub tables: RwLock<Tables>,
    pub locks: LockManager,
    next_txn: AtomicU64,
    pub commit_counter: AtomicU64,
    /// Active transactions and their begin snapshots.
    pub active: Mutex<HashMap<TxnId, CommitTs>>,
    /// Recently committed footprints for certification, newest last.
    pub commit_log: Mutex<VecDeque<CommittedTxn>>,
    /// Serializes the certify→apply critical section.
    pub commit_gate: Mutex<()>,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    pub statements: AtomicU64,
    pub serialization_failures: AtomicU64,
}

#[derive(Default)]
pub(crate) struct Tables {
    pub by_name: HashMap<String, usize>,
    pub list: Vec<Table>,
}

impl Tables {
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchTable {
                table: name.to_string(),
            })
    }

    pub fn get(&self, id: usize) -> &Table {
        &self.list[id]
    }

    pub fn get_mut(&mut self, id: usize) -> &mut Table {
        &mut self.list[id]
    }
}

/// The database handle. Cheap to clone and share across threads.
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

impl Database {
    /// A database from an explicit configuration.
    pub fn new(config: DbConfig) -> Self {
        let timeout = config.lock_wait_timeout;
        Self {
            inner: Arc::new(DbInner {
                config,
                late_observer: parking_lot::RwLock::new(None),
                faults: parking_lot::RwLock::new(None),
                retry_observer: parking_lot::RwLock::new(None),
                tables: RwLock::new(Tables::default()),
                locks: LockManager::new(timeout),
                next_txn: AtomicU64::new(1),
                commit_counter: AtomicU64::new(0),
                active: Mutex::new(HashMap::new()),
                commit_log: Mutex::new(VecDeque::new()),
                commit_gate: Mutex::new(()),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                statements: AtomicU64::new(0),
                serialization_failures: AtomicU64::new(0),
            }),
        }
    }

    /// Shorthand: an in-memory database with the given profile.
    pub fn in_memory(profile: EngineProfile) -> Self {
        Self::new(DbConfig::in_memory(profile))
    }

    /// The configured engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.inner.config.profile
    }

    /// The engine's default isolation level.
    pub fn default_isolation(&self) -> IsolationLevel {
        self.inner.config.profile.default_isolation()
    }

    /// Create a table from a schema.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        let mut tables = self.inner.tables.write();
        if tables.by_name.contains_key(&schema.table) {
            return Err(DbError::DuplicateTable {
                table: schema.table,
            });
        }
        let id = tables.list.len();
        tables.by_name.insert(schema.table.clone(), id);
        tables.list.push(Table::new(id, schema));
        Ok(())
    }

    /// A clone of a table's schema.
    pub fn schema(&self, table: &str) -> Result<Schema> {
        let tables = self.inner.tables.read();
        let id = tables.resolve(table)?;
        Ok(tables.get(id).schema.clone())
    }

    /// Begin a transaction at the engine's default isolation level.
    pub fn begin(&self) -> Transaction {
        self.begin_with(self.default_isolation())
    }

    /// Begin a transaction at an explicit isolation level.
    pub fn begin_with(&self, iso: IsolationLevel) -> Transaction {
        // Transaction boundaries are preemption points under the
        // deterministic scheduler (no-op otherwise).
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbTxn);
        let id = self.inner.next_txn.fetch_add(1, Ordering::SeqCst);
        // Snapshot assignment and registration are atomic with respect to
        // [`log_commit`]'s pruning (both hold the `active` lock): a
        // transaction is always registered before any entry newer than its
        // snapshot can be pruned, so certification never misses a conflict.
        let snapshot = {
            let mut active = self.inner.active.lock();
            let snapshot = self.inner.commit_counter.load(Ordering::SeqCst);
            active.insert(id, snapshot);
            snapshot
        };
        Transaction::new(self.clone(), id, iso, snapshot)
    }

    /// Run a closure inside a transaction, committing on `Ok` and aborting
    /// on `Err`. No retry: callers handle retryable errors themselves
    /// (that choice is exactly what §3.4 of the paper catalogs).
    pub fn run<R>(
        &self,
        iso: IsolationLevel,
        f: impl FnOnce(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        let mut txn = self.begin_with(iso);
        match f(&mut txn) {
            Ok(r) => {
                txn.commit()?;
                Ok(r)
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }

    /// The default [`RetryPolicy`] for `max_retries` retries of a DBT:
    /// capped exponential backoff with deterministic jitter (seeded from
    /// the workspace default seed; per-loop streams decorrelate threads) so
    /// symmetric deadlock victims don't re-collide forever.
    pub fn retry_policy(max_retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: Some(max_retries as u32 + 1),
            backoff: BackoffPolicy::exponential(
                std::time::Duration::from_micros(25),
                std::time::Duration::from_micros(800),
            )
            .with_jitter(0.5)
            .with_seed(adhoc_sim::rng::DEFAULT_SEED),
            deadline: None,
        }
    }

    /// Like [`run`](Self::run), retrying on retryable errors (deadlock /
    /// serialization failure / lock timeout) up to `max_retries` times.
    /// Shorthand for [`run_with_policy`](Self::run_with_policy) with
    /// [`retry_policy(max_retries)`](Self::retry_policy).
    pub fn run_with_retries<R>(
        &self,
        iso: IsolationLevel,
        max_retries: usize,
        f: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        self.run_with_policy(iso, &Self::retry_policy(max_retries), f)
    }

    /// Like [`run`](Self::run), driven by an explicit [`RetryPolicy`]. Every
    /// retry and give-up is reported to any attached retry observer. On
    /// give-up the last error is returned, exactly as the studied DBT
    /// wrappers re-raise the driver exception.
    pub fn run_with_policy<R>(
        &self,
        iso: IsolationLevel,
        policy: &RetryPolicy,
        mut f: impl FnMut(&mut Transaction) -> Result<R>,
    ) -> Result<R> {
        let observer: Option<Arc<dyn RetryObserver>> = self.inner.retry_observer.read().clone();
        policy
            .run(
                "dbt",
                observer.as_deref(),
                DbError::is_retryable,
                |_attempt| self.run(iso, &mut f),
            )
            .map_err(|give_up| give_up.error)
    }

    /// Install a fault plan: every subsequent commit attempt consults it
    /// (class [`OpClass::DbCommit`]) and may be rejected ([`FaultKind::CommitFailed`])
    /// or become durable without an acknowledgement
    /// ([`FaultKind::CrashAfterDurable`]); both surface as
    /// [`DbError::ConnectionLost`].
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.inner.faults.write() = Some(plan);
    }

    /// Observe retry decisions made by
    /// [`run_with_policy`](Self::run_with_policy).
    pub fn attach_retry_observer(&self, observer: Arc<dyn RetryObserver>) {
        *self.inner.retry_observer.write() = Some(observer);
    }

    /// Consult the fault plan for one commit attempt.
    pub(crate) fn arm_commit_fault(&self) -> Option<FaultKind> {
        let plan = self.inner.faults.read().clone()?;
        plan.arm(OpClass::DbCommit).map(|f| f.kind)
    }

    /// Allocate a session id for session-scoped advisory locks (the
    /// PostgreSQL "explicit user locks" of §6 / Table 7a). The id shares
    /// the transaction-id space so the lock manager's deadlock detector
    /// covers advisory waits too.
    pub fn new_session(&self) -> SessionId {
        SessionId(self.inner.next_txn.fetch_add(1, Ordering::SeqCst))
    }

    /// Blockingly acquire a session-scoped advisory lock.
    pub fn advisory_lock(&self, session: SessionId, key: i64) -> Result<()> {
        self.inner.locks.lock_advisory(session.0, key)
    }

    /// Try to acquire a session-scoped advisory lock without blocking.
    pub fn try_advisory_lock(&self, session: SessionId, key: i64) -> bool {
        self.inner.locks.try_lock_advisory(session.0, key)
    }

    /// Release one level of a session-scoped advisory lock.
    pub fn advisory_unlock(&self, session: SessionId, key: i64) -> bool {
        self.inner.locks.unlock_advisory(session.0, key)
    }

    /// Release everything a session holds (disconnect).
    pub fn end_session(&self, session: SessionId) {
        self.inner.locks.release_all(session.0);
    }

    /// The latest committed version of a row, outside any transaction.
    /// Used by consistency checkers ("fsck", §3.4.2) and tests.
    pub fn latest_committed(&self, table: &str, id: i64) -> Result<Option<Row>> {
        let tables = self.inner.tables.read();
        let tid = tables.resolve(table)?;
        Ok(tables.get(tid).chain(id).and_then(|c| c.latest()).cloned())
    }

    /// All live rows of a table (latest committed versions), for checkers.
    pub fn dump_table(&self, table: &str) -> Result<Vec<(i64, Row)>> {
        let tables = self.inner.tables.read();
        let tid = tables.resolve(table)?;
        let t = tables.get(tid);
        Ok(t.all_ids()
            .into_iter()
            .filter_map(|id| {
                t.chain(id)
                    .and_then(|c| c.latest())
                    .map(|r| (id, r.clone()))
            })
            .collect())
    }

    /// Simulate an RDBMS crash: every active transaction is forgotten and
    /// its locks released; committed state survives (it was durable).
    /// Client-side `Transaction` handles become zombies whose commit fails
    /// with [`DbError::TxnNotActive`] — the "connection lost" exception the
    /// paper's §3.4.2 describes drivers throwing.
    pub fn simulate_crash(&self) {
        let ids: Vec<TxnId> = self.inner.active.lock().drain().map(|(id, _)| id).collect();
        for id in ids {
            self.inner.locks.release_all(id);
        }
        self.inner.commit_log.lock().clear();
    }

    /// Counters.
    pub fn stats(&self) -> DbStats {
        DbStats {
            commits: self.inner.commits.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
            statements: self.inner.statements.load(Ordering::Relaxed),
            serialization_failures: self.inner.serialization_failures.load(Ordering::Relaxed),
            lock_stats: self.inner.locks.stats(),
        }
    }

    /// Direct access to the lock manager (used by the toolkit crate for
    /// explicit lock hints and by tests).
    pub(crate) fn locks(&self) -> &LockManager {
        &self.inner.locks
    }

    /// Attach (or replace) a statement observer on a live database.
    pub fn attach_observer(&self, observer: Arc<dyn StatementObserver>) {
        *self.inner.late_observer.write() = Some(observer);
    }

    /// Deliver an access event to any installed observers.
    pub(crate) fn observe(&self, event: AccessEvent) {
        if let Some(obs) = &self.inner.config.observer {
            obs.on_event(&event);
        }
        if let Some(obs) = self.inner.late_observer.read().as_ref() {
            obs.on_event(&event);
        }
    }

    /// Charge one client↔server round trip.
    pub(crate) fn charge_statement(&self) {
        // Every simulated SQL round trip is a potential preemption point
        // under the deterministic scheduler (no-op otherwise).
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::DbStatement);
        self.inner.statements.fetch_add(1, Ordering::Relaxed);
        self.inner
            .config
            .latency
            .charge(&*self.inner.config.clock, Cost::SqlRoundTrip);
    }

    /// Charge the durable-commit flush (only when configured durable).
    pub(crate) fn charge_flush(&self) {
        if self.inner.config.durable {
            self.inner
                .config
                .latency
                .charge(&*self.inner.config.clock, Cost::DurableFlush);
        }
    }

    /// Certify a PostgreSQL-like Serializable transaction against the
    /// commit log: abort when any transaction that committed after our
    /// snapshot wrote a row we read or touched an indexed key inside a
    /// range we scanned (rw-antidependency; backward validation).
    pub(crate) fn certify(
        &self,
        txn: TxnId,
        snapshot: CommitTs,
        read_rows: &HashSet<(usize, i64)>,
        read_ranges: &[(usize, usize, ValueInterval)],
    ) -> Result<()> {
        let log = self.inner.commit_log.lock();
        for committed in log.iter().rev() {
            if committed.commit_ts <= snapshot {
                break;
            }
            if committed.rows.iter().any(|r| read_rows.contains(r)) {
                return Err(DbError::SerializationFailure {
                    txn,
                    reason: "rw-antidependency on a read row".into(),
                });
            }
            for (table, column, key) in &committed.keys {
                if read_ranges
                    .iter()
                    .any(|(t, c, iv)| t == table && c == column && iv.contains(key))
                {
                    return Err(DbError::SerializationFailure {
                        txn,
                        reason: "rw-antidependency on a scanned range".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Append a committed footprint and prune entries no active snapshot
    /// can still conflict with.
    pub(crate) fn log_commit(&self, entry: CommittedTxn) {
        // Hold the `active` lock across the prune decision so no new
        // transaction can register an older snapshot concurrently (see
        // [`begin_with`]). Lock order: active -> commit_log, nowhere
        // reversed.
        let active = self.inner.active.lock();
        let min_snapshot = active.values().copied().min().unwrap_or(entry.commit_ts);
        let mut log = self.inner.commit_log.lock();
        log.push_back(entry);
        while log
            .front()
            .map(|e| e.commit_ts <= min_snapshot)
            .unwrap_or(false)
        {
            log.pop_front();
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("profile", &self.inner.config.profile)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Opaque session identifier for advisory locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub(crate) TxnId);
