//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Gap-granularity conflict detection on/off** — the PBC scan+insert
//!    pattern at Serializable (range certification aborts) vs Read
//!    Committed (no ranges): the cost of false conflicts.
//! 2. **KV round-trip count** — `SETNX` vs `WATCH/MULTI` lock cycles across
//!    simulated RTTs: why Figure 2's KV bars split.
//! 3. **Early exclusive locking vs upgrade-on-write** — the §3.3.1 RMW
//!    deadlock: `FOR UPDATE` first vs read-then-write at MySQL
//!    Serializable, under contention.

use adhoc_core::locks::{AdHocLock, KvMultiLock, KvSetNxLock};
use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RealClock};
use adhoc_storage::{
    Column, ColumnType, Database, DbConfig, EngineProfile, IsolationLevel, Predicate, Schema,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn lan() -> LatencyModel {
    LatencyModel {
        kv_round_trip: Duration::from_micros(25),
        sql_round_trip: Duration::from_micros(50),
        durable_flush: Duration::from_micros(100),
        ..LatencyModel::zero()
    }
}

/// Ablation 1: scan-empty-then-insert over a non-unique index, contended
/// on the open tail interval, at two isolation levels.
fn bench_gap_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gap_certification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (label, iso) in [
        ("serializable_ranges", IsolationLevel::Serializable),
        ("read_committed_no_ranges", IsolationLevel::ReadCommitted),
    ] {
        group.bench_function(label, |b| {
            let db = Database::new(DbConfig::networked(
                EngineProfile::PostgresLike,
                RealClock::shared(),
                lan(),
            ));
            db.create_table(
                Schema::new(
                    "payments",
                    vec![
                        Column::new("id", ColumnType::Int),
                        Column::new("order_id", ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap()
                .with_index("order_id")
                .unwrap(),
            )
            .unwrap();
            let next = AtomicI64::new(1);
            let db2 = db.clone();
            // Background contender inserting into the same tail interval.
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let contender = std::thread::spawn(move || {
                let mut k = 1_000_000i64;
                while !stop2.load(Ordering::Relaxed) {
                    k += 1;
                    let _ = db2.run_with_retries(IsolationLevel::ReadCommitted, 100, |t| {
                        t.insert("payments", &[("order_id", k.into())]).map(|_| ())
                    });
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            b.iter(|| {
                let order = next.fetch_add(1, Ordering::Relaxed) + 2_000_000;
                db.run_with_retries(iso, 1000, |t| {
                    let existing = t.scan("payments", &Predicate::eq("order_id", order))?;
                    if existing.is_empty() {
                        t.insert("payments", &[("order_id", order.into())])?;
                    }
                    Ok(())
                })
                .unwrap();
            });
            stop.store(true, Ordering::Relaxed);
            contender.join().unwrap();
        });
    }
    group.finish();
}

/// Ablation 2: the two Redis lock protocols across network RTTs.
fn bench_kv_rtt_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kv_round_trips");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for rtt_us in [10u64, 100, 400] {
        let latency = LatencyModel {
            kv_round_trip: Duration::from_micros(rtt_us),
            ..LatencyModel::zero()
        };
        let setnx = KvSetNxLock::new(Client::new(Store::new(), RealClock::shared(), latency));
        let multi = KvMultiLock::new(Client::new(Store::new(), RealClock::shared(), latency));
        group.bench_function(BenchmarkId::new("SETNX", rtt_us), |b| {
            b.iter(|| setnx.lock("k").unwrap().unlock().unwrap())
        });
        group.bench_function(BenchmarkId::new("MULTI", rtt_us), |b| {
            b.iter(|| multi.lock("k").unwrap().unlock().unwrap())
        });
    }
    group.finish();
}

/// Ablation 3: RMW with early exclusive locks vs shared-then-upgrade,
/// under two contending threads on a MySQL-like engine.
fn bench_early_lock_vs_upgrade(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rmw_locking");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (label, early_lock) in [("early_for_update", true), ("upgrade_on_write", false)] {
        group.bench_function(label, |b| {
            let db = Database::new(DbConfig::networked(
                EngineProfile::MySqlLike,
                RealClock::shared(),
                lan(),
            ));
            db.create_table(
                Schema::new(
                    "skus",
                    vec![
                        Column::new("id", ColumnType::Int),
                        Column::new("qty", ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.insert("skus", &[("id", 1.into()), ("qty", i64::MAX.into())])
                    .map(|_| ())
            })
            .unwrap();
            let rmw = |db: &Database| {
                db.run_with_retries(IsolationLevel::Serializable, 1000, |t| {
                    let row = if early_lock {
                        t.get_for_update("skus", 1)?
                    } else {
                        t.get("skus", 1)?
                    }
                    .expect("sku");
                    let qty = row.values[1].as_int();
                    t.update("skus", 1, &[("qty", (qty - 1).into())])
                })
                .unwrap();
            };
            // One background contender creates the §3.3.1 deadlock recipe.
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let db2 = db.clone();
            let contender = std::thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    db2.run_with_retries(IsolationLevel::Serializable, 1000, |t| {
                        let row = t.get("skus", 1)?.expect("sku");
                        let qty = row.values[1].as_int();
                        t.update("skus", 1, &[("qty", (qty - 1).into())])
                    })
                    .unwrap();
                    std::thread::sleep(Duration::from_micros(100));
                }
            });
            b.iter(|| rmw(&db));
            stop.store(true, Ordering::Relaxed);
            contender.join().unwrap();
        });
    }
    group.finish();
}

/// Ablation 4: per-operation isolation hints (Table 7b). One measured
/// configuration per side; throughput and abort counts are reported in
/// detail by `paper-eval ablation-isolation` — here Criterion tracks the
/// wall-clock of a full run of each configuration.
fn bench_per_op_isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_per_op_isolation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for hinted in [false, true] {
        let label = if hinted {
            "per_op_rc_hint"
        } else {
            "all_serializable"
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let row =
                    adhoc_bench::isolation_ablation::run_isolation_ablation_config(hinted, 100);
                criterion::black_box(row)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gap_granularity,
    bench_kv_rtt_sweep,
    bench_early_lock_vs_upgrade,
    bench_per_op_isolation
);
criterion_main!(benches);
