//! Broadleaf Commerce (Java/Hibernate): carts, items, SKUs.
//!
//! Scenarios reproduced:
//! * **Figure 1a** — `add_to_cart` keeps `carts.total` consistent with the
//!   cart's items using a single app-side map lock over the associated
//!   accesses (carts + items, §3.3.1).
//! * **Table 6 `RMW`** — `check_out` decrements SKU stock: the ad hoc
//!   variant takes an exclusive lock *before* the first read; the database
//!   variant runs at MySQL Serializable and deadlocks on the
//!   shared→exclusive upgrade under contention (§3.3.1, §5.2).
//! * **§4.2 omitted critical operations** (issue \[67\]) — the
//!   `omit_sku_coordination` switch leaves the SKU RMW outside the lock,
//!   so `quantity + sold` drifts from the initial stock.
//! * The lock itself is injected, so pairing this model with
//!   [`MemLruLock`](adhoc_core::locks::MemLruLock) reproduces the evicted
//!   session-lock bug (issue \[66\]).

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_core::locks::AdHocLock;
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{Column, ColumnType, Database, IsolationLevel, Predicate, Schema, Value};
use std::sync::Arc;

/// Create Broadleaf's tables and entity registry on a database.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "carts",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("total", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "items",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("cart_id", ColumnType::Int),
                Column::new("qty", ColumnType::Int),
                Column::new("price", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("cart_id")?,
    )?;
    db.create_table(Schema::new(
        "skus",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("quantity", ColumnType::Int),
            Column::new("sold", ColumnType::Int),
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("carts"))
        .register(EntityDef::new("items"))
        .register(EntityDef::new("skus"));
    Ok(Orm::new(db.clone(), registry))
}

/// The Broadleaf application model.
pub struct Broadleaf {
    orm: Orm,
    lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
    omit_sku_coordination: bool,
    /// Application-server CPU burned per request attempt (see
    /// [`crate::busy_work`]). Zero by default.
    pub request_cpu_work: std::time::Duration,
}

impl Broadleaf {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            lock,
            coord,
            mode,
            omit_sku_coordination: false,
            request_cpu_work: std::time::Duration::ZERO,
        }
    }

    /// Set the per-attempt application-server CPU cost.
    pub fn with_request_cpu_work(mut self, d: std::time::Duration) -> Self {
        self.request_cpu_work = d;
        self
    }

    /// Fault injection (§4.2, issue \[67\]): the check-out ad hoc transaction
    /// "omits coordination for all SKU-related operations".
    pub fn omit_sku_coordination(mut self) -> Self {
        self.omit_sku_coordination = true;
        self
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed a cart with no items.
    pub fn seed_cart(&self, cart_id: i64) -> Result<()> {
        self.orm
            .create("carts", &[("id", cart_id.into()), ("total", 0.into())])?;
        Ok(())
    }

    /// Seed a SKU with initial stock.
    pub fn seed_sku(&self, sku_id: i64, quantity: i64) -> Result<()> {
        self.orm.create(
            "skus",
            &[
                ("id", sku_id.into()),
                ("quantity", quantity.into()),
                ("sold", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Figure 1a: append an item and recompute the cart total.
    pub fn add_to_cart(&self, cart_id: i64, price: i64, qty: i64) -> Result<()> {
        match self.mode {
            Mode::AdHoc => {
                let guard = self.lock.lock(&format!("cart:{cart_id}"))?;
                // Statements run in their own (default-isolation) ORM
                // transactions — the coordination is the map lock.
                self.orm.transaction(|t| {
                    t.create(
                        "items",
                        &[
                            ("cart_id", cart_id.into()),
                            ("qty", qty.into()),
                            ("price", price.into()),
                        ],
                    )?;
                    Ok(())
                })?;
                let total = self.recompute_total(cart_id)?;
                // Request-processing work between the read and the write —
                // the window the cart lock exists to protect.
                std::thread::yield_now();
                self.orm.transaction(|t| {
                    let mut cart = t.find_required("carts", cart_id)?;
                    cart.set("total", total)?;
                    t.save(&mut cart)?;
                    Ok(())
                })?;
                guard.unlock()?;
                Ok(())
            }
            Mode::DatabaseTxn => {
                let iso = serializable();
                self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
                    t.insert(
                        "items",
                        &[
                            ("cart_id", cart_id.into()),
                            ("qty", qty.into()),
                            ("price", price.into()),
                        ],
                    )?;
                    let items = t.scan("items", &Predicate::eq("cart_id", cart_id))?;
                    let schema = self.orm.db().schema("items")?;
                    let mut total = 0;
                    for (_, item) in &items {
                        total += item.get_int(&schema, "qty")? * item.get_int(&schema, "price")?;
                    }
                    t.update("carts", cart_id, &[("total", total.into())])?;
                    Ok(())
                })?;
                Ok(())
            }
            Mode::Cured | Mode::Confluent => {
                // §7 cure: the cart total depends on a predicate scan, so
                // the façade serializes writers per cart and one default-
                // isolation transaction makes insert + recompute atomic —
                // no Fig. 1a lost-total window, no Serializable deadlocks.
                let guard = self.coord.user_lock(&format!("cart:{cart_id}"))?;
                self.orm.transaction(|t| {
                    t.create(
                        "items",
                        &[
                            ("cart_id", cart_id.into()),
                            ("qty", qty.into()),
                            ("price", price.into()),
                        ],
                    )?;
                    let items = t.raw().scan("items", &Predicate::eq("cart_id", cart_id))?;
                    let schema = self.orm.db().schema("items")?;
                    let mut total = 0;
                    for (_, item) in &items {
                        total += item.get_int(&schema, "qty")? * item.get_int(&schema, "price")?;
                    }
                    t.raw()
                        .update("carts", cart_id, &[("total", total.into())])?;
                    Ok(())
                })?;
                guard.unlock()?;
                Ok(())
            }
        }
    }

    fn recompute_total(&self, cart_id: i64) -> Result<i64> {
        let schema = self.orm.db().schema("items")?;
        let items = self
            .orm
            .transaction(|t| Ok(t.raw().scan("items", &Predicate::eq("cart_id", cart_id))?))?;
        let mut total = 0;
        for (_, item) in &items {
            total += item.get_int(&schema, "qty")? * item.get_int(&schema, "price")?;
        }
        Ok(total)
    }

    /// Table 6 `RMW`: purchase `qty` units of a SKU. Returns `false` when
    /// stock is insufficient.
    pub fn check_out(&self, sku_id: i64, qty: i64) -> Result<bool> {
        match self.mode {
            Mode::AdHoc => {
                // Non-critical request work happens before the lock and is
                // pipelined with other requests' critical sections (§5.2).
                crate::busy_work(self.request_cpu_work);
                let guard = if self.omit_sku_coordination {
                    None
                } else {
                    Some(self.lock.lock(&format!("sku:{sku_id}"))?)
                };
                let result = self.rmw_sku(sku_id, qty)?;
                if let Some(g) = guard {
                    g.unlock()?;
                }
                Ok(result)
            }
            Mode::DatabaseTxn => {
                let iso = serializable();
                Ok(self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
                    // Each retry re-executes the whole request handler.
                    crate::busy_work(self.request_cpu_work);
                    let sku = t
                        .get("skus", sku_id)?
                        .ok_or(adhoc_storage::DbError::NoSuchRow {
                            table: "skus".into(),
                            id: sku_id,
                        })?;
                    let schema = self.orm.db().schema("skus")?;
                    let quantity = sku.get_int(&schema, "quantity")?;
                    let sold = sku.get_int(&schema, "sold")?;
                    if quantity < qty {
                        return Ok(false);
                    }
                    t.update(
                        "skus",
                        sku_id,
                        &[
                            ("quantity", (quantity - qty).into()),
                            ("sold", (sold + qty).into()),
                        ],
                    )?;
                    Ok(true)
                })?)
            }
            Mode::Cured | Mode::Confluent => {
                // §7 cure: one optimistic validate-and-commit per attempt,
                // field-granular on exactly the two columns the decision
                // reads. `omit_sku_coordination` is irrelevant here — there
                // is no separate lock for a developer to forget (§4.2).
                crate::busy_work(self.request_cpu_work);
                Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    let sku = occ
                        .read_fields(&self.orm, "skus", sku_id, &["quantity", "sold"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "skus".into(),
                            id: sku_id,
                        })?;
                    let quantity = sku.get_int("quantity")?;
                    let sold = sku.get_int("sold")?;
                    if quantity < qty {
                        return Ok(false);
                    }
                    occ.stage_update(
                        "skus",
                        sku_id,
                        &[
                            ("quantity", (quantity - qty).into()),
                            ("sold", (sold + qty).into()),
                        ],
                    );
                    Ok(true)
                })?)
            }
        }
    }

    /// The uncoordinated (or lock-guarded) SKU read–modify–write.
    fn rmw_sku(&self, sku_id: i64, qty: i64) -> Result<bool> {
        let sku = self.orm.find_required("skus", sku_id)?;
        let quantity = sku.get_int("quantity")?;
        let sold = sku.get_int("sold")?;
        if quantity < qty {
            return Ok(false);
        }
        // Widen the race window the way real request handlers do (business
        // logic between read and write).
        std::thread::yield_now();
        self.orm.transaction(|t| {
            t.raw().update(
                "skus",
                sku_id,
                &[
                    ("quantity", (quantity - qty).into()),
                    ("sold", (sold + qty).into()),
                ],
            )?;
            Ok(())
        })?;
        Ok(true)
    }

    /// Invariant (Fig. 1a): the cart total equals the sum of its items.
    pub fn cart_total_consistent(&self, cart_id: i64) -> Result<bool> {
        let total = self.orm.find_required("carts", cart_id)?.get_int("total")?;
        Ok(total == self.recompute_total(cart_id)?)
    }

    /// Invariant (issue \[67\]): stock conservation — `quantity + sold`
    /// equals the seeded amount, and quantity never goes negative.
    pub fn sku_conserved(&self, sku_id: i64, seeded: i64) -> Result<bool> {
        let sku = self.orm.find_required("skus", sku_id)?;
        let quantity = sku.get_int("quantity")?;
        let sold = sku.get_int("sold")?;
        Ok(quantity >= 0 && quantity + sold == seeded)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// Broadleaf's boot-time recovery pass: a crash between the item insert
/// and the `carts.total` update (the two writes Fig. 1a's map lock pairs)
/// leaves the denormalized total behind its items; boot recomputes it.
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("broadleaf").rule(cart_total_rule())
}

/// Flag carts whose stored total differs from the sum of their items, and
/// rewrite the total from the items on fix.
fn cart_total_rule() -> CheckRule {
    let name = "broadleaf:carts.total";
    let expected = |db: &Database, cart_id: i64| -> Option<i64> {
        let schema = db.schema("items").ok()?;
        let items = db.dump_table("items").ok()?;
        let mut total = 0;
        for (_, item) in &items {
            if item.get_int(&schema, "cart_id").ok()? == cart_id {
                total +=
                    item.get_int(&schema, "qty").ok()? * item.get_int(&schema, "price").ok()?;
            }
        }
        Some(total)
    };
    CheckRule::new(name, move |db| {
        let (Ok(carts), Ok(schema)) = (db.dump_table("carts"), db.schema("carts")) else {
            return Vec::new();
        };
        carts
            .iter()
            .filter_map(|(id, row)| {
                let stored = row.get_int(&schema, "total").ok()?;
                let want = expected(db, *id)?;
                (stored != want).then(|| Violation {
                    rule: name.to_string(),
                    table: "carts".to_string(),
                    row_id: *id,
                    message: format!("total = {stored}, items sum to {want}"),
                })
            })
            .collect()
    })
    .with_fix(move |db, v| {
        let Some(want) = expected(db, v.row_id) else {
            return false;
        };
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update(&v.table, v.row_id, &[("total", want.into())])
        })
        .is_ok()
    })
}

/// The DBT isolation for Broadleaf's workloads (Table 6: MySQL,
/// Serializable — weaker levels lose updates, per §3.1.1's footnote).
fn serializable() -> IsolationLevel {
    IsolationLevel::Serializable
}

/// Convenience: split a `Value` vector row into ints (test helper).
pub fn int_at(row: &adhoc_storage::Row, idx: usize) -> i64 {
    match row.at(idx) {
        Value::Int(v) => *v,
        other => panic!("expected Int at {idx}, found {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::{MemLock, MemLruLock};
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode) -> Broadleaf {
        let db = Database::in_memory(EngineProfile::MySqlLike);
        let orm = setup(&db).unwrap();
        let app = Broadleaf::new(orm, Arc::new(MemLock::new()), mode);
        app.seed_cart(1).unwrap();
        app.seed_sku(1, 1000).unwrap();
        app
    }

    #[test]
    fn add_to_cart_updates_total() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode);
            app.add_to_cart(1, 7, 2).unwrap();
            app.add_to_cart(1, 8, 3).unwrap();
            assert!(app.cart_total_consistent(1).unwrap(), "{mode:?}");
            assert_eq!(
                app.orm
                    .find_required("carts", 1)
                    .unwrap()
                    .get_int("total")
                    .unwrap(),
                7 * 2 + 8 * 3
            );
        }
    }

    #[test]
    fn concurrent_add_to_cart_stays_consistent_adhoc() {
        let app = Arc::new(fixture(Mode::AdHoc));
        std::thread::scope(|s| {
            for t in 0..6 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for i in 0..10 {
                        app.add_to_cart(1, (t * 10 + i) % 9 + 1, 1).unwrap();
                    }
                });
            }
        });
        assert!(app.cart_total_consistent(1).unwrap());
    }

    #[test]
    fn concurrent_add_to_cart_stays_consistent_dbt() {
        let app = Arc::new(fixture(Mode::DatabaseTxn));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..8 {
                        app.add_to_cart(1, 5, 1).unwrap();
                    }
                });
            }
        });
        assert!(app.cart_total_consistent(1).unwrap());
    }

    #[test]
    fn check_out_decrements_and_respects_stock() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let db = Database::in_memory(EngineProfile::MySqlLike);
            let orm = setup(&db).unwrap();
            let app = Broadleaf::new(orm, Arc::new(MemLock::new()), mode);
            app.seed_sku(1, 3).unwrap();
            assert!(app.check_out(1, 2).unwrap());
            assert!(
                !app.check_out(1, 2).unwrap(),
                "{mode:?} must refuse oversell"
            );
            assert!(app.check_out(1, 1).unwrap());
            assert!(app.sku_conserved(1, 3).unwrap());
        }
    }

    #[test]
    fn concurrent_checkout_conserves_stock_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let db = Database::in_memory(EngineProfile::MySqlLike);
            let orm = setup(&db).unwrap();
            let app = Arc::new(Broadleaf::new(orm, Arc::new(MemLock::new()), mode));
            app.seed_sku(1, 10_000).unwrap();
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..25 {
                            app.check_out(1, 1).unwrap();
                        }
                    });
                }
            });
            assert!(app.sku_conserved(1, 10_000).unwrap(), "{mode:?}");
            let sku = app.orm.find_required("skus", 1).unwrap();
            assert_eq!(sku.get_int("sold").unwrap(), 200, "{mode:?}");
        }
    }

    #[test]
    fn omitted_sku_coordination_loses_updates() {
        // §4.2 [67]: leaving the SKU RMW uncoordinated breaks conservation.
        let db = Database::in_memory(EngineProfile::MySqlLike);
        let orm = setup(&db).unwrap();
        let app = Arc::new(
            Broadleaf::new(orm, Arc::new(MemLock::new()), Mode::AdHoc).omit_sku_coordination(),
        );
        app.seed_sku(1, 100_000).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..50 {
                        app.check_out(1, 1).unwrap();
                    }
                });
            }
        });
        let sku = app.orm.find_required("skus", 1).unwrap();
        let q = sku.get_int("quantity").unwrap();
        let sold = sku.get_int("sold").unwrap();
        assert!(
            q + sold != 100_000 || sold != 400,
            "uncoordinated RMW virtually always drifts (q={q} sold={sold})"
        );
    }

    #[test]
    fn lru_evicted_lock_breaks_cart_consistency() {
        // §4.1.1 [66]: a tiny LRU lock table evicts held cart locks, so two
        // carts' operations interleave with a third stealing the entry.
        for _round in 0..50 {
            let db = Database::in_memory(EngineProfile::MySqlLike);
            let orm = setup(&db).unwrap();
            let lru = Arc::new(MemLruLock::new(1));
            let app = Arc::new(Broadleaf::new(orm, Arc::clone(&lru) as _, Mode::AdHoc));
            app.seed_sku(1, 100_000).unwrap();
            app.seed_sku(2, 100_000).unwrap();
            let barrier = Arc::new(std::sync::Barrier::new(4));
            let per_thread = 40;
            std::thread::scope(|s| {
                // Two threads check out SKU 1; two more churn SKU 2 so the
                // capacity-1 table keeps evicting SKU 1's *held* lock,
                // letting the SKU-1 threads overlap in their RMW.
                for sku in [1, 1, 2, 2] {
                    let app = Arc::clone(&app);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        barrier.wait();
                        for _ in 0..per_thread {
                            assert!(app.check_out(sku, 1).unwrap());
                        }
                    });
                }
            });
            // Every check-out reported success, so `sold` should equal the
            // number of successful calls; an evicted (revoked) lock lets
            // two RMWs interleave and lose an update.
            let sold_1 = app
                .orm
                .find_required("skus", 1)
                .unwrap()
                .get_int("sold")
                .unwrap();
            let sold_2 = app
                .orm
                .find_required("skus", 2)
                .unwrap()
                .get_int("sold")
                .unwrap();
            if sold_1 != 2 * per_thread || sold_2 != 2 * per_thread {
                assert!(lru.evictions() > 0);
                return; // lost update demonstrated
            }
        }
        panic!("with capacity-1 LRU eviction a checkout update must be lost");
    }
    #[test]
    fn cart_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (2..=7)
            .map(|id| {
                app.seed_cart(id).unwrap();
                crate::observed_footprint(&app.orm, |t| {
                    t.raw().update("carts", id, &[("total", 0.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
