//! Criterion bench regenerating Figure 2: lock()+unlock() cycle latency
//! for the seven lock implementations.
//!
//! Uses the scaled-down latency model (one tenth of the paper deployment)
//! with a real clock, so criterion measures true elapsed time including the
//! simulated network/flush costs. The orders-of-magnitude gaps of Figure 2
//! appear directly in the report.

use adhoc_core::locks::{
    AdHocLock, DbTableLock, KvMultiLock, KvSetNxLock, MemLock, MemLruLock, SfuLock, SyncLock,
};
use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RealClock};
use adhoc_storage::{Database, DbConfig, EngineProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_lock_cycle(c: &mut Criterion) {
    let latency = LatencyModel::paper_scaled_down();
    let mut group = c.benchmark_group("figure2_lock_unlock_cycle");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    let locks: Vec<(&str, Box<dyn AdHocLock>)> = vec![
        ("SYNC", Box::new(SyncLock::new())),
        ("MEM", Box::new(MemLock::new())),
        ("MEM-LRU", Box::new(MemLruLock::new(1024))),
        (
            "KV-SETNX",
            Box::new(KvSetNxLock::new(Client::new(
                Store::new(),
                RealClock::shared(),
                latency,
            ))),
        ),
        (
            "KV-MULTI",
            Box::new(KvMultiLock::new(Client::new(
                Store::new(),
                RealClock::shared(),
                latency,
            ))),
        ),
        (
            "SFU",
            Box::new(SfuLock::new(Database::new(DbConfig::networked(
                EngineProfile::PostgresLike,
                RealClock::shared(),
                latency,
            )))),
        ),
        (
            "DB",
            Box::new(DbTableLock::new(Database::new(DbConfig::networked(
                EngineProfile::PostgresLike,
                RealClock::shared(),
                latency,
            )))),
        ),
    ];

    for (label, lock) in &locks {
        // Warm up (creates backing rows where needed).
        lock.lock("bench").unwrap().unlock().unwrap();
        group.bench_function(*label, |b| {
            b.iter(|| {
                let guard = lock.lock("bench").unwrap();
                guard.unlock().unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lock_cycle);
criterion_main!(benches);
