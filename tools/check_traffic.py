#!/usr/bin/env python3
"""Traffic-SLO gate over a fresh BENCH_traffic.json run.

The open-loop traffic ablation runs entirely on the virtual clock, so its
numbers are deterministic — the same seed produces the same curves on any
hardware, and this gate demands the *shape* the harness exists to
reproduce:

  1. Sub-saturation SLO: at every Poisson load level at or below 0.9x
     saturation, every front-door arm serves p99 within the SLO. Below
     saturation there is no excuse for latency.
  2. Graceful degradation: past saturation (the highest swept level, 2x
     by default) the `full` front door holds a goodput plateau — at
     least half of its own best level. Refusing and shedding at the
     edge keeps the work it does accept fast.
  3. Metastable collapse: the same overload drives `naive` goodput
     (completions within the SLO) to at most 15% of its own sub-
     saturation best — it still serves thousands of requests, all late.
  4. Breakers are not an overload cure: `breaker_only` collapses like
     naive. A breaker guards a failing backend, not a healthy backend
     drowning in queued work.
  5. Bursty arrivals at nominal load stay within the SLO for `full` —
     deadline shedding absorbs the bursts.

Tolerance: TRAFFIC_GATE_TOL (fractional, default 0.1) pads the ratio
checks; determinism means it exists only to keep the gate from pinning
exact floats.

Usage: check_traffic.py <BENCH_traffic.json>
Exits non-zero when the shape is violated.
"""

import json
import os
import sys


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    slo_ms = doc["slo_ms"]
    rows = doc["rows"]
    tol = float(os.environ.get("TRAFFIC_GATE_TOL", "0.1"))
    configs = sorted({r["config"] for r in rows})
    failures = []

    def poisson(config):
        return [r for r in rows if r["config"] == config and r["arrivals"] == "poisson"]

    # -- Check 1: everyone meets the SLO below saturation.
    for config in configs:
        for r in poisson(config):
            if r["load_x"] > 0.9:
                continue
            ok = r["p99_ms"] <= slo_ms * (1.0 + tol)
            status = "ok" if ok else "FAIL"
            print(
                f"[{status}] {config} @{r['load_x']:.2f}x: p99 "
                f"{r['p99_ms']:.1f}ms vs SLO {slo_ms}ms"
            )
            if not ok:
                failures.append(f"{config} sub-saturation p99")

    # -- Checks 2-4: the plateau-vs-collapse shape past saturation.
    for config in configs:
        levels = poisson(config)
        peak = max(r["goodput_rps"] for r in levels)
        worst = max(levels, key=lambda r: r["load_x"])
        ratio = worst["goodput_rps"] / peak if peak > 0 else 0.0
        if config == "full":
            need = 0.5 * (1.0 - tol)
            ok = ratio >= need
            label = f">= {need:.2f} of its peak (plateau)"
        else:
            cap = 0.15 * (1.0 + tol)
            ok = ratio <= cap
            label = f"<= {cap:.2f} of its peak (collapse)"
        status = "ok" if ok else "FAIL"
        print(
            f"[{status}] {config} @{worst['load_x']:.2f}x: goodput "
            f"{worst['goodput_rps']:.0f}/s = {ratio:.2f} of peak "
            f"{peak:.0f}/s, demanded {label}"
        )
        if not ok:
            failures.append(f"{config} past-saturation goodput shape")

    # -- Check 5: full absorbs bursts within the SLO at nominal load.
    bursty = [
        r for r in rows if r["config"] == "full" and r["arrivals"] == "bursty"
    ]
    for r in bursty:
        ok = r["p99_ms"] <= slo_ms * (1.0 + tol)
        status = "ok" if ok else "FAIL"
        print(
            f"[{status}] full bursty @{r['load_x']:.2f}x: p99 "
            f"{r['p99_ms']:.1f}ms vs SLO {slo_ms}ms"
        )
        if not ok:
            failures.append("full bursty p99")
    if not bursty:
        print("[FAIL] no full/bursty row present")
        failures.append("missing bursty row")

    if failures:
        print("traffic gate FAILED: " + "; ".join(failures))
        sys.exit(1)
    print("traffic gate passed")


if __name__ == "__main__":
    main()
