//! The study's classification vocabulary.
//!
//! These enums are the paper's §3–§4 taxonomy, shared between the toolkit
//! (which implements the mechanisms) and the `adhoc-study` corpus (which
//! tags each of the 91 cases with them). Keeping them in one place means
//! the corpus can only reference mechanisms the toolkit actually has.

use std::fmt;

/// Pessimistic (lock-based, 65/91 cases) vs. optimistic (validation-based,
/// 26/91 cases) — §3's top-level split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// Lock-based coordination (2PL-flavoured).
    Pessimistic,
    /// Validation-based coordination (OCC-flavoured).
    Optimistic,
}

/// The seven lock implementations of §3.2.1 / Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockImpl {
    /// Language-runtime monitor (Java `synchronized`; SCM Suite, Broadleaf).
    Sync,
    /// In-memory concurrent map lock table (Broadleaf).
    Mem,
    /// In-memory map with LRU eviction of lock entries (Broadleaf).
    MemLru,
    /// Redis `SETNX` (Mastodon, Saleor — the latter re-entrant).
    KvSetNx,
    /// Redis `WATCH`/`GET`/`MULTI`/`SET` protocol (Discourse).
    KvMulti,
    /// Database `SELECT … FOR UPDATE` (Spree, Saleor, Redmine).
    Sfu,
    /// Dedicated database lock table with a boot UUID (Broadleaf).
    DbTable,
}

impl LockImpl {
    /// Label used by Figure 2.
    pub fn label(self) -> &'static str {
        match self {
            LockImpl::Sync => "SYNC",
            LockImpl::Mem => "MEM",
            LockImpl::MemLru => "MEM-LRU",
            LockImpl::KvSetNx => "KV-SETNX",
            LockImpl::KvMulti => "KV-MULTI",
            LockImpl::Sfu => "SFU",
            LockImpl::DbTable => "DB",
        }
    }

    /// All seven, in Figure 2's order.
    pub fn all() -> [LockImpl; 7] {
        [
            LockImpl::Sync,
            LockImpl::Mem,
            LockImpl::MemLru,
            LockImpl::KvSetNx,
            LockImpl::KvMulti,
            LockImpl::Sfu,
            LockImpl::DbTable,
        ]
    }
}

impl fmt::Display for LockImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The two validation implementations of §3.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationImpl {
    /// ORM-provided (Active Record `lock_version`): atomic by construction.
    OrmAssisted,
    /// Hand-written by application developers; atomicity is on them.
    HandCrafted,
}

/// Coordination granularities of §3.3 / Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One exclusive lock taken before a read–modify–write.
    Rmw,
    /// One lock covering associatively-accessed rows (carts + items).
    AssociatedAccess,
    /// Column-level coordination (separate lock namespaces per column).
    ColumnBased,
    /// Predicate-level coordination (lock exact equality predicates).
    PredicateBased,
}

impl Granularity {
    /// Table 6 / Figure 3 label.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Rmw => "RMW",
            Granularity::AssociatedAccess => "AA",
            Granularity::ColumnBased => "CBC",
            Granularity::PredicateBased => "PBC",
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Failure-handling strategies of §3.4.1 / Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureHandling {
    /// Return an error to the user; nothing persisted (19/26 optimistic).
    ErrorReturn,
    /// Enclose in a database transaction and abort on validation failure.
    DbtRollback,
    /// Hand-written compensation statements.
    ManualRollback,
    /// Repair (“roll forward”): redo only the affected operations.
    Repair,
}

impl FailureHandling {
    /// Figure 4 label (see `adhoc-bench`'s `strategy_label` for the
    /// DBT-S mapping used there).
    pub fn label(self) -> &'static str {
        match self {
            FailureHandling::ErrorReturn => "ERROR",
            FailureHandling::DbtRollback => "DBT-W",
            FailureHandling::ManualRollback => "MANUAL",
            FailureHandling::Repair => "REPAIR",
        }
    }
}

/// Correctness-issue categories of Table 5a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueCategory {
    /// Locking primitive implementation/usage issues (36 cases, 6 apps).
    IncorrectLockPrimitive,
    /// Non-atomic validate-and-commit (11 cases, 3 apps).
    NonAtomicValidateCommit,
    /// Omitting critical operations from the scope (11 cases, 4 apps).
    OmittedCriticalOperations,
    /// Forgetting the ad hoc transaction entirely (5 cases, 3 apps).
    ForgottenTransaction,
    /// Incomplete transaction repair (1 case, 1 app).
    IncompleteRepair,
    /// Not rolling back after crashes (3 cases, 1 app).
    NoRollbackAfterCrash,
}

impl IssueCategory {
    /// All six categories, in Table 5a's row order.
    pub fn all() -> [IssueCategory; 6] {
        [
            IssueCategory::IncorrectLockPrimitive,
            IssueCategory::NonAtomicValidateCommit,
            IssueCategory::OmittedCriticalOperations,
            IssueCategory::ForgottenTransaction,
            IssueCategory::IncompleteRepair,
            IssueCategory::NoRollbackAfterCrash,
        ]
    }

    /// Table 5a's top-level grouping.
    pub fn group(self) -> IssueGroup {
        match self {
            IssueCategory::IncorrectLockPrimitive | IssueCategory::NonAtomicValidateCommit => {
                IssueGroup::IncorrectSyncPrimitives
            }
            IssueCategory::OmittedCriticalOperations | IssueCategory::ForgottenTransaction => {
                IssueGroup::IncorrectScope
            }
            IssueCategory::IncompleteRepair | IssueCategory::NoRollbackAfterCrash => {
                IssueGroup::IncorrectFailureHandling
            }
        }
    }

    /// Table 5a's description column.
    pub fn description(self) -> &'static str {
        match self {
            IssueCategory::IncorrectLockPrimitive => "Locking primitive impl./usage issues.",
            IssueCategory::NonAtomicValidateCommit => "Non-atomic validate-and-commit.",
            IssueCategory::OmittedCriticalOperations => "Omitting critical operations.",
            IssueCategory::ForgottenTransaction => "Forgetting ad hoc transactions.",
            IssueCategory::IncompleteRepair => "Incomplete transaction repair.",
            IssueCategory::NoRollbackAfterCrash => "Not rolling back after crashes.",
        }
    }
}

/// Table 5a's three issue families (§4.1–§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueGroup {
    /// §4.1: wrong lock implementations/usage, non-atomic validation.
    IncorrectSyncPrimitives,
    /// §4.2: omitted operations, forgotten transactions.
    IncorrectScope,
    /// §4.3: incomplete repair, missing crash rollback.
    IncorrectFailureHandling,
}

impl IssueGroup {
    /// Table 5a's category-group label.
    pub fn label(self) -> &'static str {
        match self {
            IssueGroup::IncorrectSyncPrimitives => "Incorrect sync. primitives",
            IssueGroup::IncorrectScope => "Incorrect ad hoc trans. scope",
            IssueGroup::IncorrectFailureHandling => "Incorrect failure handling",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_impl_labels_match_figure2() {
        let labels: Vec<&str> = LockImpl::all().iter().map(|l| l.label()).collect();
        assert_eq!(
            labels,
            vec!["SYNC", "MEM", "MEM-LRU", "KV-SETNX", "KV-MULTI", "SFU", "DB"]
        );
    }

    #[test]
    fn issue_categories_group_like_table5a() {
        use IssueCategory::*;
        assert_eq!(
            IncorrectLockPrimitive.group(),
            IssueGroup::IncorrectSyncPrimitives
        );
        assert_eq!(
            NonAtomicValidateCommit.group(),
            IssueGroup::IncorrectSyncPrimitives
        );
        assert_eq!(
            OmittedCriticalOperations.group(),
            IssueGroup::IncorrectScope
        );
        assert_eq!(ForgottenTransaction.group(), IssueGroup::IncorrectScope);
        assert_eq!(
            IncompleteRepair.group(),
            IssueGroup::IncorrectFailureHandling
        );
        assert_eq!(
            NoRollbackAfterCrash.group(),
            IssueGroup::IncorrectFailureHandling
        );
        assert_eq!(IssueCategory::all().len(), 6);
    }

    #[test]
    fn granularity_labels_match_table6() {
        assert_eq!(Granularity::Rmw.to_string(), "RMW");
        assert_eq!(Granularity::AssociatedAccess.to_string(), "AA");
        assert_eq!(Granularity::ColumnBased.to_string(), "CBC");
        assert_eq!(Granularity::PredicateBased.to_string(), "PBC");
    }
}
