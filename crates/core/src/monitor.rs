//! Runtime hazard detection — the §6 "development support tools" proposal.
//!
//! The paper closes by calling for tools that "help developers locate ad
//! hoc transactions, identify potential correctness and performance issues,
//! and fix them by providing reliable suggestions". [`AccessMonitor`] is a
//! runtime detector for the three §4 issue families it can observe:
//!
//! * **Lock-after-read** (§4.1.1, the Discourse re-read omission): a row is
//!   read *before* the lock is acquired, then written under the lock,
//!   without a re-read inside the critical section — the classic
//!   uncoordinated read–modify–write.
//! * **Expired-lease release** (§4.1.1, the Mastodon TTL bug): a guard is
//!   released after its lease already lapsed, meaning the critical section
//!   ran unprotected for a while.
//! * **Mixed coordination** (§4.2, the forgotten JSON handlers): a table is
//!   written both inside and outside ad hoc critical sections — a strong
//!   hint that some code path forgot the transaction.
//!
//! Attach the monitor to a [`Database`] (it implements
//! [`StatementObserver`]) and wrap each ad hoc lock with
//! [`AccessMonitor::wrap_lock`]; events are correlated per thread, matching
//! the studied applications' one-thread-per-request execution model.

use crate::locks::{AdHocLock, Guard, LockError, LockGuard};
use adhoc_sim::{FaultPlan, FaultRecord, RetryObserver};
use adhoc_storage::{AccessEvent, Database, StatementObserver};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

/// A detected coordination hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// Read outside the critical section, written inside it, never re-read
    /// under the lock.
    LockAfterRead {
        /// The lock the writer held.
        lock_key: String,
        /// Table of the suspicious row.
        table: String,
        /// Primary key of the suspicious row.
        row: i64,
    },
    /// A lease-based guard was already invalid when released.
    ExpiredLeaseRelease {
        /// The lock whose lease lapsed.
        lock_key: String,
    },
    /// A table is written both with and without an ad hoc lock held.
    MixedCoordination {
        /// The inconsistently coordinated table.
        table: String,
    },
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::LockAfterRead {
                lock_key,
                table,
                row,
            } => write!(
                f,
                "lock-after-read: {table} #{row} read before acquiring {lock_key:?} and \
                 written under it without a re-read (uncoordinated RMW)"
            ),
            Hazard::ExpiredLeaseRelease { lock_key } => write!(
                f,
                "expired lease: guard for {lock_key:?} was no longer valid at release"
            ),
            Hazard::MixedCoordination { table } => write!(
                f,
                "mixed coordination: table {table:?} written both inside and outside \
                 ad hoc critical sections"
            ),
        }
    }
}

/// One retry-loop decision observed by the monitor (via
/// [`RetryObserver`]): either a scheduled re-attempt or a give-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryEvent {
    /// A retryable failure; the loop backs off and re-attempts.
    Retried {
        /// Which loop (e.g. `"KV-SETNX"`, `"dbt"`, `"occ"`).
        label: String,
        /// Zero-based attempt that just failed.
        attempt: u32,
        /// Backoff delay before the next attempt.
        delay: Duration,
    },
    /// The loop gave up (budget or deadline spent, or hard error).
    GaveUp {
        /// Which loop gave up.
        label: String,
        /// Total attempts made.
        attempts: u32,
        /// Rendered final error.
        reason: String,
    },
}

/// Per-thread tracking state.
#[derive(Debug, Default)]
struct ThreadState {
    /// Lock keys currently held by this thread, acquisition-ordered.
    held: Vec<String>,
    /// Rows read while holding no lock (candidates for lock-after-read).
    unlocked_reads: HashSet<(String, i64)>,
    /// Rows read while holding at least one lock (clears the candidates).
    locked_reads: HashSet<(String, i64)>,
}

#[derive(Debug, Default)]
struct MonitorState {
    threads: HashMap<ThreadId, ThreadState>,
    /// Tables written with/without locks held (for mixed coordination).
    locked_writes: BTreeSet<String>,
    unlocked_writes: BTreeSet<String>,
    hazards: Vec<Hazard>,
    /// Deduplication of reported hazards.
    reported: BTreeSet<String>,
    /// Every fault injected by an observed [`FaultPlan`], arrival order.
    faults: Vec<FaultRecord>,
    /// Every retry/give-up decision from observed retry loops.
    retries: Vec<RetryEvent>,
}

impl MonitorState {
    fn report(&mut self, hazard: Hazard) {
        let key = format!("{hazard:?}");
        if self.reported.insert(key) {
            self.hazards.push(hazard);
        }
    }
}

/// The runtime detector. Cheap to clone (shared state inside).
#[derive(Clone, Default)]
pub struct AccessMonitor {
    state: Arc<Mutex<MonitorState>>,
}

impl AccessMonitor {
    /// A fresh monitor with no recorded state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach this monitor to a database so every statement is observed.
    pub fn attach(&self, db: &Database) {
        db.attach_observer(Arc::new(self.clone()));
    }

    /// Subscribe to `plan`: every fault it injects from now on is appended
    /// to this monitor's [`fault_log`](Self::fault_log).
    pub fn observe_faults(&self, plan: &FaultPlan) {
        let monitor = self.clone();
        plan.set_listener(Arc::new(move |record: &FaultRecord| {
            monitor.state.lock().faults.push(record.clone());
        }));
    }

    /// Route `db`'s DBT retry-loop decisions into this monitor's
    /// [`retry_log`](Self::retry_log).
    pub fn observe_retries(&self, db: &Database) {
        db.attach_retry_observer(Arc::new(self.clone()));
    }

    /// Faults recorded via [`observe_faults`](Self::observe_faults).
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.state.lock().faults.clone()
    }

    /// Retry decisions recorded via the [`RetryObserver`] impl.
    pub fn retry_log(&self) -> Vec<RetryEvent> {
        self.state.lock().retries.clone()
    }

    /// Wrap an ad hoc lock so acquisitions/releases feed the monitor.
    pub fn wrap_lock(&self, inner: Arc<dyn AdHocLock>) -> Arc<dyn AdHocLock> {
        Arc::new(MonitoredLock {
            inner,
            monitor: self.clone(),
        })
    }

    /// Hazards detected so far (deduplicated, detection order).
    pub fn hazards(&self) -> Vec<Hazard> {
        let mut state = self.state.lock();
        // Mixed-coordination is computed on demand from the write sets.
        let mixed: Vec<String> = state
            .locked_writes
            .intersection(&state.unlocked_writes)
            .cloned()
            .collect();
        for table in mixed {
            state.report(Hazard::MixedCoordination { table });
        }
        state.hazards.clone()
    }

    /// True when no hazards were detected.
    pub fn is_clean(&self) -> bool {
        self.hazards().is_empty()
    }

    /// Hazard counts by kind (for report printing).
    pub fn summary(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for h in self.hazards() {
            let k = match h {
                Hazard::LockAfterRead { .. } => "lock-after-read",
                Hazard::ExpiredLeaseRelease { .. } => "expired-lease",
                Hazard::MixedCoordination { .. } => "mixed-coordination",
            };
            *out.entry(k).or_insert(0) += 1;
        }
        out
    }

    fn on_acquire(&self, key: &str) {
        let mut state = self.state.lock();
        let ts = state
            .threads
            .entry(std::thread::current().id())
            .or_default();
        ts.held.push(key.to_string());
        // Entering a critical section: reads made under it start fresh.
        ts.locked_reads.clear();
    }

    fn on_release(&self, key: &str, was_valid: bool) {
        let mut state = self.state.lock();
        if !was_valid {
            state.report(Hazard::ExpiredLeaseRelease {
                lock_key: key.to_string(),
            });
        }
        let ts = state
            .threads
            .entry(std::thread::current().id())
            .or_default();
        if let Some(pos) = ts.held.iter().rposition(|k| k == key) {
            ts.held.remove(pos);
        }
        if ts.held.is_empty() {
            // Quiescent point: drop the whole thread entry so monitors on
            // thread-per-request hosts don't grow without bound.
            state.threads.remove(&std::thread::current().id());
        }
    }
}

impl RetryObserver for AccessMonitor {
    fn on_retry(&self, label: &str, attempt: u32, delay: Duration) {
        self.state.lock().retries.push(RetryEvent::Retried {
            label: label.to_string(),
            attempt,
            delay,
        });
    }

    fn on_give_up(&self, label: &str, attempts: u32, reason: &str) {
        self.state.lock().retries.push(RetryEvent::GaveUp {
            label: label.to_string(),
            attempts,
            reason: reason.to_string(),
        });
    }
}

impl StatementObserver for AccessMonitor {
    fn on_event(&self, event: &AccessEvent) {
        let mut state = self.state.lock();
        let tid = std::thread::current().id();
        match event {
            AccessEvent::Read { table, row, .. } => {
                let ts = state.threads.entry(tid).or_default();
                if ts.held.is_empty() {
                    ts.unlocked_reads.insert((table.clone(), *row));
                } else {
                    ts.locked_reads.insert((table.clone(), *row));
                }
            }
            AccessEvent::Write { table, row, .. } => {
                let (held, suspicious) = {
                    let ts = state.threads.entry(tid).or_default();
                    let held = ts.held.last().cloned();
                    let suspicious = !ts.held.is_empty()
                        && ts.unlocked_reads.contains(&(table.clone(), *row))
                        && !ts.locked_reads.contains(&(table.clone(), *row));
                    (held, suspicious)
                };
                match held {
                    Some(lock_key) => {
                        state.locked_writes.insert(table.clone());
                        if suspicious {
                            state.report(Hazard::LockAfterRead {
                                lock_key,
                                table: table.clone(),
                                row: *row,
                            });
                        }
                    }
                    None => {
                        state.unlocked_writes.insert(table.clone());
                    }
                }
            }
            AccessEvent::Committed { .. } | AccessEvent::Aborted { .. } => {}
        }
    }
}

impl fmt::Debug for AccessMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessMonitor")
            .field("hazards", &self.hazards().len())
            .finish()
    }
}

/// Lock wrapper feeding acquisition/release events to the monitor.
struct MonitoredLock {
    inner: Arc<dyn AdHocLock>,
    monitor: AccessMonitor,
}

impl AdHocLock for MonitoredLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let guard = self.inner.lock(key)?;
        self.monitor.on_acquire(key);
        Ok(Guard::new(Box::new(MonitoredGuard {
            inner: Some(guard),
            key: key.to_string(),
            monitor: self.monitor.clone(),
            released: false,
        })))
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }
}

struct MonitoredGuard {
    inner: Option<Guard>,
    key: String,
    monitor: AccessMonitor,
    released: bool,
}

impl LockGuard for MonitoredGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        let Some(inner) = self.inner.take() else {
            return Ok(());
        };
        let was_valid = inner.is_valid();
        self.monitor.on_release(&self.key, was_valid);
        match inner.unlock() {
            Ok(()) => Ok(()),
            // An expired lease's owner-checked unlock reports NotHeld; the
            // hazard is already recorded, so surface it unchanged.
            Err(e) => Err(e),
        }
    }

    fn is_valid(&self) -> bool {
        !self.released && self.inner.as_ref().map(|g| g.is_valid()).unwrap_or(false)
    }

    fn leak(&mut self) {
        self.released = true;
        if let Some(inner) = self.inner.take() {
            self.monitor.on_release(&self.key, true);
            inner.leak();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::{KvSetNxLock, MemLock};
    use adhoc_kv::{Client, Store};
    use adhoc_sim::{LatencyModel, VirtualClock};
    use adhoc_storage::{Column, ColumnType, EngineProfile, IsolationLevel, Schema};
    use std::time::Duration;

    fn db_with_monitor() -> (Database, AccessMonitor) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "posts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("content", ColumnType::Str),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("posts", &[("id", 1.into()), ("content", "v0".into())])
                .map(|_| ())
        })
        .unwrap();
        let monitor = AccessMonitor::new();
        monitor.attach(&db);
        (db, monitor)
    }

    #[test]
    fn detects_lock_after_read() {
        let (db, monitor) = db_with_monitor();
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        // The Discourse [76] pattern: read, then lock, then write.
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.get("posts", 1).map(|_| ())
        })
        .unwrap();
        let guard = lock.lock("post:1").unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update("posts", 1, &[("content", "edited".into())])
        })
        .unwrap();
        guard.unlock().unwrap();
        assert!(matches!(
            monitor.hazards().as_slice(),
            [Hazard::LockAfterRead { table, row: 1, .. }] if table == "posts"
        ));
    }

    #[test]
    fn correct_order_is_clean() {
        let (db, monitor) = db_with_monitor();
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        // Lock, re-read under the lock, write: no hazard.
        let guard = lock.lock("post:1").unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.get("posts", 1)?;
            t.update("posts", 1, &[("content", "edited".into())])
        })
        .unwrap();
        guard.unlock().unwrap();
        assert!(monitor.is_clean(), "{:?}", monitor.hazards());
    }

    #[test]
    fn reread_under_lock_clears_earlier_unlocked_read() {
        let (db, monitor) = db_with_monitor();
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        // Read without the lock (e.g., to find the lock key), then lock,
        // RE-READ, write — the fixed Discourse pattern.
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.get("posts", 1).map(|_| ())
        })
        .unwrap();
        let guard = lock.lock("post:1").unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.get("posts", 1)?;
            t.update("posts", 1, &[("content", "edited".into())])
        })
        .unwrap();
        guard.unlock().unwrap();
        assert!(monitor.is_clean(), "{:?}", monitor.hazards());
    }

    #[test]
    fn detects_expired_lease_release() {
        let (_db, monitor) = db_with_monitor();
        let clock = Arc::new(VirtualClock::new());
        let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let lease = monitor.wrap_lock(Arc::new(
            KvSetNxLock::new(kv).with_ttl(Duration::from_millis(5)),
        ));
        let guard = lease.lock("invite:1").unwrap();
        clock.advance(Duration::from_millis(10)); // slow critical section
        let _ = guard.unlock();
        assert!(monitor
            .hazards()
            .iter()
            .any(|h| matches!(h, Hazard::ExpiredLeaseRelease { .. })));
    }

    #[test]
    fn detects_mixed_coordination() {
        let (db, monitor) = db_with_monitor();
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        // Coordinated write (the HTML handler)…
        let guard = lock.lock("payments").unwrap();
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.get("posts", 1)?;
            t.update("posts", 1, &[("content", "locked write".into())])
        })
        .unwrap();
        guard.unlock().unwrap();
        // …and an uncoordinated one (the JSON handler, §4.2 [59]).
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update("posts", 1, &[("content", "unlocked write".into())])
        })
        .unwrap();
        assert!(monitor
            .hazards()
            .iter()
            .any(|h| matches!(h, Hazard::MixedCoordination { table } if table == "posts")));
        assert_eq!(monitor.summary().get("mixed-coordination"), Some(&1));
    }

    #[test]
    fn hazards_are_deduplicated() {
        let (db, monitor) = db_with_monitor();
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        for _ in 0..5 {
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.get("posts", 1).map(|_| ())
            })
            .unwrap();
            let guard = lock.lock("post:1").unwrap();
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.update("posts", 1, &[("content", "x".into())])
            })
            .unwrap();
            guard.unlock().unwrap();
        }
        assert_eq!(monitor.hazards().len(), 1);
    }

    #[test]
    fn records_injected_faults_and_retry_decisions() {
        use adhoc_sim::{FaultKind, FaultRule};
        let monitor = AccessMonitor::new();

        // Fault side: a listener on the plan feeds the fault log.
        let plan = FaultPlan::new(7, vec![FaultRule::at_ops(FaultKind::ConnError, &[0])]);
        monitor.observe_faults(&plan);
        let clock = Arc::new(VirtualClock::new());
        let kv = Client::new(Store::new(), clock, LatencyModel::zero()).with_faults(plan);
        assert!(kv.set("k", "v").is_err());
        let faults = monitor.fault_log();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::ConnError);

        // Retry side: the DBT wrapper reports its decisions.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        monitor.observe_retries(&db);
        let policy = adhoc_sim::RetryPolicy::exponential(
            2,
            Duration::from_micros(1),
            Duration::from_micros(1),
        );
        let _ = db.run_with_policy(db.default_isolation(), &policy, |txn| {
            Err::<(), _>(adhoc_storage::DbError::Deadlock { txn: txn.id() })
        });
        let retries = monitor.retry_log();
        assert!(retries
            .iter()
            .any(|e| matches!(e, RetryEvent::Retried { label, .. } if label == "dbt")));
        assert!(retries
            .iter()
            .any(|e| matches!(e, RetryEvent::GaveUp { label, .. } if label == "dbt")));
    }

    #[test]
    fn display_renders_actionably() {
        let h = Hazard::LockAfterRead {
            lock_key: "post:1".into(),
            table: "posts".into(),
            row: 1,
        };
        let text = h.to_string();
        assert!(text.contains("lock-after-read"));
        assert!(text.contains("posts"));
    }
}
