//! Tables 3, 4, 5a and 5b, derived from the corpus by aggregation.

use crate::case::App;
use crate::corpus::cases_for;
use crate::corpus_data::CASES;
use adhoc_core::taxonomy::{CcAlgorithm, IssueCategory};
use std::collections::BTreeSet;

/// One Table 3 row: criticality per application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// The application.
    pub app: App,
    /// Cases residing in core APIs.
    pub critical: usize,
    /// All cases in the application.
    pub total: usize,
}

/// Table 3: "Ad hoc transactions are mainly used in core APIs."
pub fn table3() -> Vec<Table3Row> {
    App::all()
        .into_iter()
        .map(|app| {
            let cases = cases_for(app);
            Table3Row {
                app,
                critical: cases.iter().filter(|c| c.critical).count(),
                total: cases.len(),
            }
        })
        .collect()
}

/// One Table 4 row: per-application case statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Row {
    /// The application.
    pub app: App,
    /// Total identified cases.
    pub total: usize,
    /// Cases with at least one correctness issue.
    pub buggy: usize,
    /// Pessimistic (lock-coordinated) cases.
    pub lock_based: usize,
    /// Optimistic (validation-coordinated) cases.
    pub validation_based: usize,
}

/// Table 4: "Statistics of identified ad hoc transactions."
pub fn table4() -> Vec<Table4Row> {
    App::all()
        .into_iter()
        .map(|app| {
            let cases = cases_for(app);
            Table4Row {
                app,
                total: cases.len(),
                buggy: cases.iter().filter(|c| c.is_buggy()).count(),
                lock_based: cases
                    .iter()
                    .filter(|c| c.cc == CcAlgorithm::Pessimistic)
                    .count(),
                validation_based: cases
                    .iter()
                    .filter(|c| c.cc == CcAlgorithm::Optimistic)
                    .count(),
            }
        })
        .collect()
}

/// Totals row of Table 4.
pub fn table4_totals() -> Table4Row {
    let rows = table4();
    Table4Row {
        app: App::Discourse, // placeholder; callers print "Total"
        total: rows.iter().map(|r| r.total).sum(),
        buggy: rows.iter().map(|r| r.buggy).sum(),
        lock_based: rows.iter().map(|r| r.lock_based).sum(),
        validation_based: rows.iter().map(|r| r.validation_based).sum(),
    }
}

/// One Table 5a row: an issue category with its spread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5aRow {
    /// The issue category.
    pub category: IssueCategory,
    /// Applications with at least one affected case.
    pub apps: usize,
    /// Affected cases.
    pub cases: usize,
}

/// Table 5a: "Categorization of incorrect ad hoc transactions."
pub fn table5a() -> Vec<Table5aRow> {
    IssueCategory::all()
        .into_iter()
        .map(|category| {
            let affected: Vec<_> = CASES
                .iter()
                .filter(|c| c.issues.contains(&category))
                .collect();
            let apps: BTreeSet<App> = affected.iter().map(|c| c.app).collect();
            Table5aRow {
                category,
                apps: apps.len(),
                cases: affected.len(),
            }
        })
        .collect()
}

/// One Table 5b row: severe consequences per application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5bRow {
    /// The application.
    pub app: App,
    /// Cases with severe consequences.
    pub cases: usize,
    /// The consequence descriptions.
    pub consequences: Vec<&'static str>,
}

/// Table 5b: "Incorrect ad hoc transactions can have severe consequences."
/// Applications without severe cases are omitted, as in the paper.
pub fn table5b() -> Vec<Table5bRow> {
    App::all()
        .into_iter()
        .filter_map(|app| {
            let severe: Vec<_> = cases_for(app)
                .into_iter()
                .filter_map(|c| c.severe_consequence)
                .collect();
            if severe.is_empty() {
                None
            } else {
                Some(Table5bRow {
                    app,
                    cases: severe.len(),
                    consequences: severe,
                })
            }
        })
        .collect()
}

/// Issue-report statistics quoted in §4's summary: "We have submitted 20
/// issue reports (covering 46 cases) to developer communities; 7 of them
/// (covering 33 cases) have been acknowledged."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportStats {
    /// Distinct issue reports submitted.
    pub reports: usize,
    /// Cases covered by those reports.
    pub reported_cases: usize,
    /// Reports acknowledged by developers.
    pub acknowledged_reports: usize,
    /// Cases covered by acknowledged reports.
    pub acknowledged_cases: usize,
}

/// Compute the §4 reporting statistics from the corpus.
pub fn report_stats() -> ReportStats {
    let reports: BTreeSet<&str> = CASES.iter().filter_map(|c| c.report).collect();
    let acknowledged: BTreeSet<&str> = CASES
        .iter()
        .filter(|c| c.acknowledged)
        .filter_map(|c| c.report)
        .collect();
    ReportStats {
        reports: reports.len(),
        reported_cases: CASES.iter().filter(|c| c.report.is_some()).count(),
        acknowledged_reports: acknowledged.len(),
        acknowledged_cases: CASES.iter().filter(|c| c.acknowledged).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3's published per-application criticality numbers.
    #[test]
    fn table3_matches_paper() {
        let expect = [
            (App::Discourse, 8, 13),
            (App::Mastodon, 10, 16),
            (App::Spree, 10, 10),
            (App::Redmine, 6, 9),
            (App::Broadleaf, 6, 11),
            (App::ScmSuite, 11, 11),
            (App::JumpServer, 5, 5),
            (App::Saleor, 15, 16),
        ];
        let rows = table3();
        for (row, (app, critical, total)) in rows.iter().zip(expect) {
            assert_eq!(row.app, app);
            assert_eq!((row.critical, row.total), (critical, total), "{app}");
        }
        let total_critical: usize = rows.iter().map(|r| r.critical).sum();
        assert_eq!(total_critical, 71, "Finding 1: 71 critical cases");
    }

    /// Table 4's published per-application statistics.
    #[test]
    fn table4_matches_paper() {
        let expect = [
            (App::Discourse, 13, 13, 10, 3),
            (App::Mastodon, 16, 11, 11, 5),
            (App::Spree, 10, 10, 4, 6),
            (App::Redmine, 9, 1, 6, 3),
            (App::Broadleaf, 11, 7, 5, 6),
            (App::ScmSuite, 11, 8, 8, 3),
            (App::JumpServer, 5, 0, 5, 0),
            (App::Saleor, 16, 3, 16, 0),
        ];
        for (row, (app, total, buggy, lock, valid)) in table4().iter().zip(expect) {
            assert_eq!(row.app, app);
            assert_eq!(
                (row.total, row.buggy, row.lock_based, row.validation_based),
                (total, buggy, lock, valid),
                "{app}"
            );
        }
        let t = table4_totals();
        assert_eq!(
            (t.total, t.buggy, t.lock_based, t.validation_based),
            (91, 53, 65, 26)
        );
    }

    /// Table 5a's published categorization.
    #[test]
    fn table5a_matches_paper() {
        use IssueCategory::*;
        let expect = [
            (IncorrectLockPrimitive, 6, 36),
            (NonAtomicValidateCommit, 3, 11),
            (OmittedCriticalOperations, 4, 11),
            (ForgottenTransaction, 3, 5),
            (IncompleteRepair, 1, 1),
            (NoRollbackAfterCrash, 1, 3),
        ];
        for (row, (category, apps, cases)) in table5a().iter().zip(expect) {
            assert_eq!(row.category, category);
            assert_eq!((row.apps, row.cases), (apps, cases), "{category:?}");
        }
    }

    /// Table 5b: 28 severe cases, per-app counts as published.
    #[test]
    fn table5b_matches_paper() {
        let rows = table5b();
        let by_app: Vec<(App, usize)> = rows.iter().map(|r| (r.app, r.cases)).collect();
        assert_eq!(
            by_app,
            vec![
                (App::Discourse, 6),
                (App::Mastodon, 4),
                (App::Spree, 9),
                (App::Broadleaf, 6),
                (App::Saleor, 3),
            ]
        );
        let total: usize = rows.iter().map(|r| r.cases).sum();
        assert_eq!(total, 28, "28 cases have severe consequences");
    }

    /// §4 summary: 69 issues in 53 cases, 11 cases multi-issue.
    #[test]
    fn issue_totals_match_paper() {
        let issues: usize = CASES.iter().map(|c| c.issues.len()).sum();
        assert_eq!(issues, 69, "69 correctness issues");
        let buggy = CASES.iter().filter(|c| c.is_buggy()).count();
        assert_eq!(buggy, 53, "in 53 cases");
        let multi = CASES.iter().filter(|c| c.issues.len() > 1).count();
        assert_eq!(multi, 11, "11 cases have more than one issue");
        // Issue-group split quoted in §4: 49 primitives / 16 scope / 4 failure.
        use adhoc_core::taxonomy::IssueGroup::*;
        let group_count = |g| {
            CASES
                .iter()
                .flat_map(|c| c.issues.iter())
                .filter(|i| i.group() == g)
                .count()
        };
        assert_eq!(group_count(IncorrectSyncPrimitives), 49);
        assert_eq!(group_count(IncorrectScope), 16);
        assert_eq!(group_count(IncorrectFailureHandling), 4);
    }

    /// §4 summary: 20 reports / 46 cases; 7 acknowledged / 33 cases.
    #[test]
    fn report_stats_match_paper() {
        let s = report_stats();
        assert_eq!(s.reports, 20);
        assert_eq!(s.reported_cases, 46);
        assert_eq!(s.acknowledged_reports, 7);
        assert_eq!(s.acknowledged_cases, 33);
    }

    /// Acknowledgement is a property of a report: no report may be half
    /// acknowledged.
    #[test]
    fn reports_are_consistently_acknowledged() {
        use std::collections::HashMap;
        let mut status: HashMap<&str, bool> = HashMap::new();
        for c in CASES {
            if let Some(r) = c.report {
                if let Some(prev) = status.insert(r, c.acknowledged) {
                    assert_eq!(prev, c.acknowledged, "report {r} half-acknowledged");
                }
            } else {
                assert!(!c.acknowledged, "{}: acknowledged without a report", c.id);
            }
        }
    }
}
