//! Ad hoc microbenchmark for commit-path cost accounting. Ignored by
//! default; run with `cargo test --release -p adhoc-storage --test
//! micro_profile -- --ignored --nocapture`.

use adhoc_storage::{Column, ColumnType, Database, EngineProfile, IsolationLevel, Schema};
use std::time::Instant;

fn db() -> Database {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    for id in 0..129i64 {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("t", &[("id", id.into()), ("val", 0.into())])
        })
        .unwrap();
    }
    db
}

fn time(label: &str, n: u64, mut f: impl FnMut(u64)) {
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    let el = start.elapsed();
    println!(
        "{label:<34} {:>8.1} ns/op  ({:.0} ops/s)",
        el.as_nanos() as f64 / n as f64,
        n as f64 / el.as_secs_f64()
    );
}

#[test]
#[ignore = "manual profiling aid"]
fn micro() {
    let d = db();
    let n = 400_000u64;
    time("begin+commit (empty)", n, |_| {
        let t = d.begin_with(IsolationLevel::ReadCommitted);
        t.commit().unwrap();
    });
    time("begin+abort (empty)", n, |_| {
        let t = d.begin_with(IsolationLevel::ReadCommitted);
        t.abort();
    });
    time("begin+get+commit", n, |i| {
        let mut t = d.begin_with(IsolationLevel::ReadCommitted);
        let _ = t.get("t", (i % 128) as i64).unwrap();
        t.commit().unwrap();
    });
    time("begin+update+commit", n, |i| {
        let mut t = d.begin_with(IsolationLevel::ReadCommitted);
        t.update("t", (i % 128) as i64, &[("val", (i as i64).into())])
            .unwrap();
        t.commit().unwrap();
    });
    time("run_with_retries(update)", n, |i| {
        d.run_with_retries(IsolationLevel::ReadCommitted, 64, |t| {
            t.update("t", (i % 128) as i64, &[("val", (i as i64).into())])
        })
        .unwrap();
    });
}
