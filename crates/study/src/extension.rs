//! Corpus extension: ad hoc transactions *around* the applications.
//!
//! The paper's 91 cases all live inside the eight applications' request
//! handlers. Building the traffic harness surfaced the same species one
//! layer up, in the web tier itself: a per-client rate limiter kept as a
//! fixed-window counter in the KV store is a check-then-act ad hoc
//! transaction (GET the count, compare, INCR — two round trips, nothing
//! revalidated), and it admits over the cap under exactly the
//! interleaving the deterministic scheduler pins as witness 25. The
//! token bucket is its cure: refill-and-debit as one atomic in-process
//! decision.
//!
//! These records deliberately do **not** join [`crate::CASES`] — the
//! corpus count (91) and every Table 1–5 figure derived from it are the
//! paper's numbers and stay pinned. The extension is reported separately.

use adhoc_core::taxonomy::{CcAlgorithm, IssueCategory};

/// One ad hoc transaction found outside the studied applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionCase {
    /// Stable identifier, `layer/api-slug`.
    pub id: &'static str,
    /// Where it lives (the layer, since it is not one of the eight apps).
    pub layer: &'static str,
    /// What the coordinated logic does.
    pub api: &'static str,
    /// Pessimistic or optimistic flavour.
    pub cc: CcAlgorithm,
    /// Issue categories exhibited (empty = correct).
    pub issues: &'static [IssueCategory],
    /// The cured counterpart's id, if this case is the buggy half.
    pub cured_by: Option<&'static str>,
    /// Schedule witness replaying the anomaly, if pinned.
    pub witness: Option<&'static str>,
    /// One-line story for the report.
    pub note: &'static str,
}

/// The web-tier rate-limiter pair the traffic harness added.
pub const EXTENSION_CASES: [ExtensionCase; 2] = [
    ExtensionCase {
        id: "web-tier/rate-limit-fixed-window",
        layer: "web tier",
        api: "per-client request rate limiting",
        cc: CcAlgorithm::Optimistic,
        issues: &[IssueCategory::NonAtomicValidateCommit],
        cured_by: Some("web-tier/rate-limit-token-bucket"),
        witness: Some("tests/schedules/rate-limit-window-race.sched"),
        note: "GET the window's count, compare against the limit, INCR: \
               check and act are separate KV round trips, so two \
               concurrent requests from one client both read limit-1 and \
               both get admitted past the cap",
    },
    ExtensionCase {
        id: "web-tier/rate-limit-token-bucket",
        layer: "web tier",
        api: "per-client request rate limiting",
        cc: CcAlgorithm::Pessimistic,
        issues: &[],
        cured_by: None,
        witness: None,
        note: "refill-and-debit under one lock: admission over the cap is \
               impossible by construction, the shape gateways converge on \
               once the fixed-window race bites",
    },
];

/// Render the extension table for the report.
pub fn render_extension() -> String {
    let mut out = String::new();
    out.push_str("Corpus extension: ad hoc transactions in the web tier (service layer).\n");
    out.push_str("  Not counted in the paper's 91 cases; found while building the\n");
    out.push_str("  open-loop traffic harness, same taxonomy applied.\n");
    out.push_str(&format!(
        "  {:<36} {:<12} {:<12} {:<28}\n",
        "case", "cc", "buggy", "witness"
    ));
    for c in &EXTENSION_CASES {
        out.push_str(&format!(
            "  {:<36} {:<12} {:<12} {:<28}\n",
            c.id,
            match c.cc {
                CcAlgorithm::Pessimistic => "pessimistic",
                CcAlgorithm::Optimistic => "optimistic",
            },
            if c.issues.is_empty() {
                "no (cure)"
            } else {
                "yes"
            },
            c.witness.unwrap_or("-"),
        ));
    }
    for c in &EXTENSION_CASES {
        out.push_str(&format!("\n  {}:\n    {}\n", c.id, c.note));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pair_is_a_buggy_case_and_its_cure() {
        let buggy = &EXTENSION_CASES[0];
        let cure = &EXTENSION_CASES[1];
        assert!(!buggy.issues.is_empty());
        assert_eq!(buggy.cured_by, Some(cure.id));
        assert!(cure.issues.is_empty());
        assert!(buggy.witness.is_some(), "the race must be pinned");
    }

    #[test]
    fn extension_does_not_inflate_the_paper_corpus() {
        assert_eq!(crate::CASES.len(), 91, "paper corpus stays pinned");
    }

    #[test]
    fn render_mentions_both_cases() {
        let s = render_extension();
        assert!(s.contains("rate-limit-fixed-window"));
        assert!(s.contains("rate-limit-token-bucket"));
        assert!(s.contains("not counted") || s.contains("Not counted"));
    }
}
