//! Admission-control front doors for the eight modeled applications.
//!
//! One [`FrontDoor`] per studied application, so overload in one app's
//! request stream sheds *that app's* traffic without starving the other
//! seven, and a partitioned backend can degrade a single app to
//! read-only while the rest keep writing. This is the admission layer
//! the metastability oracle (`tests/resilience_oracle.rs`) drives a
//! fault storm through: bounded in-flight work per app means the storm's
//! backlog cannot outlive the storm.

use adhoc_core::resilience::{FrontDoor, Permit, Rejected, Workload};
use std::sync::Arc;

/// The eight applications of Table 2, in registry order.
pub const APPS: [&str; 8] = [
    "broadleaf",
    "discourse",
    "jumpserver",
    "mastodon",
    "redmine",
    "saleor",
    "scm-suite",
    "spree",
];

/// Per-application admission control: one bounded front door per studied
/// app, plus fleet-wide aggregates.
#[derive(Debug)]
pub struct Admission {
    doors: Vec<Arc<FrontDoor>>,
}

impl Admission {
    /// One door per app, each admitting at most `capacity` concurrent
    /// requests.
    pub fn new(capacity: usize) -> Self {
        Self {
            doors: APPS
                .iter()
                .map(|app| FrontDoor::new(app, capacity))
                .collect(),
        }
    }

    /// The door for `app` (panics on an unregistered name — the set of
    /// studied applications is closed).
    pub fn door(&self, app: &str) -> &Arc<FrontDoor> {
        self.doors
            .iter()
            .find(|d| d.app() == app)
            .unwrap_or_else(|| panic!("unknown app {app:?}"))
    }

    /// Admit one request for `app`; see [`FrontDoor::admit`].
    pub fn admit(&self, app: &str, workload: Workload) -> Result<Permit, Rejected> {
        self.door(app).admit(workload)
    }

    /// Flip every app's read-only degraded mode at once (a fleet-wide
    /// brown-out; individual apps flip via [`Admission::door`]).
    pub fn degrade_writes(&self, degraded: bool) {
        for door in &self.doors {
            door.set_read_only(degraded);
        }
    }

    /// Requests shed across all doors.
    pub fn total_shed(&self) -> u64 {
        self.doors.iter().map(|d| d.stats().shed).sum()
    }

    /// Requests admitted across all doors.
    pub fn total_admitted(&self) -> u64 {
        self.doors.iter().map(|d| d.stats().admitted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jumpserver::JumpServer;
    use crate::Mode;
    use adhoc_storage::{Database, EngineProfile};

    #[test]
    fn every_studied_app_has_a_door() {
        let admission = Admission::new(4);
        for app in APPS {
            assert_eq!(admission.door(app).app(), app);
        }
    }

    #[test]
    fn overload_in_one_app_does_not_starve_another() {
        let admission = Admission::new(1);
        let _spree = admission.admit("spree", Workload::Write).unwrap();
        // Spree is saturated; Mastodon is untouched.
        assert_eq!(
            admission.admit("spree", Workload::Write).unwrap_err(),
            Rejected::Shed
        );
        admission.admit("mastodon", Workload::Write).unwrap();
        assert_eq!(admission.total_shed(), 1);
        assert_eq!(admission.total_admitted(), 2);
    }

    #[test]
    fn per_app_degraded_mode_is_independent() {
        let admission = Admission::new(4);
        admission.door("broadleaf").set_read_only(true);
        assert_eq!(
            admission.admit("broadleaf", Workload::Write).unwrap_err(),
            Rejected::ReadOnly
        );
        admission.admit("broadleaf", Workload::Read).unwrap();
        admission.admit("discourse", Workload::Write).unwrap();
        admission.door("broadleaf").set_read_only(false);
        admission.admit("broadleaf", Workload::Write).unwrap();
    }

    #[test]
    fn admitted_requests_drive_a_real_app_call() {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = crate::jumpserver::setup(&db).unwrap();
        let lock = std::sync::Arc::new(adhoc_core::locks::MemLock::new());
        let js = JumpServer::new(orm, lock, Mode::DatabaseTxn);
        let admission = Admission::new(2);
        let permit = admission.admit("jumpserver", Workload::Write).unwrap();
        js.grant(1, 1, 3).unwrap();
        drop(permit);
        assert_eq!(admission.door("jumpserver").stats().in_flight, 0);
    }
}
