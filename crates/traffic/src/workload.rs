//! The mixed workload: who asks for what.
//!
//! One request stream models a web tier shared by all eight studied
//! applications. Client identity is zipfian over a (by default)
//! million-user population — a handful of hot clients dominate, the way
//! API consumers actually behave — and the object key each handler
//! targets is zipfian over the seeded rows, so hot carts, hot polls, and
//! hot SKUs stay hot across clients. The endpoint itself is drawn from
//! the per-endpoint weights ([`Endpoint::weight`]), a read-dominated mix.

use adhoc_service::{Endpoint, Request};
use adhoc_sim::rng::{self, Zipfian};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// Modeled client population: a million users behind the front door.
pub const CLIENT_POPULATION: u64 = 1_000_000;

/// Weighted-zipfian request generator (deterministic from its seed).
pub struct MixedWorkload {
    rng: StdRng,
    clients: Zipfian,
    keys: Zipfian,
    /// Cumulative weight table over [`Endpoint::ALL`].
    cumulative: Vec<(u32, Endpoint)>,
    total_weight: u32,
    next_id: u64,
}

impl MixedWorkload {
    /// A workload over `clients` users and `objects` seeded rows per app.
    pub fn new(seed: u64, clients: u64, objects: u64) -> Self {
        let mut cumulative = Vec::with_capacity(Endpoint::ALL.len());
        let mut running = 0;
        for e in Endpoint::ALL {
            running += e.weight();
            cumulative.push((running, e));
        }
        Self {
            rng: rng::seeded(seed),
            clients: Zipfian::new(clients),
            keys: Zipfian::new(objects),
            cumulative,
            total_weight: running,
            next_id: 0,
        }
    }

    /// Draw the next request, arriving at `arrived`.
    pub fn next_request(&mut self, arrived: Duration) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        let draw = self.rng.gen_range(0..self.total_weight);
        let endpoint = self
            .cumulative
            .iter()
            .find(|(edge, _)| draw < *edge)
            .expect("draw below total weight")
            .1;
        // Scrambled ranks so the hot clients and hot rows are not the
        // same literal low ids across every run shape.
        let client = self.clients.next_scrambled(&mut self.rng);
        let key = self.keys.next_scrambled(&mut self.rng);
        Request {
            id,
            client,
            key,
            endpoint,
            arrived,
        }
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

/// Mean service cost of one request in capacity units, under the default
/// endpoint weights — the conversion between a tick's capacity budget and
/// its request-throughput saturation point.
pub fn average_cost_units() -> f64 {
    let weighted: u32 = Endpoint::ALL.iter().map(|e| e.weight() * e.cost()).sum();
    let total: u32 = Endpoint::ALL.iter().map(|e| e.weight()).sum();
    f64::from(weighted) / f64::from(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_request_stream() {
        let mut a = MixedWorkload::new(7, CLIENT_POPULATION, 128);
        let mut b = MixedWorkload::new(7, CLIENT_POPULATION, 128);
        for i in 0..1000 {
            let t = Duration::from_micros(i);
            assert_eq!(a.next_request(t), b.next_request(t));
        }
    }

    #[test]
    fn endpoint_mix_tracks_the_weights() {
        let mut w = MixedWorkload::new(11, CLIENT_POPULATION, 128);
        let mut counts: HashMap<Endpoint, u64> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            let req = w.next_request(Duration::ZERO);
            *counts.entry(req.endpoint).or_default() += 1;
        }
        for e in Endpoint::ALL {
            let observed = *counts.get(&e).unwrap_or(&0) as f64 / n as f64;
            let expected = f64::from(e.weight()) / 100.0;
            assert!(
                (observed - expected).abs() < 0.02,
                "{}: observed {observed:.3} expected {expected:.3}",
                e.label()
            );
        }
    }

    #[test]
    fn clients_are_zipfian_hot() {
        let mut w = MixedWorkload::new(13, CLIENT_POPULATION, 128);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let req = w.next_request(Duration::ZERO);
            *counts.entry(req.client).or_default() += 1;
        }
        let hottest = *counts.values().max().unwrap();
        // Rank 1 of a million-key zipfian draws ~6% of traffic.
        assert!(
            hottest > 20_000 / 25,
            "hottest client drew only {hottest} of 20000"
        );
    }

    #[test]
    fn average_cost_is_between_min_and_max_endpoint_cost() {
        let avg = average_cost_units();
        assert!(avg > 1.0 && avg < 4.0, "avg {avg}");
    }
}
