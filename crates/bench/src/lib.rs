//! Evaluation harness: regenerates every figure of the paper's §5.
//!
//! * [`fig2`] — lock/unlock latency for the seven lock implementations.
//! * [`fig3`] — API throughput, ad hoc vs database transactions, for the
//!   four coordination granularities of Table 6, with and without
//!   contention.
//! * [`fig4`] — shrink-image API latency for the four rollback strategies,
//!   with and without conflicting edit-post load.
//! * [`ttl_ablation`] — the lease-TTL safety cliff behind the Mastodon bug.
//! * [`resilience`] — the metastability ablation: which resilience
//!   mechanisms let goodput recover after a partition storm.
//!
//! Absolute numbers depend on the simulated latency model and the host;
//! the *shapes* (orderings and ratios) are the reproduction targets — see
//! EXPERIMENTS.md at the repository root.

#![warn(missing_docs)]

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod isolation_ablation;
pub mod resilience;
pub mod scaling;
pub mod ttl_ablation;

pub use fig2::{lock_latencies, Fig2Row};
pub use fig3::{run_granularity, Fig3Config, Fig3Row, GranularitySetup, SETUPS};
pub use fig4::{run_rollback, Fig4Config, Fig4Row};
pub use resilience::{resilience_sweep, Resilience, ResilienceRow};
pub use scaling::{commit_scaling, kv_scaling, KeyPattern, ScalingCell};
pub use ttl_ablation::{run_ttl_ablation, TtlAblationRow};

/// Measurement tests take this lock so they never run concurrently —
/// on small machines a sibling CPU-bound test skews throughput numbers.
#[doc(hidden)]
pub static SERIAL_MEASUREMENTS: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
