//! `SYNC`: language-runtime monitors (Java `synchronized`), as used by SCM
//! Suite and Broadleaf (§3.2.1).
//!
//! The correct form keys monitors in a process-wide map, so every thread
//! synchronizing on the same key shares one monitor. The SCM Suite bug
//! (§4.1.1, issue \[91\] in the paper) synchronized on *thread-local*
//! ORM-mapped objects: each thread locks its own object and "conflicting
//! threads acquire different locks and can never block each other". The
//! [`SyncLock::synchronize_on_thread_local`] switch reproduces that.

use super::{AdHocLock, Guard, LockError, LockGuard};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Default)]
struct MonitorTable {
    /// Keys currently held.
    held: Mutex<HashSet<String>>,
    cv: Condvar,
}

impl MonitorTable {
    fn acquire(&self, key: &str) {
        let mut held = self.held.lock();
        while held.contains(key) {
            self.cv.wait(&mut held);
        }
        held.insert(key.to_string());
    }

    fn release(&self, key: &str) -> bool {
        let mut held = self.held.lock();
        let was = held.remove(key);
        self.cv.notify_all();
        was
    }
}

/// The `synchronized`-keyword lock.
#[derive(Clone, Default)]
pub struct SyncLock {
    shared: Arc<MonitorTable>,
    /// Fault injection: monitor per thread instead of per process —
    /// the SCM Suite bug.
    broken_thread_local: bool,
}

thread_local! {
    static THREAD_MONITORS: std::cell::RefCell<HashMap<usize, Arc<MonitorTable>>> =
        std::cell::RefCell::new(HashMap::new());
}

impl SyncLock {
    /// A correct process-wide monitor table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the SCM Suite fault: each thread synchronizes on its own
    /// (thread-local) object, so the "lock" excludes nothing.
    pub fn synchronize_on_thread_local(mut self) -> Self {
        self.broken_thread_local = true;
        self
    }

    fn table(&self) -> Arc<MonitorTable> {
        if !self.broken_thread_local {
            return Arc::clone(&self.shared);
        }
        // Identify this SyncLock instance by its shared-table address so
        // distinct locks get distinct thread-local monitors.
        let instance = Arc::as_ptr(&self.shared) as usize;
        THREAD_MONITORS.with(|m| {
            Arc::clone(
                m.borrow_mut()
                    .entry(instance)
                    .or_insert_with(|| Arc::new(MonitorTable::default())),
            )
        })
    }
}

struct SyncGuard {
    table: Arc<MonitorTable>,
    key: String,
    released: bool,
}

impl LockGuard for SyncGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        self.table.release(&self.key);
        Ok(())
    }

    fn is_valid(&self) -> bool {
        !self.released
    }

    fn leak(&mut self) {
        // Monitors die with the process; a leaked monitor in-process would
        // block forever, which is exactly the crash semantics (§3.4.2:
        // in-memory lock info "vanishes along with crashes" — a process
        // crash, not a thread leak). We model the vanish as a release.
        self.released = true;
        self.table.release(&self.key);
    }
}

impl AdHocLock for SyncLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let table = self.table();
        table.acquire(key);
        Ok(Guard::new(Box::new(SyncGuard {
            table,
            key: key.to_string(),
            released: false,
        })))
    }

    fn label(&self) -> &'static str {
        "SYNC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::mutual_exclusion_trial;

    #[test]
    fn correct_sync_provides_mutual_exclusion() {
        let lock = SyncLock::new();
        assert_eq!(mutual_exclusion_trial(&lock, "k", 8, 200), 8 * 200);
    }

    #[test]
    fn different_keys_do_not_contend() {
        let lock = SyncLock::new();
        let g1 = lock.lock("a").unwrap();
        let g2 = lock.lock("b").unwrap();
        g1.unlock().unwrap();
        g2.unlock().unwrap();
    }

    #[test]
    fn scm_suite_thread_local_bug_breaks_mutual_exclusion() {
        // §4.1.1 [91]: synchronizing over thread-local objects means
        // conflicting threads never block each other — the counter comes up
        // short under contention.
        let lock = SyncLock::new().synchronize_on_thread_local();
        let total = mutual_exclusion_trial(&lock, "k", 8, 500);
        assert!(
            total < 8 * 500,
            "thread-local monitors must lose increments (got {total})"
        );
    }

    #[test]
    fn unlock_is_idempotent_via_drop() {
        let lock = SyncLock::new();
        {
            let g = lock.lock("k").unwrap();
            g.unlock().unwrap();
        } // drop after explicit unlock: no panic, no double-release effect
        let g = lock.lock("k").unwrap();
        drop(g); // drop releases
        lock.lock("k").unwrap().unlock().unwrap();
    }

    #[test]
    fn guard_validity_tracks_release() {
        let lock = SyncLock::new();
        let g = lock.lock("k").unwrap();
        assert!(g.is_valid());
        g.unlock().unwrap();
    }
}
