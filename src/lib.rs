//! Umbrella crate re-exporting the whole ad-hoc-transactions workspace.
//!
//! This crate exists so that the repository-level examples and integration
//! tests can use every subsystem through one dependency. Library users
//! should normally depend on the individual crates instead:
//!
//! * [`adhoc_sim`] — clocks, latency model, seeded RNG, statistics helpers.
//! * [`adhoc_kv`] — the Redis-like key–value substrate.
//! * [`adhoc_storage`] — the in-memory RDBMS substrate (MySQL-like and
//!   PostgreSQL-like engine profiles).
//! * [`adhoc_orm`] — the Active-Record-style ORM substrate.
//! * [`adhoc_core`] — the ad hoc transaction toolkit: taxonomy, the seven
//!   lock implementations, validation strategies, the optimistic transaction
//!   framework, and the coordination-hints proxy.
//! * [`adhoc_apps`] — modeled workloads for the eight studied applications.
//! * [`adhoc_study`] — the 91-case study corpus and paper-table generators.

#![warn(missing_docs)]

pub use adhoc_apps as apps;
pub use adhoc_core as core;
pub use adhoc_kv as kv;
pub use adhoc_orm as orm;
pub use adhoc_sim as sim;
pub use adhoc_storage as storage;
pub use adhoc_study as study;
