//! Redmine (Ruby/Active Record): issue tracking and metadata management.
//!
//! Redmine's ad hoc transactions use `SELECT … FOR UPDATE` (§3.2.1) and
//! ORM-assisted optimistic locking; it is the studied application with
//! only one buggy case (Table 4). Scenarios:
//! * `assign_issue` — FOR-UPDATE-coordinated issue assignment (correct).
//! * `update_subject_unlocked` — the one uncoordinated metadata write
//!   (lost-update prone).
//! * `edit_wiki` — `lock_version` optimistic locking on wiki pages
//!   (ORM-assisted validation, §3.2.2).

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};

/// Create Redmine's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(
        Schema::new(
            "issues",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("subject", ColumnType::Str),
                Column::new("assignee", ColumnType::Int),
                Column::new("done_ratio", ColumnType::Int),
                Column::new("version_id", ColumnType::Int), // 0 = none
                Column::new("open", ColumnType::Int),       // 1 = open
                Column::new("attachments_count", ColumnType::Int),
            ],
            "id",
        )?
        .with_index("version_id")?,
    )?;
    db.create_table(
        Schema::new(
            "attachments",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("issue_id", ColumnType::Int),
                Column::new("filename", ColumnType::Str),
            ],
            "id",
        )?
        .with_index("issue_id")?,
    )?;
    db.create_table(Schema::new(
        "versions",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("name", ColumnType::Str),
            Column::new("open", ColumnType::Int), // 1 = open
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "wiki_pages",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("text", ColumnType::Str),
            Column::new("lock_version", ColumnType::Int),
        ],
        "id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("issues"))
        .register(EntityDef::new("attachments"))
        .register(EntityDef::new("versions"))
        .register(EntityDef::new("wiki_pages").with_lock_version());
    Ok(Orm::new(db.clone(), registry))
}

/// The Redmine application model.
pub struct Redmine {
    orm: Orm,
    coord: Coordinator,
    mode: Mode,
}

impl Redmine {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self { orm, coord, mode }
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed an unassigned issue.
    pub fn seed_issue(&self, id: i64, subject: &str) -> Result<()> {
        self.orm.create(
            "issues",
            &[
                ("id", id.into()),
                ("subject", subject.into()),
                ("assignee", 0.into()),
                ("done_ratio", 0.into()),
                ("version_id", 0.into()),
                ("open", 1.into()),
                ("attachments_count", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Seed an open target version.
    pub fn seed_version(&self, id: i64, name: &str) -> Result<()> {
        self.orm.create(
            "versions",
            &[("id", id.into()), ("name", name.into()), ("open", 1.into())],
        )?;
        Ok(())
    }

    /// Seed a wiki page at version 0.
    pub fn seed_wiki(&self, id: i64, text: &str) -> Result<()> {
        self.orm.create(
            "wiki_pages",
            &[
                ("id", id.into()),
                ("text", text.into()),
                ("lock_version", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Assign an issue and bump its progress: a FOR-UPDATE-coordinated
    /// read–modify–write (the correct Redmine pattern).
    pub fn advance_issue(&self, issue_id: i64, assignee: i64, progress: i64) -> Result<()> {
        if self.mode.on_cured_layer() {
            // §7 cure: the FOR-UPDATE RMW becomes one optimistic
            // validate-and-commit, field-granular on the one column the
            // computation reads (`assignee` is a blind write).
            run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                let issue = occ
                    .read_fields(&self.orm, "issues", issue_id, &["done_ratio"])?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "issues".into(),
                        id: issue_id,
                    })?;
                let done = issue.get_int("done_ratio")?;
                occ.stage_update(
                    "issues",
                    issue_id,
                    &[
                        ("assignee", assignee.into()),
                        ("done_ratio", (done + progress).min(100).into()),
                    ],
                );
                Ok(())
            })?;
            return Ok(());
        }
        let iso = match self.mode {
            Mode::AdHoc => IsolationLevel::ReadCommitted, // SFU does the work
            Mode::DatabaseTxn => IsolationLevel::Serializable,
            Mode::Cured | Mode::Confluent => unreachable!("cured path returned above"),
        };
        let schema = self.orm.db().schema("issues")?;
        self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
            let issue = match self.mode {
                Mode::AdHoc => t.get_for_update("issues", issue_id)?,
                Mode::DatabaseTxn | Mode::Cured | Mode::Confluent => t.get("issues", issue_id)?,
            }
            .ok_or(DbError::NoSuchRow {
                table: "issues".into(),
                id: issue_id,
            })?;
            let done = issue.get_int(&schema, "done_ratio")?;
            t.update(
                "issues",
                issue_id,
                &[
                    ("assignee", assignee.into()),
                    ("done_ratio", (done + progress).min(100).into()),
                ],
            )?;
            Ok(())
        })?;
        Ok(())
    }

    /// The uncoordinated metadata write: plain read-then-write with no
    /// lock (Redmine's single buggy case class — lost updates possible).
    pub fn advance_issue_unlocked(&self, issue_id: i64, progress: i64) -> Result<()> {
        let issue = self.orm.find_required("issues", issue_id)?;
        let done = issue.get_int("done_ratio")?;
        std::thread::yield_now();
        self.orm.transaction(|t| {
            t.raw().update(
                "issues",
                issue_id,
                &[("done_ratio", (done + progress).min(100).into())],
            )?;
            Ok(())
        })?;
        Ok(())
    }

    /// Edit a wiki page with ORM-assisted optimistic locking. Returns
    /// `false` on a stale-object conflict (the UI asks the user to merge).
    pub fn edit_wiki(&self, page_id: i64, new_text: &str) -> Result<bool> {
        let mut page = self.orm.find_required("wiki_pages", page_id)?;
        page.set("text", new_text)?;
        match self.orm.save(&mut page) {
            Ok(()) => Ok(true),
            Err(OrmError::StaleObject { .. }) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Attach a file to an issue and bump its counter cache — the Rails
    /// `counter_cache` shape behind `redmine/attachment-add`, coordinated
    /// with `SELECT … FOR UPDATE` on the issue row (AdHoc) or a
    /// serializable transaction (DatabaseTxn).
    pub fn add_attachment(&self, issue_id: i64, filename: &str) -> Result<i64> {
        if self.mode.on_cured_layer() {
            // §7 cure: the façade's portable row-lock hint replaces the
            // hand-rolled SELECT … FOR UPDATE, and one transaction keeps
            // the attachment row and its counter cache atomic.
            let id = self.orm.transaction(|t| {
                self.coord.row_lock(t.raw(), "issues", issue_id)?;
                let count = t
                    .find_required("issues", issue_id)?
                    .get_int("attachments_count")?;
                let attachment = t.create(
                    "attachments",
                    &[("issue_id", issue_id.into()), ("filename", filename.into())],
                )?;
                t.raw().update(
                    "issues",
                    issue_id,
                    &[("attachments_count", (count + 1).into())],
                )?;
                Ok(attachment.id)
            })?;
            return Ok(id);
        }
        let iso = match self.mode {
            Mode::AdHoc => IsolationLevel::ReadCommitted,
            Mode::DatabaseTxn => IsolationLevel::Serializable,
            Mode::Cured | Mode::Confluent => unreachable!("cured path returned above"),
        };
        let schema = self.orm.db().schema("issues")?;
        let id = self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
            let issue = match self.mode {
                Mode::AdHoc => t.get_for_update("issues", issue_id)?,
                Mode::DatabaseTxn | Mode::Cured | Mode::Confluent => t.get("issues", issue_id)?,
            }
            .ok_or(DbError::NoSuchRow {
                table: "issues".into(),
                id: issue_id,
            })?;
            let count = issue.get_int(&schema, "attachments_count")?;
            let id = t.insert(
                "attachments",
                &[("issue_id", issue_id.into()), ("filename", filename.into())],
            )?;
            t.update(
                "issues",
                issue_id,
                &[("attachments_count", (count + 1).into())],
            )?;
            Ok(id)
        })?;
        Ok(id)
    }

    /// Invariant: the counter cache equals the number of attachment rows.
    pub fn attachments_consistent(&self, issue_id: i64) -> Result<bool> {
        let cached = self
            .orm
            .find_required("issues", issue_id)?
            .get_int("attachments_count")?;
        let rows = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("attachments", &Predicate::eq("issue_id", issue_id))?)
        })?;
        Ok(cached == rows.len() as i64)
    }

    /// Target an open issue at a version, refusing closed versions — one
    /// half of the `redmine/version-close` check-then-act pair.
    pub fn assign_version(&self, issue_id: i64, version_id: i64) -> Result<bool> {
        if self.mode.on_cured_layer() {
            // §7 cure: both halves of the check-then-act pair take the
            // same façade lock on the version, so the cross-row invariant
            // (no open issue on a closed version) cannot interleave away —
            // and no Serializable phantoms are needed to see it.
            let guard = self.coord.user_lock(&format!("version:{version_id}"))?;
            let ok = self.orm.transaction(|t| {
                let version = t.find_required("versions", version_id)?;
                if version.get_int("open")? == 0 {
                    return Ok(false);
                }
                t.raw()
                    .update("issues", issue_id, &[("version_id", version_id.into())])?;
                Ok(true)
            })?;
            guard.unlock()?;
            return Ok(ok);
        }
        let iso = match self.mode {
            Mode::AdHoc => IsolationLevel::ReadCommitted,
            Mode::DatabaseTxn => IsolationLevel::Serializable,
            Mode::Cured | Mode::Confluent => unreachable!("cured path returned above"),
        };
        let schema = self.orm.db().schema("versions")?;
        Ok(self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
            let version = match self.mode {
                // FOR UPDATE on the version row serializes against
                // `close_version`, which locks the same row.
                Mode::AdHoc => t.get_for_update("versions", version_id)?,
                Mode::DatabaseTxn | Mode::Cured | Mode::Confluent => {
                    t.get("versions", version_id)?
                }
            }
            .ok_or(DbError::NoSuchRow {
                table: "versions".into(),
                id: version_id,
            })?;
            if version.get_int(&schema, "open")? == 0 {
                return Ok(false);
            }
            t.update("issues", issue_id, &[("version_id", version_id.into())])?;
            Ok(true)
        })?)
    }

    /// Close a version, refusing while open issues still target it — the
    /// other half of the pair. Correct coordination locks the version row
    /// first (AdHoc/SFU) or runs serializable (DatabaseTxn, where SSI's
    /// index-range certification catches the phantom issue).
    pub fn close_version(&self, version_id: i64) -> Result<bool> {
        if self.mode.on_cured_layer() {
            let guard = self.coord.user_lock(&format!("version:{version_id}"))?;
            let issues = self.orm.db().schema("issues")?;
            let ok = self.orm.transaction(|t| {
                let targeting = t
                    .raw()
                    .scan("issues", &Predicate::eq("version_id", version_id))?;
                for (_, issue) in &targeting {
                    if issue.get_int(&issues, "open")? == 1 {
                        return Ok(false);
                    }
                }
                t.raw()
                    .update("versions", version_id, &[("open", 0.into())])?;
                Ok(true)
            })?;
            guard.unlock()?;
            return Ok(ok);
        }
        let iso = match self.mode {
            Mode::AdHoc => IsolationLevel::ReadCommitted,
            Mode::DatabaseTxn => IsolationLevel::Serializable,
            Mode::Cured | Mode::Confluent => unreachable!("cured path returned above"),
        };
        let issues = self.orm.db().schema("issues")?;
        Ok(self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
            if let Mode::AdHoc = self.mode {
                t.get_for_update("versions", version_id)?
                    .ok_or(DbError::NoSuchRow {
                        table: "versions".into(),
                        id: version_id,
                    })?;
            }
            let targeting = t.scan("issues", &Predicate::eq("version_id", version_id))?;
            for (_, issue) in &targeting {
                if issue.get_int(&issues, "open")? == 1 {
                    return Ok(false);
                }
            }
            t.update("versions", version_id, &[("open", 0.into())])?;
            Ok(true)
        })?)
    }

    /// The buggy shape: check and act in separate auto-committed
    /// statements, no lock — two halves can interleave and strand an open
    /// issue on a closed version.
    pub fn close_version_unchecked(&self, version_id: i64) -> Result<bool> {
        let issues = self.orm.db().schema("issues")?;
        let targeting = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("issues", &Predicate::eq("version_id", version_id))?)
        })?;
        for (_, issue) in &targeting {
            if issue.get_int(&issues, "open")? == 1 {
                return Ok(false);
            }
        }
        std::thread::yield_now(); // widen the check-then-act window
        self.orm.transaction(|t| {
            t.raw()
                .update("versions", version_id, &[("open", 0.into())])?;
            Ok(())
        })?;
        Ok(true)
    }

    /// The buggy assign: check the version in one statement, write the
    /// issue in another.
    pub fn assign_version_unchecked(&self, issue_id: i64, version_id: i64) -> Result<bool> {
        let open = self
            .orm
            .find_required("versions", version_id)?
            .get_int("open")?
            == 1;
        if !open {
            return Ok(false);
        }
        std::thread::yield_now();
        self.orm.transaction(|t| {
            t.raw()
                .update("issues", issue_id, &[("version_id", version_id.into())])?;
            Ok(())
        })?;
        Ok(true)
    }

    /// Invariant: no *open* issue targets a *closed* version.
    pub fn versions_consistent(&self) -> Result<bool> {
        let issues = self.orm.db().schema("issues")?;
        let rows = self
            .orm
            .transaction(|t| Ok(t.raw().scan("issues", &Predicate::All)?))?;
        for (_, issue) in &rows {
            let version_id = issue.get_int(&issues, "version_id")?;
            if version_id == 0 || issue.get_int(&issues, "open")? == 0 {
                continue;
            }
            let version = self.orm.find_required("versions", version_id)?;
            if version.get_int("open")? == 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Current progress percentage of an issue.
    pub fn done_ratio(&self, issue_id: i64) -> Result<i64> {
        Ok(self
            .orm
            .find_required("issues", issue_id)?
            .get_int("done_ratio")?)
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// Redmine's boot-time recovery pass: a crash between the attachment
/// insert and the `attachments_count` bump leaves the counter cache
/// behind its rows; boot recounts it (Active Record's
/// `reset_counters`, run as fsck).
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("redmine").rule(attachments_count_rule())
}

/// Flag issues whose counter cache differs from the actual attachment
/// count, and recount on fix.
fn attachments_count_rule() -> CheckRule {
    let name = "redmine:issues.attachments_count";
    let expected = |db: &Database, issue_id: i64| -> Option<i64> {
        let schema = db.schema("attachments").ok()?;
        let rows = db.dump_table("attachments").ok()?;
        let mut count = 0;
        for (_, row) in &rows {
            if row.get_int(&schema, "issue_id").ok()? == issue_id {
                count += 1;
            }
        }
        Some(count)
    };
    CheckRule::new(name, move |db| {
        let (Ok(issues), Ok(schema)) = (db.dump_table("issues"), db.schema("issues")) else {
            return Vec::new();
        };
        issues
            .iter()
            .filter_map(|(id, row)| {
                let cached = row.get_int(&schema, "attachments_count").ok()?;
                let want = expected(db, *id)?;
                (cached != want).then(|| Violation {
                    rule: name.to_string(),
                    table: "issues".to_string(),
                    row_id: *id,
                    message: format!("attachments_count = {cached}, {want} attachment rows"),
                })
            })
            .collect()
    })
    .with_fix(move |db, v| {
        let Some(want) = expected(db, v.row_id) else {
            return false;
        };
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update(&v.table, v.row_id, &[("attachments_count", want.into())])
        })
        .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_storage::EngineProfile;
    use std::sync::Arc;

    fn fixture(mode: Mode) -> Redmine {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        Redmine::new(orm, mode)
    }

    #[test]
    fn advance_issue_accumulates_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            app.seed_issue(1, "crash on save").unwrap();
            std::thread::scope(|s| {
                for t in 0..5 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..4 {
                            app.advance_issue(1, t, 5).unwrap();
                        }
                    });
                }
            });
            assert_eq!(app.done_ratio(1).unwrap(), 100, "{mode:?}");
        }
    }

    #[test]
    fn progress_caps_at_100() {
        let app = fixture(Mode::AdHoc);
        app.seed_issue(1, "x").unwrap();
        app.advance_issue(1, 1, 80).unwrap();
        app.advance_issue(1, 1, 80).unwrap();
        assert_eq!(app.done_ratio(1).unwrap(), 100);
    }

    #[test]
    fn unlocked_variant_loses_progress() {
        let mut lost = false;
        for _ in 0..100 {
            let app = Arc::new(fixture(Mode::AdHoc));
            app.seed_issue(1, "x").unwrap();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..5 {
                            app.advance_issue_unlocked(1, 1).unwrap();
                        }
                    });
                }
            });
            if app.done_ratio(1).unwrap() < 20 {
                lost = true;
                break;
            }
        }
        assert!(lost, "the uncoordinated RMW must lose updates");
    }

    #[test]
    fn attachment_counter_cache_stays_exact_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            app.seed_issue(1, "needs logs").unwrap();
            std::thread::scope(|s| {
                for t in 0..5 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for r in 0..4 {
                            app.add_attachment(1, &format!("log-{t}-{r}.txt")).unwrap();
                        }
                    });
                }
            });
            assert!(app.attachments_consistent(1).unwrap(), "{mode:?}");
            let issue = app.orm().find_required("issues", 1).unwrap();
            assert_eq!(issue.get_int("attachments_count").unwrap(), 20, "{mode:?}");
        }
    }

    #[test]
    fn closed_version_refuses_new_issues() {
        let app = fixture(Mode::AdHoc);
        app.seed_version(1, "1.0").unwrap();
        app.seed_issue(1, "a").unwrap();
        app.seed_issue(2, "b").unwrap();
        assert!(app.assign_version(1, 1).unwrap());
        assert!(!app.close_version(1).unwrap(), "open issue 1 blocks close");
        // Close issue 1 out of band, then closing succeeds.
        app.orm()
            .transaction(|t| {
                t.raw().update("issues", 1, &[("open", 0.into())])?;
                Ok(())
            })
            .unwrap();
        assert!(app.close_version(1).unwrap());
        assert!(!app.assign_version(2, 1).unwrap(), "closed version refused");
        assert!(app.versions_consistent().unwrap());
    }

    #[test]
    fn coordinated_close_vs_assign_race_keeps_the_invariant() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            for round in 0..20 {
                let app = Arc::new(fixture(mode));
                app.seed_version(1, "1.0").unwrap();
                app.seed_issue(1, "a").unwrap();
                std::thread::scope(|s| {
                    let a = Arc::clone(&app);
                    s.spawn(move || {
                        let _ = a.assign_version(1, 1).unwrap();
                    });
                    let b = Arc::clone(&app);
                    s.spawn(move || {
                        let _ = b.close_version(1).unwrap();
                    });
                });
                assert!(app.versions_consistent().unwrap(), "{mode:?} round {round}");
            }
        }
    }

    #[test]
    fn unchecked_close_vs_assign_can_strand_an_open_issue() {
        let mut violated = false;
        for _ in 0..300 {
            let app = Arc::new(fixture(Mode::AdHoc));
            app.seed_version(1, "1.0").unwrap();
            app.seed_issue(1, "a").unwrap();
            std::thread::scope(|s| {
                let a = Arc::clone(&app);
                s.spawn(move || {
                    let _ = a.assign_version_unchecked(1, 1).unwrap();
                });
                let b = Arc::clone(&app);
                s.spawn(move || {
                    let _ = b.close_version_unchecked(1).unwrap();
                });
            });
            if !app.versions_consistent().unwrap() {
                violated = true;
                break;
            }
        }
        assert!(violated, "the unchecked pair must be able to violate");
    }

    #[test]
    fn wiki_edits_detect_conflicts() {
        let app = fixture(Mode::AdHoc);
        app.seed_wiki(1, "v0").unwrap();
        assert!(app.edit_wiki(1, "v1").unwrap());
        // A stale client (loaded before v1) conflicts.
        let stale = app.orm.find_required("wiki_pages", 1).unwrap();
        assert!(app.edit_wiki(1, "v2").unwrap());
        let mut stale_obj = stale;
        stale_obj.set("text", "stale overwrite").unwrap();
        assert!(matches!(
            app.orm.save(&mut stale_obj),
            Err(OrmError::StaleObject { .. })
        ));
        assert_eq!(
            app.orm
                .find_required("wiki_pages", 1)
                .unwrap()
                .get_str("text")
                .unwrap(),
            "v2"
        );
    }

    #[test]
    fn concurrent_wiki_editors_one_wins_per_round() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_wiki(1, "v0").unwrap();
        let successes: usize = std::thread::scope(|s| {
            (0..6)
                .map(|t| {
                    let app = Arc::clone(&app);
                    s.spawn(move || app.edit_wiki(1, &format!("editor {t}")).unwrap() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(successes >= 1);
        // Versions advanced exactly once per success.
        let ver = app
            .orm
            .find_required("wiki_pages", 1)
            .unwrap()
            .get_int("lock_version")
            .unwrap();
        assert_eq!(ver as usize, successes);
    }
    #[test]
    fn issue_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (1..=6)
            .map(|id| {
                app.seed_issue(id, "s").unwrap();
                crate::observed_footprint(&app.orm, |t| {
                    t.raw().update("issues", id, &[("done_ratio", 0.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
