//! The server-side state machine.
//!
//! All operations take an explicit `now` so the store itself holds no clock;
//! the [`Client`](crate::client::Client) supplies time and charges network
//! costs. Expiry is lazy, like Redis: an expired entry is treated as absent
//! (and reaped) by the first command that touches it.
//!
//! The keyspace is striped ([`STRIPE_COUNT`] ways, by a deterministic hash
//! of the key bytes): commands on keys in different stripes never share a
//! lock, and a `WATCH`/`MULTI`/`EXEC` block locks only the stripes its
//! keys touch, in ascending index order.
//!
//! Reads are lock-shared: each stripe sits behind a reader-writer lock and
//! every read-only command (`GET`, `EXISTS`, `TTL`, `SMEMBERS`, …) runs
//! under a *shared* guard, so concurrent readers of the same stripe never
//! serialize against each other. The one mutation a read can imply — lazy
//! expiry of a dead entry — escalates to the exclusive guard only when the
//! probe actually hits an expired entry, which keeps the hot path (live or
//! missing key) entirely write-lock-free. Each stripe carries a mutation
//! epoch that advances once per observable modification; reads leave it
//! untouched, and the test suite pins that invariant.
//!
//! Command counters are striped per thread into cache-line-padded slots so
//! the counting a public command does never bounces a shared line between
//! cores — and observability reads ([`Store::command_count`]) never block,
//! or are blocked by, the data path.

use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A stored value: Redis strings or sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A plain string value.
    Str(String),
    /// An unordered collection of unique members.
    Set(BTreeSet<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Set(_) => "set",
        }
    }
}

/// Errors surfaced to callers. Mirrors Redis' `WRONGTYPE` and integer-parse
/// failures; everything else is encoded in return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Operation applied against a key holding the wrong value type.
    WrongType {
        /// The offending key.
        key: String,
        /// Type name actually stored there.
        found: &'static str,
    },
    /// `INCR` on a non-integer string.
    NotAnInteger {
        /// The offending key.
        key: String,
    },
    /// The connection to the server dropped mid-command (injected by a
    /// [`FaultPlan`](adhoc_sim::FaultPlan)). The caller cannot tell whether
    /// the command was applied — the ambiguity §3.4.1 of the paper turns
    /// on.
    ConnectionLost,
    /// The client's absolute deadline passed before the command was sent.
    /// Unlike [`ConnectionLost`](Self::ConnectionLost) this is
    /// *unambiguous*: the command never left the client, so nothing was
    /// applied and a retry (against a fresh deadline) is always safe.
    DeadlineExceeded,
    /// The client's circuit breaker is open: the command was rejected
    /// locally without a round trip. Also unambiguous — nothing was sent.
    CircuitOpen,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::WrongType { key, found } => {
                write!(f, "WRONGTYPE key {key:?} holds a {found}")
            }
            KvError::NotAnInteger { key } => {
                write!(f, "value at key {key:?} is not an integer")
            }
            KvError::ConnectionLost => {
                write!(f, "connection lost; command outcome unknown")
            }
            KvError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the command was sent")
            }
            KvError::CircuitOpen => {
                write!(f, "circuit breaker open; command rejected locally")
            }
        }
    }
}

impl std::error::Error for KvError {}

impl From<adhoc_sim::TransportError> for KvError {
    fn from(e: adhoc_sim::TransportError) -> Self {
        match e {
            adhoc_sim::TransportError::DeadlineExceeded => KvError::DeadlineExceeded,
            adhoc_sim::TransportError::CircuitOpen => KvError::CircuitOpen,
        }
    }
}

/// Conditional-set behaviour for `SET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetMode {
    /// Unconditional set.
    Always,
    /// `NX`: only set when the key does not exist.
    IfAbsent,
    /// `XX`: only set when the key already exists.
    IfPresent,
}

/// Result of a `TTL` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ttl {
    /// Key does not exist (Redis returns -2).
    Missing,
    /// Key exists with no expiry (Redis returns -1).
    NoExpiry,
    /// Remaining time to live.
    Remaining(Duration),
}

/// A buffered write queued inside `MULTI`, applied atomically by `EXEC`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// `SET key value [NX|XX] [PX ttl]`.
    Set {
        /// Target key.
        key: String,
        /// Value to store.
        value: String,
        /// Conditional-set behaviour.
        mode: SetMode,
        /// Optional expiry.
        ttl: Option<Duration>,
    },
    /// `DEL key`.
    Del {
        /// Target key.
        key: String,
    },
    /// `SADD key member`.
    SAdd {
        /// Target set key.
        key: String,
        /// Member to add.
        member: String,
    },
    /// `SREM key member`.
    SRem {
        /// Target set key.
        key: String,
        /// Member to remove.
        member: String,
    },
    /// `EXPIRE key ttl`.
    Expire {
        /// Target key.
        key: String,
        /// Time to live from now.
        ttl: Duration,
    },
}

impl WriteOp {
    /// The key this buffered write targets (every op touches exactly one).
    pub fn key(&self) -> &str {
        match self {
            WriteOp::Set { key, .. }
            | WriteOp::Del { key }
            | WriteOp::SAdd { key, .. }
            | WriteOp::SRem { key, .. }
            | WriteOp::Expire { key, .. } => key,
        }
    }
}

/// Number of key stripes. Fixed so a key's stripe is a pure function of
/// its bytes — the KV analogue of the storage engine's `SHARD_COUNT` row
/// shards.
pub const STRIPE_COUNT: usize = 16;

/// Deterministic stripe of a key: FNV-1a over the key bytes. Commands on
/// keys in different stripes never share a lock; `EXEC` blocks spanning
/// stripes acquire them in ascending index order (deadlock-free, like the
/// storage engine's shard protocol).
pub fn stripe_of(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % STRIPE_COUNT as u64) as usize
}

#[derive(Debug, Clone)]
struct Entry {
    value: Value,
    /// Absolute expiry deadline on the store's timeline.
    expires_at: Option<Duration>,
}

/// What a read-only probe found under the shared stripe guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Liveness {
    /// No entry at all.
    Missing,
    /// A live entry (no deadline, or deadline still ahead).
    Live,
    /// An entry whose deadline has passed — it must be reaped, which
    /// needs the exclusive guard.
    Expired,
}

#[derive(Debug, Default)]
struct Stripe {
    entries: HashMap<String, Entry>,
    /// Mutation epoch: advances once per observable modification of this
    /// stripe (every [`bump`](Self::bump)). Read-only commands never move
    /// it — the pinned witness that the read path takes no write lock.
    epoch: u64,
    /// Per-key modification counters used by `WATCH`. Counters survive
    /// deletion so that delete→recreate is visible to watchers.
    versions: HashMap<String, u64>,
    /// Per-lease-key monotonic grant counters: each successful
    /// [`Store::acquire_lease`] hands out the next token. Like `versions`,
    /// counters survive deletion/expiry — a lease that expires and is
    /// re-granted always yields a strictly larger token.
    grants: HashMap<String, u64>,
    /// Per-guarded-key fence floors: the highest token that has written the
    /// key via [`Store::fenced_set`]. A write carrying a smaller token is a
    /// zombie holder (its lease was reaped and re-granted) and is rejected.
    floors: HashMap<String, u64>,
}

impl Stripe {
    fn bump(&mut self, key: &str) {
        self.epoch += 1;
        if let Some(v) = self.versions.get_mut(key) {
            *v += 1;
        } else {
            self.versions.insert(key.to_string(), 1);
        }
    }

    /// Non-mutating liveness probe (the shared-guard half of `reap`).
    fn probe(&self, key: &str, now: Duration) -> Liveness {
        match self.entries.get(key) {
            None => Liveness::Missing,
            Some(e) => match e.expires_at {
                Some(deadline) if now >= deadline => Liveness::Expired,
                _ => Liveness::Live,
            },
        }
    }

    /// Reap `key` if expired; returns true when the key is live afterwards.
    fn reap(&mut self, key: &str, now: Duration) -> bool {
        match self.entries.get(key) {
            None => false,
            Some(e) => match e.expires_at {
                Some(deadline) if now >= deadline => {
                    self.entries.remove(key);
                    self.bump(key);
                    false
                }
                _ => true,
            },
        }
    }

    fn apply(&mut self, op: &WriteOp, now: Duration) -> Result<bool, KvError> {
        match op {
            WriteOp::Set {
                key,
                value,
                mode,
                ttl,
            } => {
                let live = self.reap(key, now);
                let proceed = match mode {
                    SetMode::Always => true,
                    SetMode::IfAbsent => !live,
                    SetMode::IfPresent => live,
                };
                if !proceed {
                    return Ok(false);
                }
                let expires_at = ttl.map(|t| now + t);
                // Overwrite in place when the slot already holds a string:
                // the common SET-over-SET case then allocates nothing.
                if let Some(e) = self.entries.get_mut(key) {
                    match &mut e.value {
                        Value::Str(s) => {
                            s.clear();
                            s.push_str(value);
                        }
                        v => *v = Value::Str(value.clone()),
                    }
                    e.expires_at = expires_at;
                } else {
                    self.entries.insert(
                        key.clone(),
                        Entry {
                            value: Value::Str(value.clone()),
                            expires_at,
                        },
                    );
                }
                self.bump(key);
                Ok(true)
            }
            WriteOp::Del { key } => {
                let live = self.reap(key, now);
                if live {
                    self.entries.remove(key);
                    self.bump(key);
                }
                Ok(live)
            }
            WriteOp::SAdd { key, member } => {
                self.reap(key, now);
                let entry = self.entries.entry(key.clone()).or_insert(Entry {
                    value: Value::Set(BTreeSet::new()),
                    expires_at: None,
                });
                match &mut entry.value {
                    Value::Set(s) => {
                        let added = s.insert(member.clone());
                        self.bump(key);
                        Ok(added)
                    }
                    other => Err(KvError::WrongType {
                        key: key.clone(),
                        found: other.type_name(),
                    }),
                }
            }
            WriteOp::SRem { key, member } => {
                if !self.reap(key, now) {
                    return Ok(false);
                }
                let entry = self.entries.get_mut(key).expect("reap said live");
                match &mut entry.value {
                    Value::Set(s) => {
                        let removed = s.remove(member);
                        let emptied = s.is_empty();
                        if removed {
                            if emptied {
                                self.entries.remove(key);
                            }
                            self.bump(key);
                        }
                        Ok(removed)
                    }
                    other => Err(KvError::WrongType {
                        key: key.clone(),
                        found: other.type_name(),
                    }),
                }
            }
            WriteOp::Expire { key, ttl } => {
                if !self.reap(key, now) {
                    return Ok(false);
                }
                let entry = self.entries.get_mut(key).expect("reap said live");
                entry.expires_at = Some(now + *ttl);
                self.bump(key);
                Ok(true)
            }
        }
    }
}

/// The append-only persistence log (Redis `appendonly yes` with
/// `appendfsync always`): every state-changing command is recorded with the
/// server-side time it applied at, so a restart replays the exact history —
/// including absolute TTL deadlines, which is what gives `SETNX` leases a
/// *survives-restart* semantic instead of the RDB-style evaporation of
/// [`Store::lose_volatile`].
#[derive(Debug, Default)]
struct Aof {
    log: Vec<(Duration, WriteOp)>,
}

/// Number of per-thread command-counter slots. Threads are assigned slots
/// round-robin; two threads share a slot (and its cache line) only past
/// [`STAT_SLOTS`] concurrent threads.
const STAT_SLOTS: usize = 16;

/// One command-counter slot, padded to its own cache line so counting on
/// one thread never invalidates another thread's line.
#[repr(align(128))]
#[derive(Debug, Default)]
struct StatCell(AtomicU64);

/// The calling thread's counter slot: a process-wide round-robin
/// assignment, cached per thread.
fn stat_slot() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STAT_SLOTS;
    }
    SLOT.with(|s| *s)
}

#[derive(Debug)]
struct StoreInner {
    /// Key-striped data behind reader-writer locks: commands on keys in
    /// different stripes never share a lock, and read-only commands on the
    /// *same* stripe share its guard. Index with [`stripe_of`].
    stripes: [RwLock<Stripe>; STRIPE_COUNT],
    /// Commands processed, striped per thread into padded slots (sum them
    /// for the total). Kept out of the stripe locks so observability reads
    /// ([`Store::command_count`]) never block — or are blocked by — the
    /// data path, and relaxed so the count costs one private-line add.
    commands: [StatCell; STAT_SLOTS],
    /// Append-only persistence log; `None` runs the store fully volatile
    /// (the default, matching the pre-durability behaviour). Always locked
    /// *after* any stripe lock, never before.
    aof: Option<Mutex<Aof>>,
}

/// Command counters, readable without touching any data-path lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Total commands processed since creation.
    pub commands: u64,
}

/// The shared server. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl Default for Store {
    fn default() -> Self {
        Self {
            inner: Arc::new(StoreInner {
                stripes: std::array::from_fn(|_| RwLock::new(Stripe::default())),
                commands: std::array::from_fn(|_| StatCell::default()),
                aof: None,
            }),
        }
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with append-only persistence enabled: every applied
    /// write is logged with its server-side timestamp and a
    /// [`restart`](Self::restart) replays the log instead of dropping
    /// volatile entries — leases (and their absolute TTL deadlines)
    /// *survive* a restart.
    pub fn with_aof() -> Self {
        Self {
            inner: Arc::new(StoreInner {
                stripes: std::array::from_fn(|_| RwLock::new(Stripe::default())),
                commands: std::array::from_fn(|_| StatCell::default()),
                aof: Some(Mutex::new(Aof::default())),
            }),
        }
    }

    /// Whether append-only persistence is enabled.
    pub fn aof_enabled(&self) -> bool {
        self.inner.aof.is_some()
    }

    /// Number of records in the append-only log (0 when disabled).
    pub fn aof_len(&self) -> usize {
        self.inner.aof.as_ref().map_or(0, |a| a.lock().log.len())
    }

    /// Record one applied write in the append-only log (no-op when
    /// persistence is off). Called after the stripe applied the op, while
    /// the stripe lock is still held, so log order matches apply order for
    /// any single key.
    fn log_write(&self, now: Duration, op: &WriteOp) {
        if let Some(aof) = &self.inner.aof {
            aof.lock().log.push((now, op.clone()));
        }
    }

    /// Count one public command on the calling thread's padded slot.
    fn count_command(&self) {
        self.inner.commands[stat_slot()]
            .0
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One public command against one key: count it and run `f` under the
    /// key's exclusive stripe guard.
    fn locked<R>(&self, key: &str, f: impl FnOnce(&mut Stripe) -> R) -> R {
        self.count_command();
        let mut stripe = self.inner.stripes[stripe_of(key)].write();
        f(&mut stripe)
    }

    /// One read-only command against one key: count it and run `f` under
    /// the key's *shared* stripe guard with a precomputed liveness flag.
    ///
    /// The hot path — the key is live or missing — never takes the write
    /// lock, so concurrent readers of one stripe proceed in parallel. Only
    /// a probe that hits an *expired* entry escalates: the shared guard is
    /// dropped, the exclusive guard taken, and the entry reaped (bumping
    /// its version so watchers observe the expiry, exactly as the old
    /// mutex path did) before `f` runs with `live = false`.
    fn locked_read<R>(&self, key: &str, now: Duration, f: impl FnOnce(&Stripe, bool) -> R) -> R {
        self.count_command();
        let lock = &self.inner.stripes[stripe_of(key)];
        {
            let stripe = lock.read();
            match stripe.probe(key, now) {
                Liveness::Live => return f(&stripe, true),
                Liveness::Missing => return f(&stripe, false),
                Liveness::Expired => {}
            }
        }
        let mut stripe = lock.write();
        let live = stripe.reap(key, now);
        f(&stripe, live)
    }

    /// One public command spanning the whole keyspace: count it and run
    /// `f` with every stripe exclusively locked in ascending index order.
    fn locked_all<R>(&self, f: impl FnOnce(&mut [RwLockWriteGuard<'_, Stripe>]) -> R) -> R {
        self.count_command();
        let mut guards: Vec<RwLockWriteGuard<'_, Stripe>> =
            self.inner.stripes.iter().map(|s| s.write()).collect();
        f(&mut guards)
    }

    /// `GET key`.
    pub fn get(&self, key: &str, now: Duration) -> Result<Option<String>, KvError> {
        self.locked_read(key, now, |i, live| {
            if !live {
                return Ok(None);
            }
            match &i.entries[key].value {
                Value::Str(s) => Ok(Some(s.clone())),
                other => Err(KvError::WrongType {
                    key: key.to_string(),
                    found: other.type_name(),
                }),
            }
        })
    }

    /// `SET key value [NX|XX] [PX ttl]`. Returns whether the set happened.
    pub fn set(
        &self,
        key: &str,
        value: &str,
        mode: SetMode,
        ttl: Option<Duration>,
        now: Duration,
    ) -> Result<bool, KvError> {
        let op = WriteOp::Set {
            key: key.to_string(),
            value: value.to_string(),
            mode,
            ttl,
        };
        self.locked(key, |i| {
            let applied = i.apply(&op, now)?;
            if applied {
                self.log_write(now, &op);
            }
            Ok(applied)
        })
    }

    /// `DEL key`. Returns whether a live key was removed.
    pub fn del(&self, key: &str, now: Duration) -> bool {
        let op = WriteOp::Del {
            key: key.to_string(),
        };
        self.locked(key, |i| {
            let removed = i.apply(&op, now).expect("DEL is type-agnostic");
            if removed {
                self.log_write(now, &op);
            }
            removed
        })
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str, now: Duration) -> bool {
        self.locked_read(key, now, |_, live| live)
    }

    /// `EXPIRE key ttl`. Returns false when the key is missing.
    pub fn expire(&self, key: &str, ttl: Duration, now: Duration) -> bool {
        let op = WriteOp::Expire {
            key: key.to_string(),
            ttl,
        };
        self.locked(key, |i| {
            let applied = i.apply(&op, now).expect("EXPIRE is type-agnostic");
            if applied {
                self.log_write(now, &op);
            }
            applied
        })
    }

    /// Atomically grant a fenced lease: `SET key owner NX PX ttl` plus a
    /// monotonically increasing fencing token, all under one stripe lock
    /// (the server-side script a real deployment would run in Lua).
    ///
    /// Returns `Some(token)` when the lease was granted, `None` when a live
    /// holder exists. Tokens are per-lease-key, start at 1, and never
    /// repeat or decrease — even across expiry, deletion, or an AOF
    /// [`restart`](Self::restart) (grant counters live outside the entry
    /// map, like `WATCH` versions).
    pub fn acquire_lease(
        &self,
        key: &str,
        owner: &str,
        ttl: Duration,
        now: Duration,
    ) -> Option<u64> {
        let op = WriteOp::Set {
            key: key.to_string(),
            value: owner.to_string(),
            mode: SetMode::IfAbsent,
            ttl: Some(ttl),
        };
        self.locked(key, |i| {
            let granted = i.apply(&op, now).expect("SET NX is type-agnostic");
            if !granted {
                return None;
            }
            self.log_write(now, &op);
            let token = i.grants.entry(key.to_string()).or_insert(0);
            *token += 1;
            Some(*token)
        })
    }

    /// A guarded write that only applies when `token` is at least the key's
    /// fence floor; on success the floor rises to `token`. Returns whether
    /// the write applied.
    ///
    /// This is the §3.4.3 TTL-steal fix: a holder whose lease silently
    /// expired (GC pause, injected delay) and was re-granted to someone
    /// else carries a stale token, and the *storage side* rejects its
    /// write — correctness no longer depends on the client noticing its
    /// lease is gone.
    pub fn fenced_set(&self, key: &str, value: &str, token: u64, now: Duration) -> bool {
        let op = WriteOp::Set {
            key: key.to_string(),
            value: value.to_string(),
            mode: SetMode::Always,
            ttl: None,
        };
        self.locked(key, |i| {
            let floor = i.floors.get(key).copied().unwrap_or(0);
            if token < floor {
                return false;
            }
            i.floors.insert(key.to_string(), token);
            i.apply(&op, now).expect("unconditional SET cannot fail");
            self.log_write(now, &op);
            true
        })
    }

    /// The current fence floor of a guarded key (0 when no fenced write has
    /// ever touched it). Diagnostic/oracle helper. Pure read: runs under
    /// the shared stripe guard (floors are TTL-free, so no reap can arise).
    pub fn fence_floor(&self, key: &str) -> u64 {
        self.count_command();
        let stripe = self.inner.stripes[stripe_of(key)].read();
        stripe.floors.get(key).copied().unwrap_or(0)
    }

    /// The fencing token of the current live lease on `key`, provided its
    /// holder is `owner` — the readback a client uses to resolve an
    /// ambiguous [`acquire_lease`](Self::acquire_lease) reply. Sound
    /// because the grant counter is exactly the token the live holder was
    /// handed.
    pub fn lease_token(&self, key: &str, owner: &str, now: Duration) -> Option<u64> {
        self.locked_read(key, now, |i, live| {
            if !live {
                return None;
            }
            match &i.entries[key].value {
                Value::Str(s) if s == owner => i.grants.get(key).copied(),
                _ => None,
            }
        })
    }

    /// `TTL key`.
    pub fn ttl(&self, key: &str, now: Duration) -> Ttl {
        self.locked_read(key, now, |i, live| {
            if !live {
                return Ttl::Missing;
            }
            match i.entries[key].expires_at {
                None => Ttl::NoExpiry,
                Some(deadline) => Ttl::Remaining(deadline - now),
            }
        })
    }

    /// `INCR key`: increments an integer string, creating it at 0.
    pub fn incr(&self, key: &str, now: Duration) -> Result<i64, KvError> {
        self.locked(key, |i| {
            let live = i.reap(key, now);
            let current = if live {
                match &i.entries[key].value {
                    Value::Str(s) => s.parse::<i64>().map_err(|_| KvError::NotAnInteger {
                        key: key.to_string(),
                    })?,
                    other => {
                        return Err(KvError::WrongType {
                            key: key.to_string(),
                            found: other.type_name(),
                        })
                    }
                }
            } else {
                0
            };
            let next = current + 1;
            let expires_at = if live {
                use std::fmt::Write;
                let e = i.entries.get_mut(key).expect("reap said live");
                match &mut e.value {
                    Value::Str(s) => {
                        s.clear();
                        let _ = write!(s, "{next}");
                    }
                    _ => unreachable!("non-string rejected above"),
                }
                e.expires_at
            } else {
                i.entries.insert(
                    key.to_string(),
                    Entry {
                        value: Value::Str(next.to_string()),
                        expires_at: None,
                    },
                );
                None
            };
            i.bump(key);
            // INCR logs as the SET of its result; a surviving deadline is
            // re-established by a trailing EXPIRE (both replay with `now`).
            self.log_write(
                now,
                &WriteOp::Set {
                    key: key.to_string(),
                    value: next.to_string(),
                    mode: SetMode::Always,
                    ttl: None,
                },
            );
            if let Some(deadline) = expires_at {
                self.log_write(
                    now,
                    &WriteOp::Expire {
                        key: key.to_string(),
                        ttl: deadline.saturating_sub(now),
                    },
                );
            }
            Ok(next)
        })
    }

    /// `SADD key member`.
    pub fn sadd(&self, key: &str, member: &str, now: Duration) -> Result<bool, KvError> {
        let op = WriteOp::SAdd {
            key: key.to_string(),
            member: member.to_string(),
        };
        self.locked(key, |i| {
            let added = i.apply(&op, now)?;
            if added {
                self.log_write(now, &op);
            }
            Ok(added)
        })
    }

    /// `SREM key member`.
    pub fn srem(&self, key: &str, member: &str, now: Duration) -> Result<bool, KvError> {
        let op = WriteOp::SRem {
            key: key.to_string(),
            member: member.to_string(),
        };
        self.locked(key, |i| {
            let removed = i.apply(&op, now)?;
            if removed {
                self.log_write(now, &op);
            }
            Ok(removed)
        })
    }

    /// `SMEMBERS key`.
    pub fn smembers(&self, key: &str, now: Duration) -> Result<Vec<String>, KvError> {
        self.locked_read(key, now, |i, live| {
            if !live {
                return Ok(Vec::new());
            }
            match &i.entries[key].value {
                Value::Set(s) => Ok(s.iter().cloned().collect()),
                other => Err(KvError::WrongType {
                    key: key.to_string(),
                    found: other.type_name(),
                }),
            }
        })
    }

    /// `SISMEMBER key member`.
    pub fn sismember(&self, key: &str, member: &str, now: Duration) -> Result<bool, KvError> {
        self.locked_read(key, now, |i, live| {
            if !live {
                return Ok(false);
            }
            match &i.entries[key].value {
                Value::Set(s) => Ok(s.contains(member)),
                other => Err(KvError::WrongType {
                    key: key.to_string(),
                    found: other.type_name(),
                }),
            }
        })
    }

    /// Current modification counter for a key (the `WATCH` snapshot).
    pub fn version(&self, key: &str, now: Duration) -> u64 {
        self.locked_read(key, now, |i, _| i.versions.get(key).copied().unwrap_or(0))
    }

    /// `EXEC` of a `MULTI` block with a prior `WATCH` set.
    ///
    /// Atomically: if every `(key, version)` pair still matches, apply all
    /// ops and return `Ok(true)`; otherwise apply nothing and return
    /// `Ok(false)` (Redis reports a nil reply — the transaction aborted).
    pub fn exec(
        &self,
        watched: &[(String, u64)],
        ops: &[WriteOp],
        now: Duration,
    ) -> Result<bool, KvError> {
        self.count_command();
        // Lock exactly the stripes the block touches, ascending — two EXECs
        // over disjoint stripe sets never coordinate, and overlapping sets
        // are acquired in a global order so they cannot deadlock. The want
        // set and guard table are fixed-size stack arrays, so an EXEC heap-
        // allocates nothing of its own.
        let mut want = [false; STRIPE_COUNT];
        for (key, _) in watched {
            want[stripe_of(key)] = true;
        }
        for op in ops {
            want[stripe_of(op.key())] = true;
        }
        let mut guards: [Option<RwLockWriteGuard<'_, Stripe>>; STRIPE_COUNT] =
            std::array::from_fn(|_| None);
        for (i, wanted) in want.iter().enumerate() {
            if *wanted {
                guards[i] = Some(self.inner.stripes[i].write());
            }
        }
        for (key, ver) in watched {
            let stripe = guards[stripe_of(key)].as_mut().expect("stripe is locked");
            stripe.reap(key, now);
            if stripe.versions.get(key.as_str()).copied().unwrap_or(0) != *ver {
                return Ok(false);
            }
        }
        for op in ops {
            let stripe = guards[stripe_of(op.key())]
                .as_mut()
                .expect("stripe is locked");
            stripe.apply(op, now)?;
            self.log_write(now, op);
        }
        Ok(true)
    }

    /// Number of live keys (test/diagnostic helper).
    pub fn len(&self, now: Duration) -> usize {
        self.locked_all(|stripes| {
            stripes
                .iter_mut()
                .map(|s| {
                    let keys: Vec<String> = s.entries.keys().cloned().collect();
                    keys.iter().filter(|k| s.reap(k, now)).count()
                })
                .sum()
        })
    }

    /// True when no live keys remain.
    pub fn is_empty(&self, now: Duration) -> bool {
        self.len(now) == 0
    }

    /// Total commands processed since creation: the sum over the padded
    /// per-thread slots. Reads atomics only — never touches (or waits on)
    /// a data-path stripe lock.
    pub fn command_count(&self) -> u64 {
        self.inner
            .commands
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of the per-stripe mutation epochs: advances once per observable
    /// modification anywhere in the store and is *untouched* by read-only
    /// commands on live or missing keys. Diagnostic/test hook pinning the
    /// read path's no-write-lock guarantee.
    pub fn mutation_epoch(&self) -> u64 {
        self.inner.stripes.iter().map(|s| s.read().epoch).sum()
    }

    /// Snapshot of the command counters (see [`command_count`](Self::command_count)).
    pub fn stats(&self) -> KvStats {
        KvStats {
            commands: self.command_count(),
        }
    }

    /// Simulate a server restart. What survives is an explicit function of
    /// the persistence mode:
    ///
    /// * **AOF** ([`with_aof`](Self::with_aof)) — the append-only log is
    ///   replayed with its recorded timestamps, so *everything* survives,
    ///   including TTL'd leases and their absolute deadlines. Every live
    ///   key's version bumps so `WATCH`ers observe the restart.
    /// * **volatile (default)** — falls back to
    ///   [`lose_volatile`](Self::lose_volatile): TTL'd entries evaporate,
    ///   plain keys persist (an RDB snapshot that never includes leases).
    pub fn restart(&self, now: Duration) {
        let Some(aof) = &self.inner.aof else {
            self.lose_volatile(now);
            return;
        };
        // Snapshot the log, then rebuild every stripe from scratch. The
        // replay calls Stripe::apply directly, bypassing log_write, so the
        // log is not re-appended. Lock order: stripes first, then the log —
        // the same order the write path uses.
        self.locked_all(|stripes| {
            let log = aof.lock().log.clone();
            for s in stripes.iter_mut() {
                let live: Vec<String> = s.entries.keys().cloned().collect();
                s.entries.clear();
                for key in live {
                    s.bump(&key);
                }
            }
            for (at, op) in &log {
                let stripe = &mut stripes[stripe_of(op.key())];
                // WrongType during replay is impossible: the log only holds
                // ops that applied cleanly, in order.
                let _ = stripe.apply(op, *at);
            }
        });
    }

    /// Simulate a server restart that recovers from an RDB-style snapshot:
    /// every entry carrying an expiry is dropped (leases are volatile and
    /// do not survive), plain keys persist. Versions of the dropped keys
    /// bump so watchers see the loss.
    pub fn lose_volatile(&self, _now: Duration) {
        self.locked_all(|stripes| {
            for s in stripes.iter_mut() {
                let doomed: Vec<String> = s
                    .entries
                    .iter()
                    .filter(|(_, e)| e.expires_at.is_some())
                    .map(|(k, _)| k.clone())
                    .collect();
                for key in doomed {
                    s.entries.remove(&key);
                    s.bump(&key);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Duration = Duration::ZERO;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn get_set_del_roundtrip() {
        let s = Store::new();
        assert_eq!(s.get("k", T0).unwrap(), None);
        assert!(s.set("k", "v", SetMode::Always, None, T0).unwrap());
        assert_eq!(s.get("k", T0).unwrap(), Some("v".into()));
        assert!(s.del("k", T0));
        assert!(!s.del("k", T0));
        assert_eq!(s.get("k", T0).unwrap(), None);
    }

    #[test]
    fn setnx_only_sets_when_absent() {
        let s = Store::new();
        assert!(s.set("lock", "a", SetMode::IfAbsent, None, T0).unwrap());
        assert!(!s.set("lock", "b", SetMode::IfAbsent, None, T0).unwrap());
        assert_eq!(s.get("lock", T0).unwrap(), Some("a".into()));
    }

    #[test]
    fn setxx_only_sets_when_present() {
        let s = Store::new();
        assert!(!s.set("k", "a", SetMode::IfPresent, None, T0).unwrap());
        s.set("k", "a", SetMode::Always, None, T0).unwrap();
        assert!(s.set("k", "b", SetMode::IfPresent, None, T0).unwrap());
        assert_eq!(s.get("k", T0).unwrap(), Some("b".into()));
    }

    #[test]
    fn ttl_expires_keys_lazily() {
        let s = Store::new();
        s.set("lease", "v", SetMode::Always, Some(at(100)), T0)
            .unwrap();
        assert_eq!(s.ttl("lease", at(40)), Ttl::Remaining(at(60)));
        assert_eq!(s.get("lease", at(99)).unwrap(), Some("v".into()));
        assert_eq!(s.get("lease", at(100)).unwrap(), None);
        assert_eq!(s.ttl("lease", at(100)), Ttl::Missing);
        // Expired key can be re-acquired with NX — the Mastodon lease bug's
        // enabling behaviour.
        assert!(s
            .set("lease", "other", SetMode::IfAbsent, None, at(101))
            .unwrap());
    }

    #[test]
    fn expire_command_sets_deadline() {
        let s = Store::new();
        assert!(!s.expire("k", at(50), T0));
        s.set("k", "v", SetMode::Always, None, T0).unwrap();
        assert_eq!(s.ttl("k", T0), Ttl::NoExpiry);
        assert!(s.expire("k", at(50), T0));
        assert!(!s.exists("k", at(60)));
    }

    #[test]
    fn lease_tokens_are_monotonic_across_expiry() {
        let s = Store::new();
        let t1 = s.acquire_lease("lease", "a", at(10), T0).unwrap();
        assert_eq!(t1, 1);
        // Live holder blocks a second grant.
        assert_eq!(s.acquire_lease("lease", "b", at(10), at(5)), None);
        // After expiry the next grant yields a strictly larger token.
        let t2 = s.acquire_lease("lease", "b", at(10), at(20)).unwrap();
        assert!(t2 > t1);
        // Explicit deletion does not reset the counter either.
        s.del("lease", at(21));
        let t3 = s.acquire_lease("lease", "c", at(10), at(22)).unwrap();
        assert!(t3 > t2);
    }

    #[test]
    fn fenced_set_rejects_stale_tokens() {
        let s = Store::new();
        let old = s.acquire_lease("lease", "a", at(10), T0).unwrap();
        // The first holder stalls; its lease expires and is re-granted.
        let fresh = s.acquire_lease("lease", "b", at(10), at(15)).unwrap();
        // Fresh holder writes first: the floor rises to its token.
        assert!(s.fenced_set("guarded", "b-wrote", fresh, at(16)));
        assert_eq!(s.fence_floor("guarded"), fresh);
        // The zombie's late write bounces off the floor; state is untouched.
        assert!(!s.fenced_set("guarded", "a-wrote", old, at(17)));
        assert_eq!(s.get("guarded", at(18)).unwrap().unwrap(), "b-wrote");
        // Same-token rewrites by the live holder stay allowed.
        assert!(s.fenced_set("guarded", "b-again", fresh, at(19)));
    }

    #[test]
    fn fence_state_survives_aof_restart() {
        let s = Store::with_aof();
        let t1 = s.acquire_lease("lease", "a", at(10), T0).unwrap();
        assert!(s.fenced_set("guarded", "v1", t1, at(1)));
        s.restart(at(2));
        // Grant counters and floors live outside the entry map, so the
        // restart replay cannot rewind them.
        assert_eq!(s.fence_floor("guarded"), t1);
        let t2 = s.acquire_lease("lease", "b", at(10), at(20)).unwrap();
        assert!(t2 > t1);
        assert!(!s.fenced_set("guarded", "stale", t1.saturating_sub(1), at(21)));
    }

    #[test]
    fn incr_counts_and_rejects_garbage() {
        let s = Store::new();
        assert_eq!(s.incr("n", T0).unwrap(), 1);
        assert_eq!(s.incr("n", T0).unwrap(), 2);
        s.set("junk", "abc", SetMode::Always, None, T0).unwrap();
        assert!(matches!(
            s.incr("junk", T0),
            Err(KvError::NotAnInteger { .. })
        ));
    }

    #[test]
    fn sets_behave_like_redis_sets() {
        let s = Store::new();
        assert!(s.sadd("tl", "p1", T0).unwrap());
        assert!(!s.sadd("tl", "p1", T0).unwrap());
        assert!(s.sadd("tl", "p2", T0).unwrap());
        assert_eq!(s.smembers("tl", T0).unwrap(), vec!["p1", "p2"]);
        assert!(s.sismember("tl", "p1", T0).unwrap());
        assert!(s.srem("tl", "p1", T0).unwrap());
        assert!(!s.srem("tl", "p1", T0).unwrap());
        assert!(!s.sismember("tl", "p1", T0).unwrap());
        // Removing the last member removes the key, like Redis.
        s.srem("tl", "p2", T0).unwrap();
        assert!(!s.exists("tl", T0));
    }

    #[test]
    fn wrong_type_errors() {
        let s = Store::new();
        s.set("str", "v", SetMode::Always, None, T0).unwrap();
        assert!(matches!(
            s.sadd("str", "m", T0),
            Err(KvError::WrongType { .. })
        ));
        s.sadd("set", "m", T0).unwrap();
        assert!(matches!(s.get("set", T0), Err(KvError::WrongType { .. })));
        assert!(matches!(s.incr("set", T0), Err(KvError::WrongType { .. })));
    }

    #[test]
    fn watch_exec_detects_interleaved_writes() {
        let s = Store::new();
        let v = s.version("k", T0);
        // Interleaved writer changes the key after the WATCH snapshot.
        s.set("k", "sneaky", SetMode::Always, None, T0).unwrap();
        let applied = s
            .exec(
                &[("k".into(), v)],
                &[WriteOp::Set {
                    key: "k".into(),
                    value: "mine".into(),
                    mode: SetMode::Always,
                    ttl: None,
                }],
                T0,
            )
            .unwrap();
        assert!(!applied);
        assert_eq!(s.get("k", T0).unwrap(), Some("sneaky".into()));
    }

    #[test]
    fn watch_exec_applies_when_unchanged() {
        let s = Store::new();
        let v = s.version("k", T0);
        let applied = s
            .exec(
                &[("k".into(), v)],
                &[WriteOp::Set {
                    key: "k".into(),
                    value: "mine".into(),
                    mode: SetMode::Always,
                    ttl: None,
                }],
                T0,
            )
            .unwrap();
        assert!(applied);
        assert_eq!(s.get("k", T0).unwrap(), Some("mine".into()));
    }

    #[test]
    fn watch_sees_delete_then_recreate() {
        let s = Store::new();
        s.set("k", "v1", SetMode::Always, None, T0).unwrap();
        let v = s.version("k", T0);
        s.del("k", T0);
        s.set("k", "v1", SetMode::Always, None, T0).unwrap();
        // Same value, but the version moved: EXEC must abort (ABA handled).
        assert!(!s.exec(&[("k".into(), v)], &[], T0).unwrap());
    }

    #[test]
    fn watch_sees_expiry_as_modification() {
        let s = Store::new();
        s.set("k", "v", SetMode::Always, Some(at(10)), T0).unwrap();
        let v = s.version("k", at(5));
        // Key expires before EXEC touches it.
        assert!(!s.exec(&[("k".into(), v)], &[], at(20)).unwrap());
    }

    #[test]
    fn exec_is_atomic_over_multiple_ops() {
        let s = Store::new();
        let applied = s
            .exec(
                &[],
                &[
                    WriteOp::Set {
                        key: "a".into(),
                        value: "1".into(),
                        mode: SetMode::Always,
                        ttl: None,
                    },
                    WriteOp::SAdd {
                        key: "b".into(),
                        member: "m".into(),
                    },
                ],
                T0,
            )
            .unwrap();
        assert!(applied);
        assert_eq!(s.get("a", T0).unwrap(), Some("1".into()));
        assert!(s.sismember("b", "m", T0).unwrap());
    }

    #[test]
    fn len_counts_only_live_keys() {
        let s = Store::new();
        s.set("a", "1", SetMode::Always, Some(at(10)), T0).unwrap();
        s.set("b", "2", SetMode::Always, None, T0).unwrap();
        assert_eq!(s.len(T0), 2);
        assert_eq!(s.len(at(11)), 1);
        assert!(!s.is_empty(at(11)));
    }

    #[test]
    fn stripes_partition_the_keyspace_deterministically() {
        for key in ["a", "hot", "k:0:1", "user:42", ""] {
            let s = stripe_of(key);
            assert!(s < STRIPE_COUNT);
            assert_eq!(s, stripe_of(key), "stripe must be a pure function");
        }
        // The bench's disjoint pattern must actually spread over stripes.
        let distinct: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| stripe_of(&format!("k:{}:{}", i % 8, i / 8)))
            .collect();
        assert!(distinct.len() > STRIPE_COUNT / 2, "{distinct:?}");
    }

    #[test]
    fn exec_spanning_stripes_is_atomic_and_deadlock_free() {
        // Two EXEC blocks whose watch/write sets overlap in reversed key
        // order: ascending stripe acquisition means they serialize instead
        // of deadlocking, whatever the stripe assignment of the keys.
        let s = Store::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let (a, b) = if t % 2 == 0 {
                            ("left", "right")
                        } else {
                            ("right", "left")
                        };
                        let va = s.version(a, T0);
                        let vb = s.version(b, T0);
                        let _ = s
                            .exec(
                                &[(a.into(), va), (b.into(), vb)],
                                &[
                                    WriteOp::Set {
                                        key: a.into(),
                                        value: format!("{t}:{i}"),
                                        mode: SetMode::Always,
                                        ttl: None,
                                    },
                                    WriteOp::Set {
                                        key: b.into(),
                                        value: format!("{t}:{i}"),
                                        mode: SetMode::Always,
                                        ttl: None,
                                    },
                                ],
                                T0,
                            )
                            .unwrap();
                    }
                });
            }
        });
        // Winners always wrote both keys with the same tag.
        assert_eq!(s.get("left", T0).unwrap(), s.get("right", T0).unwrap());
    }

    #[test]
    fn command_count_is_one_per_public_op() {
        let s = Store::new();
        s.set("k", "v", SetMode::Always, None, T0).unwrap();
        s.get("k", T0).unwrap();
        let v = s.version("k", T0);
        s.exec(&[("k".into(), v)], &[], T0).unwrap();
        s.len(T0);
        assert_eq!(s.command_count(), 5);
        assert_eq!(s.stats().commands, 5);
    }

    #[test]
    fn read_path_leaves_mutation_epochs_untouched() {
        let s = Store::new();
        s.set("live", "v", SetMode::Always, None, T0).unwrap();
        s.sadd("members", "m", T0).unwrap();
        let epoch = s.mutation_epoch();
        // Reads on live and missing keys stay on the shared guard and
        // cannot move any stripe's mutation epoch.
        s.get("live", T0).unwrap();
        s.get("missing", T0).unwrap();
        assert!(!s.exists("missing", T0));
        s.ttl("live", T0);
        s.smembers("members", T0).unwrap();
        s.sismember("members", "m", T0).unwrap();
        s.version("live", T0);
        s.fence_floor("live");
        s.lease_token("live", "v", T0);
        assert_eq!(s.mutation_epoch(), epoch);
        // A read that trips over an *expired* entry escalates and reaps —
        // that one is a modification and must advance the epoch.
        s.set("lease", "v", SetMode::Always, Some(at(10)), T0)
            .unwrap();
        let epoch = s.mutation_epoch();
        assert_eq!(s.get("lease", at(20)).unwrap(), None);
        assert!(s.mutation_epoch() > epoch);
    }

    #[test]
    fn command_count_sums_across_threads() {
        let s = Store::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        s.get(&format!("k{i}"), T0).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.command_count(), 8 * 50);
    }

    #[test]
    fn concurrent_setnx_grants_exactly_one_winner() {
        let s = Store::new();
        let winners: Vec<bool> = std::thread::scope(|scope| {
            (0..16)
                .map(|i| {
                    let s = s.clone();
                    scope.spawn(move || {
                        s.set("lock", &format!("t{i}"), SetMode::IfAbsent, None, T0)
                            .unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(winners.iter().filter(|w| **w).count(), 1);
    }
}
