//! Property-based tests over the application models: arbitrary operation
//! sequences must preserve each app's business invariants.

use adhoc_transactions::apps::{broadleaf, discourse, jumpserver, mastodon, Mode};
use adhoc_transactions::core::locks::{KvSetNxLock, MemLock};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{LatencyModel, RealClock};
use adhoc_transactions::storage::{Database, EngineProfile};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum ShopOp {
    AddToCart { cart: u8, price: u8, qty: u8 },
    CheckOut { sku: u8, qty: u8 },
}

fn shop_op() -> impl Strategy<Value = ShopOp> {
    prop_oneof![
        (any::<u8>(), 1u8..20, 1u8..4).prop_map(|(c, p, q)| ShopOp::AddToCart {
            cart: c % 3,
            price: p,
            qty: q,
        }),
        (any::<u8>(), 1u8..4).prop_map(|(s, q)| ShopOp::CheckOut { sku: s % 2, qty: q }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of cart/check-out operations keeps every cart total
    /// consistent and every SKU conserved, in both coordination modes.
    #[test]
    fn broadleaf_invariants_hold_for_any_sequence(
        ops in proptest::collection::vec(shop_op(), 1..40),
        adhoc in any::<bool>(),
    ) {
        let mode = if adhoc { Mode::AdHoc } else { Mode::DatabaseTxn };
        let db = Database::in_memory(EngineProfile::MySqlLike);
        let orm = broadleaf::setup(&db).unwrap();
        let app = broadleaf::Broadleaf::new(orm, Arc::new(MemLock::new()), mode);
        for cart in 0..3i64 {
            app.seed_cart(cart + 1).unwrap();
        }
        let seeded = 500;
        for sku in 0..2i64 {
            app.seed_sku(sku + 1, seeded).unwrap();
        }
        let mut expected_sold = [0i64; 2];
        for op in &ops {
            match op {
                ShopOp::AddToCart { cart, price, qty } => {
                    app.add_to_cart(*cart as i64 + 1, *price as i64, *qty as i64).unwrap();
                }
                ShopOp::CheckOut { sku, qty } => {
                    if app.check_out(*sku as i64 + 1, *qty as i64).unwrap() {
                        expected_sold[*sku as usize] += *qty as i64;
                    }
                }
            }
        }
        for cart in 0..3i64 {
            prop_assert!(app.cart_total_consistent(cart + 1).unwrap());
        }
        for sku in 0..2i64 {
            prop_assert!(app.sku_conserved(sku + 1, seeded).unwrap());
            let row = app.orm().find_required("skus", sku + 1).unwrap();
            prop_assert_eq!(row.get_int("sold").unwrap(), expected_sold[sku as usize]);
        }
    }

    /// Any interleaving of grants never duplicates a (user, asset) row, and
    /// levels only ever ratchet upward.
    #[test]
    fn jumpserver_grants_stay_unique_and_monotonic(
        grants in proptest::collection::vec((0u8..3, 0u8..3, 0i64..5), 1..30),
    ) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = jumpserver::setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        let app = jumpserver::JumpServer::new(orm, Arc::new(KvSetNxLock::new(kv)), Mode::AdHoc);
        let mut best = std::collections::HashMap::new();
        for (user, asset, level) in &grants {
            app.grant(*user as i64, *asset as i64, *level).unwrap();
            let e = best.entry((*user, *asset)).or_insert(*level);
            if *level > *e {
                *e = *level;
            }
        }
        for user in 0..3u8 {
            prop_assert!(app.grants_unique(user as i64).unwrap());
        }
        // Levels match the maximum granted.
        let schema = app.orm().db().schema("grants").unwrap();
        for (id, row) in app.orm().db().dump_table("grants").unwrap() {
            let _ = id;
            let user = row.get_int(&schema, "user_id").unwrap() as u8;
            let asset = row.get_int(&schema, "asset_id").unwrap() as u8;
            let level = row.get_int(&schema, "level").unwrap();
            prop_assert_eq!(level, best[&(user, asset)]);
        }
    }

    /// Poll voting tallies exactly, whatever the vote order.
    #[test]
    fn mastodon_polls_tally_exactly(votes in proptest::collection::vec(any::<bool>(), 1..60)) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = mastodon::setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        let app = mastodon::Mastodon::new(orm, kv, Arc::new(MemLock::new()), Mode::AdHoc);
        app.seed_poll(1).unwrap();
        let mut want = (0i64, 0i64);
        for v in &votes {
            if *v {
                app.vote(1, mastodon::Choice::A).unwrap();
                want.0 += 1;
            } else {
                app.vote(1, mastodon::Choice::B).unwrap();
                want.1 += 1;
            }
        }
        prop_assert_eq!(app.poll_totals(1).unwrap(), want);
    }

    /// Sequences of edits and view bumps never lose an accepted edit: the
    /// post content always equals the last successful commit.
    #[test]
    fn discourse_edits_apply_in_commit_order(
        edits in proptest::collection::vec((any::<bool>(), 0u8..200), 1..25),
    ) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = discourse::setup(&db).unwrap();
        let app = discourse::Discourse::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
        app.seed_topic(1).unwrap();
        let post = app.seed_post(1, "v0", 0).unwrap();
        let mut last_committed = "v0".to_string();
        let seeded = app.orm().find_required("posts", post).unwrap();
        prop_assert_eq!(seeded.get_str("content").unwrap(), last_committed.clone());
        for (stale, tag) in &edits {
            let token = app.begin_edit(post).unwrap();
            if *stale {
                // A competing edit lands first; ours must conflict.
                let other = app.begin_edit(post).unwrap();
                let interim = format!("interim-{tag}");
                app.commit_edit(&other, &interim).unwrap();
                let out = app.commit_edit(&token, "stale-loser").unwrap();
                prop_assert_eq!(out, discourse::EditOutcome::Conflict);
                last_committed = interim;
            } else {
                let text = format!("edit-{tag}");
                let out = app.commit_edit(&token, &text).unwrap();
                prop_assert_eq!(out, discourse::EditOutcome::Success);
                last_committed = text;
            }
            let current = app.orm().find_required("posts", post).unwrap();
            prop_assert_eq!(current.get_str("content").unwrap(), last_committed.clone());
        }
    }
}
