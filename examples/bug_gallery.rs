//! The bug gallery: every §4 defect class, demonstrated live.
//!
//! For each cataloged bug the gallery runs the *buggy* configuration until
//! the paper's consequence manifests, then runs the *fixed* configuration
//! under the same load and shows the invariant holding.
//!
//! Run with `cargo run --example bug_gallery`.

use adhoc_transactions::apps::{broadleaf, mastodon, spree, Mode};
use adhoc_transactions::core::locks::mutual_exclusion_trial;
use adhoc_transactions::core::locks::{AdHocLock, KvSetNxLock, MemLock, SfuLock, SyncLock};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{LatencyModel, RealClock, VirtualClock};
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;
use std::time::Duration;

fn banner(name: &str, issue: &str) {
    println!("\n=== {name} ({issue}) ===");
}

fn main() {
    // ---------------------------------------------------------------
    banner("SFU outside a transaction", "Spree, §4.1.1 issue [61]");
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let broken = SfuLock::new(db.clone()).outside_transaction();
    let total = mutual_exclusion_trial(&broken, "order", 8, 200);
    println!(
        "  buggy: 8x200 locked increments, counter = {total} (lost {})",
        1600 - total
    );
    let fixed = SfuLock::new(db);
    let total = mutual_exclusion_trial(&fixed, "order", 8, 200);
    println!("  fixed: counter = {total} (exact)");
    assert_eq!(total, 1600);

    // ---------------------------------------------------------------
    banner(
        "synchronized on thread-local objects",
        "SCM Suite, §4.1.1 issue [91]",
    );
    let broken = SyncLock::new().synchronize_on_thread_local();
    let total = mutual_exclusion_trial(&broken, "account", 8, 300);
    println!("  buggy: counter = {total} (lost {})", 2400 - total);
    let fixed = SyncLock::new();
    let total = mutual_exclusion_trial(&fixed, "account", 8, 300);
    println!("  fixed: counter = {total} (exact)");
    assert_eq!(total, 2400);

    // ---------------------------------------------------------------
    banner(
        "Redis lease expires mid-critical-section",
        "Mastodon, §4.1.1 issue [65]",
    );
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let lease = KvSetNxLock::new(kv).with_ttl(Duration::from_millis(100));
    let g = lease.lock("status").expect("lock");
    clock.advance(Duration::from_millis(200)); // the slow critical section
    let stolen = lease.lock("status").expect("second holder");
    println!(
        "  buggy: first holder still believes it holds the lock: yes, it never checks (reality: {})", g.is_valid()
    );
    println!(
        "  fixed: checking Guard::is_valid() before committing returns {}",
        g.is_valid()
    );
    assert!(!g.is_valid());
    assert!(stolen.is_valid());

    // ---------------------------------------------------------------
    banner(
        "Omitted SKU coordination at check-out",
        "Broadleaf, §4.2 issue [67]",
    );
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = broadleaf::setup(&db).expect("schema");
    let buggy = Arc::new(
        broadleaf::Broadleaf::new(orm, Arc::new(MemLock::new()), Mode::AdHoc)
            .omit_sku_coordination(),
    );
    buggy.seed_sku(1, 1_000_000).expect("seed");
    std::thread::scope(|s| {
        for _ in 0..8 {
            let app = Arc::clone(&buggy);
            s.spawn(move || {
                for _ in 0..100 {
                    app.check_out(1, 1).expect("checkout");
                }
            });
        }
    });
    let sku = buggy.orm().find_required("skus", 1).expect("sku");
    println!(
        "  buggy: 800 successful check-outs recorded sold = {} (stock drifted: {})",
        sku.get_int("sold").expect("sold"),
        !buggy.sku_conserved(1, 1_000_000).expect("check")
            || sku.get_int("sold").expect("sold") != 800
    );
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = broadleaf::setup(&db).expect("schema");
    let fixed = Arc::new(broadleaf::Broadleaf::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    fixed.seed_sku(1, 1_000_000).expect("seed");
    std::thread::scope(|s| {
        for _ in 0..8 {
            let app = Arc::clone(&fixed);
            s.spawn(move || {
                for _ in 0..100 {
                    app.check_out(1, 1).expect("checkout");
                }
            });
        }
    });
    let sku = fixed.orm().find_required("skus", 1).expect("sku");
    println!(
        "  fixed: sold = {} (exact)",
        sku.get_int("sold").expect("sold")
    );
    assert_eq!(sku.get_int("sold").expect("sold"), 800);

    // ---------------------------------------------------------------
    banner(
        "Forgotten ad hoc transaction in JSON handlers",
        "Spree, §4.2 issue [59]",
    );
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).expect("schema");
    let app = Arc::new(spree::Spree::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    app.seed_order(1).expect("seed");
    let mut dup_round = None;
    for round in 0..200 {
        std::thread::scope(|s| {
            for _ in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    app.add_payment_json(1).expect("json payment");
                });
            }
        });
        if !app.one_payment_per_order(1).expect("check") {
            dup_round = Some(round);
            break;
        }
        // reset payments for the next attempt
        let orm = app.orm().clone();
        let payments = orm
            .transaction(|t| {
                Ok(t.raw()
                    .scan("payments", &adhoc_transactions::storage::Predicate::All)?)
            })
            .expect("scan");
        for (id, _) in payments {
            orm.delete("payments", id).expect("cleanup");
        }
    }
    println!(
        "  buggy: uncoordinated JSON handler duplicated a payment in round {:?}",
        dup_round.expect("the race should fire within 200 rounds")
    );
    // The HTML handler (with the predicate lock) stays exactly-once.
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).expect("schema");
    let html = Arc::new(spree::Spree::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    html.seed_order(1).expect("seed");
    let created: usize = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let app = Arc::clone(&html);
                s.spawn(move || app.add_payment(1).expect("payment") as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("join"))
            .sum()
    });
    println!("  fixed: locked HTML handler created exactly {created} payment");
    assert_eq!(created, 1);

    // ---------------------------------------------------------------
    banner(
        "Payments stuck after a mid-flight crash",
        "Spree, §4.3 issue [60]",
    );
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).expect("schema");
    let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
    app.seed_order(1).expect("seed");
    app.add_payment(1).expect("payment");
    app.process_payment(1, true).expect("crash mid-processing");
    let stuck = !app.process_payment(1, false).expect("retry");
    println!("  buggy: after the crash, check-out can no longer proceed: {stuck}");
    let reset = app.boot_recovery().expect("fsck");
    let resumed = app.process_payment(1, false).expect("resume");
    println!("  fixed: boot-time recovery reset {reset} payment(s); check-out resumed: {resumed}");
    assert!(stuck && resumed);

    // ---------------------------------------------------------------
    banner("Lease-expired invite overuse", "Mastodon, Table 5b");
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).expect("schema");
    let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let lease = KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(5));
    let social = Arc::new(
        mastodon::Mastodon::new(orm, kv, Arc::new(lease), Mode::AdHoc)
            .with_critical_section_delay(Duration::from_millis(12)),
    );
    social.seed_invite(1, 1).expect("seed");
    let successes: usize = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                let social = Arc::clone(&social);
                s.spawn(move || social.redeem_invite(1).expect("redeem") as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("join"))
            .sum()
    });
    println!("  buggy: a 1-use invitation was redeemed {successes} times (TTL 5 ms < 12 ms critical section)");

    // ---------------------------------------------------------------
    banner(
        "Opposite-order locks stall: no deadlock detector",
        "§3.3.1 / Finding 5",
    );
    {
        use adhoc_transactions::core::locks::{LockError, WatchdogLock};
        // Buggy shape: two requests lock {acct:1, acct:2} in opposite
        // orders. With a plain lock nothing aborts — both stall to the
        // timeout. The watchdog restores the engine's victim-abort
        // contract at the application-lock layer.
        let lock = Arc::new(WatchdogLock::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let started = std::time::Instant::now();
        let victims: usize = std::thread::scope(|s| {
            [("acct:1", "acct:2"), ("acct:2", "acct:1")]
                .into_iter()
                .map(|(first, second)| {
                    let lock = Arc::clone(&lock);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let g1 = lock.lock(first).expect("first key");
                        barrier.wait();
                        let victim = match lock.lock(second) {
                            Ok(g2) => {
                                g2.unlock().expect("unlock inner");
                                0
                            }
                            Err(LockError::Deadlock { .. }) => 1,
                            Err(e) => panic!("unexpected: {e}"),
                        };
                        g1.unlock().expect("unlock outer");
                        victim
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("join"))
                .sum()
        });
        assert_eq!(victims, 1);
        println!(
            "  fixed: watchdog aborted exactly one victim in {:?} instead of a 10 s stall",
            started.elapsed()
        );
    }

    println!("\nBug gallery complete: every defect reproduced and its fix verified.");
}
