//! Crash-point fuzzing for the §4.3 payment flow (issue \[60\]): random
//! sequences of payment creation, processing (with crashes injected at the
//! paper's crash point), and boot recovery must always agree with a
//! per-order state-machine model — and recovery must always restore
//! serviceability.

use adhoc_transactions::apps::{spree, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::storage::{Database, EngineProfile};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const ORDERS: i64 = 3;

/// The model's view of one order's payment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PayState {
    None,
    New,
    Processing,
    Completed,
}

#[derive(Debug, Clone, Copy)]
enum CrashOp {
    AddPayment { order: i64 },
    Process { order: i64, crash: bool },
    BootRecovery,
}

fn crash_op() -> impl Strategy<Value = CrashOp> {
    prop_oneof![
        (1..=ORDERS).prop_map(|order| CrashOp::AddPayment { order }),
        (1..=ORDERS, any::<bool>()).prop_map(|(order, crash)| CrashOp::Process { order, crash }),
        Just(CrashOp::BootRecovery),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every return value matches the state machine, completed payments
    /// never regress, and a final boot recovery always makes every order
    /// with a payment completable — the paper's fix, fuzzed.
    #[test]
    fn payment_crashes_recover_to_a_serviceable_state(
        ops in proptest::collection::vec(crash_op(), 1..30),
    ) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = spree::setup(&db).unwrap();
        let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
        for order in 1..=ORDERS {
            app.seed_order(order).unwrap();
        }
        let mut model: HashMap<i64, PayState> =
            (1..=ORDERS).map(|o| (o, PayState::None)).collect();

        for op in &ops {
            match *op {
                CrashOp::AddPayment { order } => {
                    let created = app.add_payment(order).unwrap();
                    let state = model.get_mut(&order).unwrap();
                    prop_assert_eq!(created, *state == PayState::None);
                    if created {
                        *state = PayState::New;
                    }
                }
                CrashOp::Process { order, crash } => {
                    let done = app.process_payment(order, crash).unwrap();
                    let state = model.get_mut(&order).unwrap();
                    match *state {
                        PayState::New => {
                            if crash {
                                prop_assert!(!done, "crashed processing reports failure");
                                *state = PayState::Processing;
                            } else {
                                prop_assert!(done);
                                *state = PayState::Completed;
                            }
                        }
                        // Stuck, absent, or already-finished payments all
                        // refuse — the §4.3 symptom.
                        PayState::None | PayState::Processing | PayState::Completed => {
                            prop_assert!(!done, "{:?} must refuse", *state);
                        }
                    }
                }
                CrashOp::BootRecovery => {
                    let stuck = model.values().filter(|s| **s == PayState::Processing).count();
                    prop_assert_eq!(app.boot_recovery().unwrap(), stuck);
                    for state in model.values_mut() {
                        if *state == PayState::Processing {
                            *state = PayState::New;
                        }
                    }
                }
            }
            for order in 1..=ORDERS {
                prop_assert!(app.one_payment_per_order(order).unwrap());
            }
        }

        // The fix's promise: after one boot recovery, every order that has
        // a payment can finish it.
        app.boot_recovery().unwrap();
        for (order, state) in &model {
            match state {
                PayState::None => prop_assert!(!app.process_payment(*order, false).unwrap()),
                PayState::Completed => {
                    prop_assert!(!app.process_payment(*order, false).unwrap());
                }
                PayState::New | PayState::Processing => {
                    prop_assert!(
                        app.process_payment(*order, false).unwrap(),
                        "order {} unserviceable after recovery", order
                    );
                }
            }
        }
    }
}
