//! Engine profiles and isolation levels.

use adhoc_sim::{LatencyModel, RealClock, SharedClock};
use std::sync::Arc;
use std::time::Duration;

/// A data-access event, delivered synchronously on the issuing thread.
///
/// The hook behind the §6 "development support tools": external monitors
/// (see `adhoc-core`'s `monitor` module) subscribe to reconstruct each
/// request's access trace and flag suspicious coordination patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessEvent {
    /// A row was returned by a read (point read, scan hit, locking read).
    Read {
        /// Issuing transaction.
        txn: u64,
        /// Table name.
        table: String,
        /// Primary key read.
        row: i64,
        /// Whether the read itself acquired an exclusive engine lock
        /// (`SELECT … FOR UPDATE`).
        locking: bool,
    },
    /// A row was inserted, updated or deleted (buffered until commit).
    Write {
        /// Issuing transaction.
        txn: u64,
        /// Table name.
        table: String,
        /// Primary key written.
        row: i64,
    },
    /// The transaction committed.
    Committed {
        /// The committing transaction.
        txn: u64,
    },
    /// The transaction aborted (explicitly, by error, or on drop).
    Aborted {
        /// The aborting transaction.
        txn: u64,
    },
}

/// Receives [`AccessEvent`]s. Implementations must be cheap and re-entrant;
/// they run inline on the statement path.
pub trait StatementObserver: Send + Sync {
    /// Receive one event, synchronously on the issuing thread.
    fn on_event(&self, event: &AccessEvent);
}

/// Which real-world engine's concurrency-control behaviour to emulate.
///
/// §3.1.1 of the paper shows the same application code behaving differently
/// on MySQL and PostgreSQL; both profiles are first-class here so every
/// experiment can run on the engine the paper used (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineProfile {
    /// InnoDB-style: 2PL with record + gap locks; non-locking snapshot
    /// reads below Serializable; shared locking reads at Serializable.
    MySqlLike,
    /// PostgreSQL-style: MVCC snapshots; first-committer-wins under
    /// Repeatable Read (Snapshot Isolation); commit-time certification
    /// under Serializable (SSI-flavoured).
    PostgresLike,
}

impl EngineProfile {
    /// The default isolation level of the emulated engine (§2.1, footnote 2:
    /// "MySQL defaults to Repeatable Read; PostgreSQL defaults to Read
    /// Committed").
    pub fn default_isolation(self) -> IsolationLevel {
        match self {
            EngineProfile::MySqlLike => IsolationLevel::RepeatableRead,
            EngineProfile::PostgresLike => IsolationLevel::ReadCommitted,
        }
    }

    /// Human-readable profile name.
    pub fn name(self) -> &'static str {
        match self {
            EngineProfile::MySqlLike => "MySQL-like",
            EngineProfile::PostgresLike => "PostgreSQL-like",
        }
    }
}

/// ANSI isolation levels supported by both profiles.
///
/// Read Uncommitted is omitted: neither the paper nor the studied
/// applications use it, and PostgreSQL treats it as Read Committed anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// Per-statement snapshots; no lost-update protection.
    ReadCommitted,
    /// Transaction-wide snapshot (Snapshot Isolation on the
    /// PostgreSQL-like profile).
    RepeatableRead,
    /// Full serializability (locking reads on MySQL-like, SSI-style
    /// certification on PostgreSQL-like).
    Serializable,
}

impl IsolationLevel {
    /// Human-readable level name.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "Read Committed",
            IsolationLevel::RepeatableRead => "Repeatable Read",
            IsolationLevel::Serializable => "Serializable",
        }
    }
}

/// Database configuration.
#[derive(Clone)]
pub struct DbConfig {
    /// Which engine's concurrency control to emulate.
    pub profile: EngineProfile,
    /// Time source for lock waits and latency charging.
    pub clock: SharedClock,
    /// Physical costs charged per statement / commit.
    pub latency: LatencyModel,
    /// Commits charge a durable flush when true.
    pub durable: bool,
    /// Upper bound on any single lock wait before `LockWaitTimeout`.
    pub lock_wait_timeout: Duration,
    /// Optional statement observer (access-trace monitoring).
    pub observer: Option<Arc<dyn StatementObserver>>,
    /// Write-ahead log sync policy; `None` disables the WAL entirely
    /// (commits still charge a flush when `durable`, but nothing is
    /// logged and crash recovery has nothing to replay).
    pub wal: Option<crate::wal::WalSyncPolicy>,
    /// Simulated cost of one WAL fsync, charged on `clock` inside every
    /// sync (zero by default — the in-process page-cache behaviour this
    /// box actually exhibits). See [`Wal::with_fsync_latency`].
    ///
    /// [`Wal::with_fsync_latency`]: crate::wal::Wal::with_fsync_latency
    pub wal_fsync_latency: Duration,
}

impl DbConfig {
    /// In-process test configuration: no latency charges, generous timeout.
    pub fn in_memory(profile: EngineProfile) -> Self {
        Self {
            profile,
            clock: RealClock::shared(),
            latency: LatencyModel::zero(),
            durable: false,
            lock_wait_timeout: Duration::from_secs(10),
            observer: None,
            wal: None,
            wal_fsync_latency: Duration::ZERO,
        }
    }

    /// The paper's deployment: remote RDBMS, durable commits.
    pub fn networked(profile: EngineProfile, clock: SharedClock, latency: LatencyModel) -> Self {
        Self {
            profile,
            clock,
            latency,
            durable: true,
            lock_wait_timeout: Duration::from_secs(10),
            observer: None,
            wal: None,
            wal_fsync_latency: Duration::ZERO,
        }
    }

    /// Override the lock-wait timeout.
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self
    }

    /// Attach a statement observer.
    pub fn with_observer(mut self, observer: Arc<dyn StatementObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enable the write-ahead log with a commit-time fsync (every commit is
    /// durable the moment its ack is sent).
    pub fn with_wal(mut self) -> Self {
        self.wal = Some(crate::wal::WalSyncPolicy::OnCommit);
        self
    }

    /// Enable the write-ahead log under a time-window batching policy:
    /// records are buffered and fsynced when `every` elapses on the
    /// configured clock, opening an acked-but-undurable window between
    /// syncs.
    pub fn with_wal_interval(mut self, every: Duration) -> Self {
        self.wal = Some(crate::wal::WalSyncPolicy::Interval(every));
        self
    }

    /// Enable the write-ahead log under group commit: commits within an
    /// epoch share one leader fsync (followers free-ride on the flushed
    /// tail) while every acked commit is still durable — the safe policy
    /// with the amortized flush cost.
    pub fn with_wal_group_commit(mut self) -> Self {
        self.wal = Some(crate::wal::WalSyncPolicy::GroupCommit);
        self
    }

    /// Charge a simulated device latency for every WAL fsync. Makes the
    /// sync-policy ablation honest on hardware where a real fsync is
    /// near-free: `OnCommit` pays it per commit, `GroupCommit` once per
    /// batch.
    pub fn with_wal_fsync_latency(mut self, latency: Duration) -> Self {
        self.wal_fsync_latency = latency;
        self
    }
}

impl std::fmt::Debug for DbConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbConfig")
            .field("profile", &self.profile)
            .field("latency", &self.latency)
            .field("durable", &self.durable)
            .field("lock_wait_timeout", &self.lock_wait_timeout)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_defaults_match_paper_footnote() {
        assert_eq!(
            EngineProfile::MySqlLike.default_isolation(),
            IsolationLevel::RepeatableRead
        );
        assert_eq!(
            EngineProfile::PostgresLike.default_isolation(),
            IsolationLevel::ReadCommitted
        );
    }

    #[test]
    fn isolation_levels_are_ordered_by_strength() {
        assert!(IsolationLevel::ReadCommitted < IsolationLevel::RepeatableRead);
        assert!(IsolationLevel::RepeatableRead < IsolationLevel::Serializable);
    }

    #[test]
    fn config_builders() {
        let c = DbConfig::in_memory(EngineProfile::MySqlLike)
            .with_lock_wait_timeout(Duration::from_millis(50));
        assert_eq!(c.lock_wait_timeout, Duration::from_millis(50));
        assert!(!c.durable);
        let n = DbConfig::networked(
            EngineProfile::PostgresLike,
            RealClock::shared(),
            LatencyModel::paper(),
        );
        assert!(n.durable);
    }
}
