//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the parking_lot API it actually uses,
//! implemented over `std::sync`. Semantics match parking_lot where it
//! matters to callers: `lock()`/`read()`/`write()` return guards directly
//! (no poisoning — a poisoned std lock is recovered transparently, matching
//! parking_lot's "no poisoning" contract), and `Condvar::wait` takes the
//! guard by `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Instant;

/// Mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a [`Condvar::wait_until`] call.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with this module's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wait until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wait until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
