//! Cross-crate integration: toolkit + ORM + engine + applications + study
//! working together, end to end.

use adhoc_transactions::apps::{broadleaf, mastodon, spree, Mode};
use adhoc_transactions::core::checker::{referential_integrity, ConsistencyChecker};
use adhoc_transactions::core::hints::HintProxy;
use adhoc_transactions::core::locks::{AdHocLock, DbTableLock, KvSetNxLock, MemLock};
use adhoc_transactions::core::optimistic::{ContinuationStore, OptimisticTransaction};
use adhoc_transactions::core::validation::CommitOutcome;
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{LatencyModel, RealClock};
use adhoc_transactions::storage::{Database, EngineProfile, IsolationLevel};
use adhoc_transactions::study;
use std::sync::Arc;

/// A full shopping session: carts, check-out, payment — coordinated by
/// three different toolkit locks against one database, with a consistency
/// checker sweeping afterwards.
#[test]
fn end_to_end_shopping_session() {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = broadleaf::setup(&db).unwrap();
    let shop = Arc::new(broadleaf::Broadleaf::new(
        orm,
        Arc::new(DbTableLock::new(db.clone())),
        Mode::AdHoc,
    ));
    shop.seed_cart(1).unwrap();
    shop.seed_sku(1, 50).unwrap();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let shop = Arc::clone(&shop);
            s.spawn(move || {
                for i in 0..5 {
                    shop.add_to_cart(1, 10 + i, 1).unwrap();
                    shop.check_out(1, 1).unwrap();
                }
            });
        }
    });
    assert!(shop.cart_total_consistent(1).unwrap());
    assert!(shop.sku_conserved(1, 50).unwrap());
    let sku = shop.orm().find_required("skus", 1).unwrap();
    assert_eq!(sku.get_int("sold").unwrap(), 20);
}

/// The Mastodon timeline flow plus the fsck-style checker from §3.4.2:
/// a crash (leaked lock + partial write) leaves an inconsistency that the
/// checker detects and repairs.
#[test]
fn timeline_crash_recovery_via_checker() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).unwrap();
    let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let lock = Arc::new(KvSetNxLock::new(kv.clone()));
    let app = mastodon::Mastodon::new(orm, kv.clone(), lock.clone(), Mode::AdHoc);

    app.create_post(7, 1, "hello").unwrap();
    app.create_post(7, 2, "world").unwrap();
    // Simulate a crash between the Redis write and the DB delete: remove
    // the row directly, leaving the timeline entry dangling.
    app.orm().delete("posts", 2).unwrap();
    assert!(!app.timeline_consistent(7).unwrap());

    // The periodic checker finds and fixes it (mirror of Discourse's
    // twelve-hourly job). Timeline entries are in Redis, so the rule reads
    // both stores.
    let dangling: Vec<i64> = app
        .timeline(7)
        .unwrap()
        .into_iter()
        .filter(|id| app.orm().find("posts", *id).unwrap().is_none())
        .collect();
    assert_eq!(dangling, vec![2]);
    for id in dangling {
        kv.srem("timeline:7", &id.to_string()).unwrap();
    }
    assert!(app.timeline_consistent(7).unwrap());
}

/// §6's hint proxy driving a Spree payment flow in place of the hand-rolled
/// lock: the user-lock hint provides the same exactly-once behaviour.
#[test]
fn hint_proxy_replaces_ad_hoc_payment_lock() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let app = Arc::new(spree::Spree::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    app.seed_order(1).unwrap();
    let proxy = Arc::new(HintProxy::new(db));

    let created: usize = std::thread::scope(|s| {
        (0..6)
            .map(|_| {
                let app = Arc::clone(&app);
                let proxy = Arc::clone(&proxy);
                s.spawn(move || {
                    // The proxy's user lock replaces `add_payment`'s
                    // internal predicate lock.
                    let guard = proxy.user_lock("payments:order=1").unwrap();
                    let created = app.add_payment_json(1).unwrap(); // uncoordinated API...
                    guard.unlock().unwrap(); // ...made safe by the hint
                    created as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(created, 1);
    assert!(app.one_payment_per_order(1).unwrap());
}

/// The §6 OCC continuation spanning requests against the Discourse model,
/// racing a direct edit: exactly one side wins.
#[test]
fn continuation_vs_direct_edit_race() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = adhoc_transactions::apps::discourse::setup(&db).unwrap();
    let app = adhoc_transactions::apps::discourse::Discourse::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    );
    app.seed_topic(1).unwrap();
    let post = app.seed_post(1, "original", 0).unwrap();

    let store = ContinuationStore::new();
    let mut txn = OptimisticTransaction::new();
    txn.read(app.orm(), "posts", post).unwrap().unwrap();
    let tid = store.save(txn);

    // A direct edit lands between the requests.
    let token = app.begin_edit(post).unwrap();
    app.commit_edit(&token, "direct edit").unwrap();

    let mut txn = store.restore(tid).unwrap();
    txn.write("posts", post, &[("content", "continuation edit".into())]);
    assert_eq!(txn.commit(app.orm()).unwrap(), CommitOutcome::Conflict);
    assert_eq!(
        app.orm()
            .find_required("posts", post)
            .unwrap()
            .get_str("content")
            .unwrap(),
        "direct edit"
    );
}

/// The study corpus is wired to the toolkit: every lock implementation a
/// case references exists in the toolkit and can acquire/release, and every
/// application in the corpus has a workload model in `adhoc-apps`.
#[test]
fn corpus_references_are_backed_by_implementations() {
    use adhoc_transactions::core::taxonomy::LockImpl;
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let build = |which: LockImpl| -> Box<dyn AdHocLock> {
        match which {
            LockImpl::Sync => Box::new(adhoc_transactions::core::locks::SyncLock::new()),
            LockImpl::Mem => Box::new(MemLock::new()),
            LockImpl::MemLru => Box::new(adhoc_transactions::core::locks::MemLruLock::new(64)),
            LockImpl::KvSetNx => Box::new(KvSetNxLock::new(kv.clone())),
            LockImpl::KvMulti => Box::new(adhoc_transactions::core::locks::KvMultiLock::new(
                kv.clone(),
            )),
            LockImpl::Sfu => Box::new(adhoc_transactions::core::locks::SfuLock::new(db.clone())),
            LockImpl::DbTable => Box::new(DbTableLock::new(db.clone())),
        }
    };
    let mut seen = std::collections::BTreeSet::new();
    for case in study::CASES {
        if let Some(which) = case.lock_impl {
            if seen.insert(which.label()) {
                let lock = build(which);
                lock.lock("probe").unwrap().unlock().unwrap();
            }
        }
    }
    assert_eq!(seen.len(), 7, "all seven implementations exercised");
}

/// Crash-restart drill: the database survives, in-flight work is gone, and
/// boot recovery restores serviceability (issue \[60\]'s fix, generalized).
#[test]
fn crash_restart_drill() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
    app.seed_order(1).unwrap();
    app.add_payment(1).unwrap();
    app.process_payment(1, true).unwrap(); // crash mid-flight

    // Application restart: a fresh ORM over the same database.
    let orm2 = adhoc_transactions::orm::Orm::new(db.clone(), app.orm().registry().clone());
    let app2 = spree::Spree::new(orm2, Arc::new(MemLock::new()), Mode::AdHoc);
    assert!(!app2.process_payment(1, false).unwrap(), "still stuck");
    assert_eq!(app2.boot_recovery().unwrap(), 1);
    assert!(app2.process_payment(1, false).unwrap());
}

/// Referential-integrity checker across the Discourse schema.
#[test]
fn referential_checker_on_discourse() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = adhoc_transactions::apps::discourse::setup(&db).unwrap();
    let app = adhoc_transactions::apps::discourse::Discourse::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    );
    app.seed_topic(1).unwrap();
    app.seed_image(5, 100).unwrap();
    app.seed_post(1, "ok img:5", 5).unwrap();
    let checker = ConsistencyChecker::new()
        .rule(referential_integrity("posts", "topic_id", "topics"))
        .rule(referential_integrity("posts", "img_id", "images"));
    assert!(checker.run(&db).is_clean());
    // A post referencing a missing image is caught.
    app.seed_post(1, "broken img:9", 9).unwrap();
    let report = checker.run(&db);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].message.contains("img_id"));
}

/// Isolation-level matrix: one scenario, four configurations — the §3.1.1
/// argument that DBT forces one level onto every operation while AHT mixes.
#[test]
fn isolation_flexibility_argument() {
    // AHT: critical RMW behind a lock at Read Committed succeeds and is
    // exact; the non-critical timestamp updates never abort anyone.
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let app = Arc::new(spree::Spree::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::AdHoc,
    ));
    app.seed_catalog(1, 1, &[10, 11], 100).unwrap();
    app.seed_order(1).unwrap();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..5 {
                    assert!(app.decrement_stock(1, 1, 1).unwrap());
                }
            });
        }
    });
    assert_eq!(app.sku_quantity(1).unwrap(), 80);
    // No engine-level conflicts were needed.
    let stats = app.orm().db().stats();
    assert_eq!(stats.serialization_failures, 0);
    assert_eq!(stats.lock_stats.deadlocks, 0);
}

/// The default-isolation claim from §2.1's footnote, as used by every ORM
/// transaction in the workspace.
#[test]
fn orm_transactions_run_at_engine_default() {
    let pg = Database::in_memory(EngineProfile::PostgresLike);
    assert_eq!(pg.default_isolation(), IsolationLevel::ReadCommitted);
    let my = Database::in_memory(EngineProfile::MySqlLike);
    assert_eq!(my.default_isolation(), IsolationLevel::RepeatableRead);
}
