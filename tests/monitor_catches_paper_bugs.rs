//! The §6 development-support tool against the real application models:
//! the runtime monitor must flag the paper's bugs when the buggy variants
//! run, and stay quiet on the fixed variants.
//!
//! These are single-schedule checks; the schedule-*independence* of the
//! monitor's verdicts (no interleaving where a hazard slips past, no
//! schedule-dependent false positives) is established by the explorer in
//! `tests/schedule_regressions.rs`.

use adhoc_transactions::apps::{discourse, mastodon, spree, Mode};
use adhoc_transactions::core::locks::{KvSetNxLock, MemLock};
use adhoc_transactions::core::monitor::{AccessMonitor, Hazard};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{LatencyModel, VirtualClock};
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;
use std::time::Duration;

/// Discourse issue \[76\]: the lock-after-read edit flow is flagged; the
/// corrected flow is not.
#[test]
fn monitor_flags_discourse_lock_after_read() {
    for buggy in [true, false] {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = discourse::setup(&db).unwrap();
        let monitor = AccessMonitor::new();
        monitor.attach(&db);
        let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
        let mut app = discourse::Discourse::new(orm, lock, Mode::AdHoc);
        if buggy {
            app = app.lock_after_read();
        }
        app.seed_topic(1).unwrap();
        let post = app.seed_post(1, "original", 0).unwrap();
        let token = app.begin_edit(post).unwrap();
        app.commit_edit(&token, "edited").unwrap();

        let flagged = monitor
            .hazards()
            .iter()
            .any(|h| matches!(h, Hazard::LockAfterRead { table, .. } if table == "posts"));
        assert_eq!(
            flagged,
            buggy,
            "buggy={buggy}: hazards = {:?}",
            monitor.hazards()
        );
    }
}

/// Mastodon issue \[65\]: the expired lease is flagged the moment the guard
/// is released late.
#[test]
fn monitor_flags_mastodon_expired_lease() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).unwrap();
    let clock = Arc::new(VirtualClock::new());
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lease = monitor.wrap_lock(Arc::new(
        KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(5)),
    ));
    let app = mastodon::Mastodon::new(orm, kv, lease, Mode::AdHoc);
    app.seed_invite(1, 5).unwrap();

    // Stretch the critical section past the lease via the virtual clock.
    // (redeem_invite itself sleeps on the real clock, so advance manually
    // around a hand-rolled critical section instead.)
    let guard_lock = monitor.wrap_lock(Arc::new(
        KvSetNxLock::new(app.kv().clone()).with_ttl(Duration::from_millis(5)),
    ));
    let guard = guard_lock.lock("redeem:1").unwrap();
    clock.advance(Duration::from_millis(10));
    let _ = guard.unlock();

    assert!(monitor
        .hazards()
        .iter()
        .any(|h| matches!(h, Hazard::ExpiredLeaseRelease { .. })));
}

/// Spree issue \[59\]: once the uncoordinated JSON handler writes the table
/// the locked HTML handler also writes, the monitor reports mixed
/// coordination on `payments`.
#[test]
fn monitor_flags_spree_forgotten_json_handler() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = spree::setup(&db).unwrap();
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let app = spree::Spree::new(orm, lock, Mode::AdHoc);
    app.seed_order(1).unwrap();
    app.seed_order(2).unwrap();

    // HTML handler: coordinated.
    assert!(app.add_payment(1).unwrap());
    assert!(monitor.is_clean(), "{:?}", monitor.hazards());
    // JSON handler: forgotten ad hoc transaction.
    assert!(app.add_payment_json(2).unwrap());
    assert!(monitor
        .hazards()
        .iter()
        .any(|h| matches!(h, Hazard::MixedCoordination { table } if table == "payments")));
}

/// The monitor is silent across the whole correct Broadleaf checkout flow.
#[test]
fn monitor_is_quiet_on_correct_flows() {
    let db = Database::in_memory(EngineProfile::MySqlLike);
    let orm = adhoc_transactions::apps::broadleaf::setup(&db).unwrap();
    let monitor = AccessMonitor::new();
    monitor.attach(&db);
    let lock = monitor.wrap_lock(Arc::new(MemLock::new()));
    let app = adhoc_transactions::apps::broadleaf::Broadleaf::new(orm, lock, Mode::AdHoc);
    app.seed_cart(1).unwrap();
    app.seed_sku(1, 100).unwrap();
    for i in 0..5 {
        app.add_to_cart(1, 10 + i, 1).unwrap();
        app.check_out(1, 1).unwrap();
    }
    // check_out reads the SKU under its lock before writing, and seeding
    // happens entirely outside any lock: neither is a hazard.
    let hazards = monitor.hazards();
    assert!(
        !hazards.iter().any(|h| matches!(
            h,
            Hazard::LockAfterRead { .. } | Hazard::ExpiredLeaseRelease { .. }
        )),
        "{hazards:?}"
    );
}
