//! Deterministic interleaving exploration: a cooperative scheduler plus a
//! schedule explorer.
//!
//! The paper's bug catalog (§4) is a catalog of *interleavings*: lost
//! updates from non-atomic check-then-act, leases expiring mid-critical-
//! section, unlocks clobbering the next holder. Wall-clock stress tests
//! find those races by luck; this module finds them by *schedule*. A
//! [`Trial`] owns a set of logical tasks (each on its own OS thread) and
//! serializes them: exactly one task runs at a time, and control transfers
//! only at explicit [`yield_point`]s that the substrates call on their
//! shared-state hot paths (every simulated KV round trip, every storage
//! transaction begin/statement/commit, every lock wait, every retry
//! backoff). Which task runs next is decided by a deterministic
//! [`policy`](Explorer) — seeded random sampling or PCT-style
//! bounded-preemption search — and every decision is recorded, so a failing
//! execution is summarized by one compact **witness string**
//! (`SCHED=v1:t2:0x4.1x3.0…`) that [`replay`]s the exact interleaving
//! bit-for-bit from a fresh process.
//!
//! The hook is zero-cost when disabled: with no explorer active in the
//! process, [`yield_point`] is a single relaxed atomic load, so production
//! benches are untouched.
//!
//! # Example
//!
//! ```
//! use adhoc_sim::sched::{yield_point, Explorer, SchedPoint};
//! use std::sync::atomic::{AtomicI64, Ordering};
//! use std::sync::Arc;
//!
//! // A classic unprotected read-modify-write: only some interleavings
//! // lose an update. The explorer finds one and hands back its schedule.
//! let result = Explorer::new(42).budget(64).explore(|trial| {
//!     let v = Arc::new(AtomicI64::new(0));
//!     for t in 0..2 {
//!         let v = Arc::clone(&v);
//!         trial.task(&format!("inc-{t}"), move || {
//!             let read = v.load(Ordering::SeqCst);
//!             yield_point(SchedPoint::Backoff); // the race window
//!             v.store(read + 1, Ordering::SeqCst);
//!         });
//!     }
//!     trial.run()?;
//!     if v.load(Ordering::SeqCst) != 2 {
//!         return Err("lost update".into());
//!     }
//!     Ok(())
//! });
//! let cx = result.counter_example().expect("the race must be found");
//! assert!(adhoc_sim::sched::replay(&cx.witness, |trial| {
//!     // ... the same scenario replays the same failure ...
//! # let v = Arc::new(AtomicI64::new(0));
//! # for t in 0..2 {
//! #     let v = Arc::clone(&v);
//! #     trial.task(&format!("inc-{t}"), move || {
//! #         let read = v.load(Ordering::SeqCst);
//! #         yield_point(SchedPoint::Backoff);
//! #         v.store(read + 1, Ordering::SeqCst);
//! #     });
//! # }
//! # trial.run()?;
//! # if v.load(Ordering::SeqCst) != 2 { return Err("lost update".into()); }
//! # Ok(())
//! }).is_err());
//! ```

use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Trial outcomes carrying this message are *inconclusive* (the schedule
/// step budget ran out — typically a livelock under an adversarial
/// schedule), not failures: the explorer skips them and keeps searching,
/// and scenario code should propagate them unchanged (`trial.run()?`).
pub const INCONCLUSIVE: &str = "sched: step budget exhausted (inconclusive trial)";

/// Count of live [`Trial::run`]s in the process. `yield_point`'s fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The scheduler context of the current thread, when it is a task.
    static CURRENT_TASK: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind tasks when a trial aborts (another task
/// panicked, or the step budget overflowed). Never reported as a failure.
struct SchedAbort;

/// Where in the substrate stack a yield happened. Purely diagnostic today
/// (every kind is a full scheduling point), except that [`Backoff`] and
/// [`LockWait`] additionally deprioritize the yielding task under the PCT
/// policy so polling loops cannot livelock the highest priority slot.
///
/// [`Backoff`]: SchedPoint::Backoff
/// [`LockWait`]: SchedPoint::LockWait
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPoint {
    /// One simulated KV round trip (`adhoc-kv` client command).
    KvRoundTrip,
    /// A storage transaction begins.
    DbTxn,
    /// A storage statement (get/scan/insert/update/delete) is about to
    /// execute — one simulated SQL round trip.
    DbStatement,
    /// A storage commit is about to execute.
    DbCommit,
    /// A blocking wait (lock manager, in-memory lock table) turned
    /// cooperative: the waiter re-checks after other tasks run.
    LockWait,
    /// A retry loop's backoff sleep turned cooperative.
    Backoff,
    /// One simulated client ↔ service request round trip (the service
    /// front door — e.g. a rate-limiter's check-then-act window).
    ServiceRequest,
}

impl SchedPoint {
    /// Whether the yielding task should drop to the lowest PCT priority
    /// (it just declared itself blocked/backing off).
    fn deprioritizes(self) -> bool {
        matches!(self, SchedPoint::LockWait | SchedPoint::Backoff)
    }
}

/// Substrate hook: a potential preemption point.
///
/// On a thread that is not a scheduled task (or in a process with no
/// active explorer) this returns immediately — one relaxed atomic load.
/// On a scheduled task it records one scheduling step, lets the policy
/// pick the next task, and blocks until this task is scheduled again.
#[inline]
pub fn yield_point(point: SchedPoint) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    let ctx = CURRENT_TASK.with(|c| c.borrow().clone());
    if let Some(ctx) = ctx {
        ctx.shared.yield_now(ctx.id, point);
    }
}

/// True when the calling thread is a task of an active trial. Substrates
/// use this to replace wall-clock sleeps and blocking condvar waits with
/// cooperative [`yield_point`]s.
#[inline]
pub fn under_scheduler() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0 && CURRENT_TASK.with(|c| c.borrow().is_some())
}

/// Backoff-sleep replacement for retry loops: when the calling thread is a
/// scheduled task, yields (one scheduling step) and returns `true` — the
/// caller must skip its real sleep. Otherwise returns `false`.
#[inline]
pub fn yield_instead_of_sleep() -> bool {
    if !under_scheduler() {
        return false;
    }
    yield_point(SchedPoint::Backoff);
    true
}

// ---------------------------------------------------------------------------
// Scheduling policies
// ---------------------------------------------------------------------------

/// SplitMix64 step — the same mixer as [`crate::rng`], so schedules are a
/// pure function of their seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How the next runnable task is chosen at each step.
#[derive(Debug, Clone)]
enum Policy {
    /// Uniformly random among runnable tasks, from a seeded stream.
    Random { state: u64 },
    /// PCT-style: random priorities, highest runnable priority runs;
    /// at each change point the running task's priority drops below all
    /// others. `Backoff`/`LockWait` yields also demote the yielder.
    Pct {
        priorities: Vec<u64>,
        change_points: Vec<usize>,
        next_change: usize,
        /// Monotonically decreasing counter handing out new lowest
        /// priorities on demotion.
        floor: u64,
    },
    /// Follow a recorded witness; fall back to the lowest-index runnable
    /// task when the recorded choice is not runnable (or the trace is
    /// exhausted), so replay is total.
    Replay { choices: Vec<u32>, pos: usize },
}

impl Policy {
    fn random(seed: u64) -> Self {
        Policy::Random { state: seed }
    }

    /// A PCT policy for `tasks` tasks with `preemptions` priority change
    /// points sampled uniformly from `[1, horizon)`.
    fn pct(seed: u64, tasks: usize, preemptions: usize, horizon: usize) -> Self {
        let mut state = seed;
        // Priorities: distinct by construction (index in low bits).
        let priorities = (0..tasks)
            .map(|i| (mix(&mut state) << 8) | i as u64 | (1 << 62))
            .collect();
        let span = horizon.max(2) as u64;
        let mut change_points: Vec<usize> = (0..preemptions)
            .map(|_| 1 + (mix(&mut state) % (span - 1)) as usize)
            .collect();
        change_points.sort_unstable();
        change_points.dedup();
        Policy::Pct {
            priorities,
            change_points,
            next_change: 0,
            floor: 1 << 61,
        }
    }

    /// Pick among `runnable` (non-empty, ascending indices) for step
    /// `step`; `demote` is the yielding task when it hit a backoff point.
    fn decide(&mut self, runnable: &[usize], step: usize, demote: Option<usize>) -> usize {
        debug_assert!(!runnable.is_empty());
        match self {
            Policy::Random { state } => runnable[(mix(state) % runnable.len() as u64) as usize],
            Policy::Pct {
                priorities,
                change_points,
                next_change,
                floor,
            } => {
                if let Some(t) = demote {
                    *floor -= 1;
                    priorities[t] = *floor;
                }
                if *next_change < change_points.len() && step >= change_points[*next_change] {
                    *next_change += 1;
                    // Demote the highest-priority runnable task (the one
                    // that would otherwise keep running).
                    if let Some(&top) = runnable.iter().max_by_key(|&&t| priorities[t]) {
                        *floor -= 1;
                        priorities[top] = *floor;
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|&&t| priorities[t])
                    .expect("runnable non-empty")
            }
            Policy::Replay { choices, pos } => {
                let wanted = choices.get(*pos).map(|c| *c as usize);
                *pos += 1;
                match wanted {
                    Some(t) if runnable.contains(&t) => t,
                    _ => runnable[0],
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Witness encoding
// ---------------------------------------------------------------------------

/// A decoded schedule witness: task count plus the decision sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Witness {
    tasks: u32,
    choices: Vec<u32>,
}

impl Witness {
    /// Run-length encode: `v1:t2:0x4.1x3.0` = task 0 ×4, task 1 ×3, task 0.
    fn encode(&self) -> String {
        let mut out = format!("v1:t{}:", self.tasks);
        let mut i = 0;
        let mut first = true;
        while i < self.choices.len() {
            let c = self.choices[i];
            let mut n = 1;
            while i + n < self.choices.len() && self.choices[i + n] == c {
                n += 1;
            }
            if !first {
                out.push('.');
            }
            first = false;
            if n > 1 {
                out.push_str(&format!("{c}x{n}"));
            } else {
                out.push_str(&format!("{c}"));
            }
            i += n;
        }
        out
    }

    /// Parse a witness, accepting an optional leading `SCHED=`.
    fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let s = s.strip_prefix("SCHED=").unwrap_or(s);
        let rest = s
            .strip_prefix("v1:t")
            .ok_or_else(|| format!("witness {s:?}: expected `v1:t<tasks>:` prefix"))?;
        let (tasks, trace) = rest
            .split_once(':')
            .ok_or_else(|| format!("witness {s:?}: missing `:` after task count"))?;
        let tasks: u32 = tasks
            .parse()
            .map_err(|_| format!("witness {s:?}: bad task count {tasks:?}"))?;
        let mut choices = Vec::new();
        if !trace.is_empty() {
            for part in trace.split('.') {
                let (c, n) = match part.split_once('x') {
                    Some((c, n)) => (
                        c.parse::<u32>()
                            .map_err(|_| format!("witness: bad task id {c:?}"))?,
                        n.parse::<usize>()
                            .map_err(|_| format!("witness: bad repeat {n:?}"))?,
                    ),
                    None => (
                        part.parse::<u32>()
                            .map_err(|_| format!("witness: bad task id {part:?}"))?,
                        1,
                    ),
                };
                if c >= tasks {
                    return Err(format!("witness: task id {c} out of range (t{tasks})"));
                }
                choices.extend(std::iter::repeat_n(c, n));
            }
        }
        Ok(Self { tasks, choices })
    }
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskStatus {
    Runnable,
    Finished,
}

struct SchedState {
    status: Vec<TaskStatus>,
    /// The task currently holding the run token (`None` once all finish).
    current: Option<usize>,
    /// Every scheduling decision, in order.
    trace: Vec<u32>,
    policy: Policy,
    max_steps: usize,
    overflowed: bool,
    /// First real task panic (message), if any.
    panicked: Option<String>,
}

impl SchedState {
    fn aborted(&self) -> bool {
        self.panicked.is_some() || self.overflowed
    }

    fn runnable(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TaskStatus::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|s| *s == TaskStatus::Finished)
    }

    /// Pick and install the next task. Returns it, or `None` when all done.
    fn schedule(&mut self, demote: Option<usize>) -> Option<usize> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            self.current = None;
            return None;
        }
        let step = self.trace.len();
        let next = if self.aborted() {
            // Tear-down mode: decisions no longer matter (and are not
            // recorded); just hand the token to any live task so it can
            // unwind.
            runnable[0]
        } else {
            let next = self.policy.decide(&runnable, step, demote);
            self.trace.push(next as u32);
            next
        };
        self.current = Some(next);
        Some(next)
    }
}

struct Shared {
    m: Mutex<SchedState>,
    cv: Condvar,
}

impl Shared {
    /// One scheduling step taken by task `me` at `point`.
    fn yield_now(&self, me: usize, point: SchedPoint) {
        let mut st = self.m.lock();
        if st.aborted() {
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        if st.trace.len() >= st.max_steps {
            st.overflowed = true;
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        let demote = point.deprioritizes().then_some(me);
        let next = st.schedule(demote).expect("self is runnable");
        if next != me {
            self.cv.notify_all();
            while st.current != Some(me) {
                if st.aborted() {
                    drop(st);
                    std::panic::panic_any(SchedAbort);
                }
                self.cv.wait(&mut st);
            }
        }
    }

    /// Task `me` is done (normally or by unwinding).
    fn finish(&self, me: usize) {
        let mut st = self.m.lock();
        st.status[me] = TaskStatus::Finished;
        st.schedule(None);
        self.cv.notify_all();
    }
}

struct TaskCtx {
    shared: Arc<Shared>,
    id: usize,
}

impl Clone for TaskCtx {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            id: self.id,
        }
    }
}

/// Render a panic payload for failure messages.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Trial: one execution under one schedule
// ---------------------------------------------------------------------------

/// One scheduled execution: register tasks with [`task`](Trial::task), run
/// them with [`run`](Trial::run), then check invariants on the shared
/// state. Handed to scenario closures by [`Explorer::explore`] and
/// [`replay`]; not constructible directly, so every trial is driven by an
/// explicit policy.
pub struct Trial {
    names: Vec<String>,
    tasks: Vec<Box<dyn FnOnce() + Send>>,
    policy: Policy,
    max_steps: usize,
    trace: Vec<u32>,
    ran: bool,
}

impl Trial {
    fn new(policy: Policy, max_steps: usize) -> Self {
        Self {
            names: Vec::new(),
            tasks: Vec::new(),
            policy,
            max_steps,
            trace: Vec::new(),
            ran: false,
        }
    }

    /// Register a logical task. Tasks are identified by registration order
    /// (task 0, task 1, …) in witnesses; `name` appears in panic messages.
    pub fn task(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        assert!(!self.ran, "tasks must be registered before Trial::run");
        self.names.push(name.to_string());
        self.tasks.push(Box::new(f));
    }

    /// Execute every registered task under the trial's schedule. Exactly
    /// one task runs between yield points; the call returns when all tasks
    /// finished (or the trial aborted).
    ///
    /// * `Ok(())` — all tasks ran to completion.
    /// * `Err(msg)` — a task panicked (`msg` carries the task name and
    ///   panic text), or the step budget overflowed (`msg` is exactly
    ///   [`INCONCLUSIVE`]). Scenarios should propagate with `?`.
    pub fn run(&mut self) -> Result<(), String> {
        assert!(!self.ran, "Trial::run may only be called once");
        assert!(!self.tasks.is_empty(), "Trial::run with no tasks");
        assert!(
            !under_scheduler(),
            "nested Trial::run inside a scheduled task"
        );
        self.ran = true;
        let n = self.tasks.len();
        let shared = Arc::new(Shared {
            m: Mutex::new(SchedState {
                status: vec![TaskStatus::Runnable; n],
                current: None,
                trace: Vec::new(),
                policy: self.policy.clone(),
                max_steps: self.max_steps,
                overflowed: false,
                panicked: None,
            }),
            cv: Condvar::new(),
        });
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        std::thread::scope(|s| {
            for (id, f) in self.tasks.drain(..).enumerate() {
                let shared = Arc::clone(&shared);
                let name = self.names[id].clone();
                s.spawn(move || {
                    CURRENT_TASK.with(|c| {
                        *c.borrow_mut() = Some(TaskCtx {
                            shared: Arc::clone(&shared),
                            id,
                        })
                    });
                    // Wait for the first grant of the run token.
                    {
                        let mut st = shared.m.lock();
                        while st.current != Some(id) && !st.aborted() {
                            shared.cv.wait(&mut st);
                        }
                    }
                    let skip = shared.m.lock().aborted();
                    if !skip {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                            if !payload.is::<SchedAbort>() {
                                let msg = panic_message(payload.as_ref());
                                let mut st = shared.m.lock();
                                if st.panicked.is_none() {
                                    st.panicked = Some(format!("task '{name}' panicked: {msg}"));
                                }
                            }
                        }
                    }
                    shared.finish(id);
                    CURRENT_TASK.with(|c| *c.borrow_mut() = None);
                });
            }
            // Kick off: schedule the first task, then wait for completion.
            {
                let mut st = shared.m.lock();
                st.schedule(None);
            }
            shared.cv.notify_all();
            let mut st = shared.m.lock();
            while !st.all_finished() {
                shared.cv.wait(&mut st);
            }
        });
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
        let st = shared.m.lock();
        self.trace = st.trace.clone();
        if let Some(msg) = &st.panicked {
            return Err(msg.clone());
        }
        if st.overflowed {
            return Err(INCONCLUSIVE.to_string());
        }
        Ok(())
    }

    /// The witness string of the schedule actually executed (valid after
    /// [`run`](Trial::run); this is what [`replay`] consumes).
    pub fn witness(&self) -> String {
        Witness {
            tasks: self.names.len() as u32,
            choices: self.trace.clone(),
        }
        .encode()
    }

    /// Scheduling steps taken so far.
    pub fn steps(&self) -> usize {
        self.trace.len()
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// A schedule found to violate a scenario invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// The (minimized) schedule witness; feed to [`replay`] to reproduce.
    pub witness: String,
    /// The scenario's failure message (or task panic text).
    pub message: String,
    /// Schedules tried before the failure surfaced (1-based).
    pub trials: usize,
    /// Replays spent minimizing the witness.
    pub minimize_attempts: usize,
}

impl fmt::Display for CounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SCHED={} msg={}", self.witness, self.message)
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exploration {
    /// Every schedule within the budget upheld the invariant.
    Pass {
        /// Schedules executed.
        trials: usize,
    },
    /// A schedule violated the invariant.
    Fail(Box<CounterExample>),
}

impl Exploration {
    /// The counterexample, when the exploration failed.
    pub fn counter_example(self) -> Option<CounterExample> {
        match self {
            Exploration::Pass { .. } => None,
            Exploration::Fail(cx) => Some(*cx),
        }
    }

    /// True when no schedule within the budget violated the invariant.
    pub fn passed(&self) -> bool {
        matches!(self, Exploration::Pass { .. })
    }
}

/// Drives a scenario through many schedules: seeded random sampling
/// interleaved with PCT-style bounded-preemption search, witness recording,
/// and greedy context-switch minimization of the first failure.
///
/// A scenario is a closure that (1) builds fresh shared state, (2)
/// registers tasks on the [`Trial`], (3) calls [`Trial::run`] (propagating
/// its error with `?`), and (4) checks invariants, returning `Err(msg)` on
/// violation. The scenario must be deterministic apart from the schedule:
/// use virtual clocks and seeded [`FaultPlan`](crate::FaultPlan)s, never
/// wall-clock-sensitive logic.
#[derive(Debug, Clone)]
pub struct Explorer {
    seed: u64,
    budget: usize,
    max_steps: usize,
    minimize_rounds: usize,
}

impl Explorer {
    /// An explorer with the given seed and defaults: 256 schedules,
    /// 20 000 steps per schedule, 96 minimization replays.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            budget: 256,
            max_steps: 20_000,
            minimize_rounds: 96,
        }
    }

    /// Set the schedule budget (number of schedules tried).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(1);
        self
    }

    /// Set the per-schedule step budget (yield points per trial).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps.max(2);
        self
    }

    /// Set the minimization replay budget (0 disables minimization).
    pub fn minimize_rounds(mut self, rounds: usize) -> Self {
        self.minimize_rounds = rounds;
        self
    }

    /// The policy for exploration round `i`: even rounds sample random
    /// schedules, odd rounds run PCT with 1–4 preemption points over the
    /// previous trial's observed step horizon.
    fn policy_for(&self, i: usize, tasks_hint: usize, horizon: usize) -> Policy {
        let seed = self
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        if i.is_multiple_of(2) {
            Policy::random(seed)
        } else {
            Policy::pct(seed, tasks_hint, 1 + (i / 2) % 4, horizon)
        }
    }

    /// Run `scenario` under up to [`budget`](Self::budget) schedules.
    ///
    /// On the first failing schedule the witness is minimized (fewer
    /// context switches, same failure) and the one-line summary
    /// `SCHED=<witness> msg=<message>` is printed to stderr, so any
    /// harness log contains everything needed to pin the failure.
    pub fn explore<F>(&self, scenario: F) -> Exploration
    where
        F: Fn(&mut Trial) -> Result<(), String>,
    {
        let mut horizon = 64usize;
        let mut tasks_hint = 2usize;
        for i in 0..self.budget {
            let policy = self.policy_for(i, tasks_hint, horizon);
            let mut trial = Trial::new(policy, self.max_steps);
            let outcome = scenario(&mut trial);
            assert!(trial.ran, "scenario must call trial.run()");
            tasks_hint = trial.names.len().max(1);
            horizon = trial.steps().clamp(8, self.max_steps);
            match outcome {
                Ok(()) => continue,
                Err(msg) if msg == INCONCLUSIVE => continue,
                Err(msg) => {
                    let (witness, message, attempts) =
                        self.minimize(&scenario, trial.witness(), msg);
                    let cx = CounterExample {
                        witness,
                        message,
                        trials: i + 1,
                        minimize_attempts: attempts,
                    };
                    eprintln!("{cx}");
                    return Exploration::Fail(Box::new(cx));
                }
            }
        }
        Exploration::Pass {
            trials: self.budget,
        }
    }

    /// Greedy witness minimization: repeatedly try to extend a task's run
    /// across a context switch (replacing the decision at a switch point
    /// with the previous task) and keep any still-failing schedule. Each
    /// candidate replay re-records the *actual* trace, so the result is
    /// always a genuine witness of the failure.
    fn minimize<F>(&self, scenario: &F, witness: String, message: String) -> (String, String, usize)
    where
        F: Fn(&mut Trial) -> Result<(), String>,
    {
        let mut best = match Witness::parse(&witness) {
            Ok(w) => w,
            Err(_) => return (witness, message, 0),
        };
        let mut best_msg = message;
        let mut attempts = 0usize;
        let mut improved = true;
        'outer: while improved {
            improved = false;
            let switches: Vec<usize> = (1..best.choices.len())
                .filter(|&i| best.choices[i] != best.choices[i - 1])
                .collect();
            for i in switches {
                if attempts >= self.minimize_rounds {
                    break 'outer;
                }
                let mut candidate = best.clone();
                candidate.choices[i] = candidate.choices[i - 1];
                let mut trial = Trial::new(
                    Policy::Replay {
                        choices: candidate.choices.clone(),
                        pos: 0,
                    },
                    self.max_steps,
                );
                let outcome = scenario(&mut trial);
                attempts += 1;
                if let Err(msg) = outcome {
                    if msg != INCONCLUSIVE {
                        let actual = Witness {
                            tasks: best.tasks,
                            choices: trial.trace.clone(),
                        };
                        let fewer_switches = switch_count(&actual.choices)
                            < switch_count(&best.choices)
                            || actual.choices.len() < best.choices.len();
                        if fewer_switches {
                            best = actual;
                            best_msg = msg;
                            improved = true;
                            break;
                        }
                    }
                }
            }
        }
        (best.encode(), best_msg, attempts)
    }
}

fn switch_count(choices: &[u32]) -> usize {
    (1..choices.len())
        .filter(|&i| choices[i] != choices[i - 1])
        .count()
}

/// Run the scenario once under a seeded-random schedule and return the
/// recorded `(witness, outcome)` — the recording half of record/replay.
/// Used to mint corpus witnesses for scenarios that are expected to pass:
/// the stored witness then asserts the pass is schedule-stable.
pub fn record<F>(seed: u64, scenario: F) -> (String, Result<(), String>)
where
    F: FnOnce(&mut Trial) -> Result<(), String>,
{
    let mut trial = Trial::new(Policy::random(seed), 1 << 22);
    let outcome = scenario(&mut trial);
    assert!(trial.ran, "scenario must call trial.run()");
    (trial.witness(), outcome)
}

/// Replay one schedule from its witness string (with or without the
/// `SCHED=` prefix) and return the scenario's outcome: `Err` when the
/// pinned failure still reproduces, `Ok` when the scenario now passes.
///
/// Panics on a malformed witness — a corrupt pin is a test bug, not a
/// scenario outcome.
pub fn replay<F>(witness: &str, scenario: F) -> Result<(), String>
where
    F: FnOnce(&mut Trial) -> Result<(), String>,
{
    let parsed = Witness::parse(witness).unwrap_or_else(|e| panic!("{e}"));
    let mut trial = Trial::new(
        Policy::Replay {
            choices: parsed.choices,
            pos: 0,
        },
        1 << 22,
    );
    let outcome = scenario(&mut trial);
    assert!(trial.ran, "scenario must call trial.run()");
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    /// Two unprotected read-modify-writes with an explicit yield in the
    /// window: the canonical lost update.
    fn rmw_scenario(trial: &mut Trial) -> Result<(), String> {
        let v = Arc::new(AtomicI64::new(0));
        for t in 0..2 {
            let v = Arc::clone(&v);
            trial.task(&format!("inc-{t}"), move || {
                let read = v.load(Ordering::SeqCst);
                yield_point(SchedPoint::KvRoundTrip);
                v.store(read + 1, Ordering::SeqCst);
            });
        }
        trial.run()?;
        if v.load(Ordering::SeqCst) != 2 {
            return Err("lost update".into());
        }
        Ok(())
    }

    #[test]
    fn explorer_finds_the_lost_update() {
        let cx = Explorer::new(1)
            .budget(64)
            .explore(rmw_scenario)
            .counter_example()
            .expect("a 2-task lost update must be found in 64 schedules");
        assert_eq!(cx.message, "lost update");
        assert!(cx.witness.starts_with("v1:t2:"), "{}", cx.witness);
    }

    #[test]
    fn witness_replays_the_exact_failure() {
        let cx = Explorer::new(2)
            .budget(64)
            .explore(rmw_scenario)
            .counter_example()
            .unwrap();
        assert_eq!(replay(&cx.witness, rmw_scenario), Err("lost update".into()));
        // The replayed trace is the witness itself (bit-for-bit).
        let mut trial = Trial::new(
            Policy::Replay {
                choices: Witness::parse(&cx.witness).unwrap().choices,
                pos: 0,
            },
            1 << 20,
        );
        let _ = rmw_scenario(&mut trial);
        assert_eq!(trial.witness(), cx.witness);
    }

    #[test]
    fn same_seed_same_witness() {
        let a = Explorer::new(7).budget(64).explore(rmw_scenario);
        let b = Explorer::new(7).budget(64).explore(rmw_scenario);
        assert_eq!(a, b, "exploration must be a pure function of its seed");
    }

    #[test]
    fn serialized_schedules_pass_a_sequential_scenario() {
        // A scenario whose tasks are individually atomic (no yields inside
        // the RMW) can never fail, whatever the schedule.
        let result = Explorer::new(3).budget(32).explore(|trial| {
            let v = Arc::new(AtomicI64::new(0));
            for t in 0..3 {
                let v = Arc::clone(&v);
                trial.task(&format!("t{t}"), move || {
                    v.fetch_add(1, Ordering::SeqCst);
                });
            }
            trial.run()?;
            if v.load(Ordering::SeqCst) != 3 {
                return Err("impossible".into());
            }
            Ok(())
        });
        assert!(result.passed());
    }

    #[test]
    fn task_panics_become_failures_with_task_names() {
        let cx = Explorer::new(4)
            .budget(4)
            .explore(|trial| {
                trial.task("bomber", || panic!("boom"));
                trial.task("bystander", || {
                    for _ in 0..4 {
                        yield_point(SchedPoint::Backoff);
                    }
                });
                trial.run()?;
                Ok(())
            })
            .counter_example()
            .expect("the panic must surface");
        assert!(cx.message.contains("bomber"), "{}", cx.message);
        assert!(cx.message.contains("boom"), "{}", cx.message);
    }

    #[test]
    fn step_budget_overflow_is_inconclusive_not_a_failure() {
        // A task that yields forever exhausts any budget; the explorer
        // must treat that as inconclusive and keep going.
        let result = Explorer::new(5).budget(3).max_steps(64).explore(|trial| {
            let stop = Arc::new(AtomicI64::new(0));
            let s = Arc::clone(&stop);
            trial.task("spinner", move || {
                while s.load(Ordering::SeqCst) == 0 {
                    yield_point(SchedPoint::Backoff);
                }
            });
            trial.task("idle", || {});
            trial.run()?;
            Ok(())
        });
        assert!(result.passed(), "{result:?}");
    }

    #[test]
    fn polling_waiter_eventually_sees_the_release() {
        // Cooperative poll loop: task 1 spins until task 0 sets the flag.
        // Every strategy must schedule the setter eventually (PCT demotes
        // the backoff-yielding spinner).
        let result = Explorer::new(6).budget(16).explore(|trial| {
            let flag = Arc::new(AtomicI64::new(0));
            let f1 = Arc::clone(&flag);
            trial.task("setter", move || {
                yield_point(SchedPoint::KvRoundTrip);
                f1.store(1, Ordering::SeqCst);
            });
            let f2 = Arc::clone(&flag);
            trial.task("poller", move || {
                while f2.load(Ordering::SeqCst) == 0 {
                    yield_point(SchedPoint::Backoff);
                }
            });
            trial.run()?;
            Ok(())
        });
        assert!(result.passed(), "{result:?}");
    }

    #[test]
    fn witness_roundtrip() {
        let w = Witness {
            tasks: 3,
            choices: vec![0, 0, 0, 2, 1, 1, 0],
        };
        let s = w.encode();
        assert_eq!(s, "v1:t3:0x3.2.1x2.0");
        assert_eq!(Witness::parse(&s).unwrap(), w);
        assert_eq!(Witness::parse(&format!("SCHED={s}")).unwrap(), w);
        assert_eq!(
            Witness::parse("v1:t1:").unwrap(),
            Witness {
                tasks: 1,
                choices: vec![]
            }
        );
        assert!(Witness::parse("v1:t2:5").is_err(), "task id out of range");
        assert!(Witness::parse("junk").is_err());
    }

    #[test]
    fn yield_point_is_a_no_op_off_schedule() {
        // Not under any trial: must simply return.
        yield_point(SchedPoint::KvRoundTrip);
        assert!(!under_scheduler());
        assert!(!yield_instead_of_sleep());
    }

    #[test]
    fn minimization_reduces_context_switches() {
        let cx = Explorer::new(8)
            .budget(64)
            .explore(rmw_scenario)
            .counter_example()
            .unwrap();
        let w = Witness::parse(&cx.witness).unwrap();
        // The minimal lost-update schedule needs exactly 2 switches
        // (t0 reads, t1 runs to completion, t0 writes — or symmetric);
        // allow a little slack but far below an adversarial schedule.
        assert!(
            switch_count(&w.choices) <= 4,
            "witness {} has {} switches",
            cx.witness,
            switch_count(&w.choices)
        );
    }
}
