//! One retry/backoff policy for every coordination path.
//!
//! The studied applications each reinvent retry loops: fixed-interval lock
//! polling (Broadleaf's lock table), bounded optimistic-retry loops
//! (Discourse's `WATCH`/`EXEC`), and DBT retry-on-serialization-failure
//! wrappers (§3.4.1). Before this module the workspace mirrored that
//! fragmentation — three hand-rolled loops with their own backoff
//! arithmetic. [`RetryPolicy`] centralizes the decision ("try again after
//! how long, or give up?") so every path shares one implementation, one
//! deterministic jitter source, and one observation hook.
//!
//! Jitter is a pure function of `(seed, stream, attempt)` — the same
//! SplitMix-style mixing as [`crate::rng`] — so a replayed run backs off by
//! identical amounts.

use crate::clock::{Clock, SharedClock};
use crate::resilience::{Deadline, RetryBudget};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Backoff sleep that turns into a scheduling point under the
/// deterministic scheduler (see [`crate::sched`]): a scheduled task must
/// never block the wall clock, it yields and lets another task run.
fn backoff_sleep(delay: Duration) {
    if !crate::sched::yield_instead_of_sleep() {
        std::thread::sleep(delay);
    }
}

/// Distinguishes concurrent retry loops sharing one policy so their jitter
/// streams decorrelate (thread A and thread B must not sleep in lockstep).
static NEXT_STREAM: AtomicU64 = AtomicU64::new(0);

/// How long to wait before attempt `n + 1` after attempt `n` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay after the first failed attempt.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Double the delay each attempt when true; constant otherwise.
    pub exponential: bool,
    /// Jitter amplitude in parts-per-1024 of the computed delay
    /// (e.g. 256 ≈ ±25%). Zero disables jitter.
    pub jitter_ppk: u32,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl BackoffPolicy {
    /// Constant `interval` between attempts, no jitter.
    pub fn fixed(interval: Duration) -> Self {
        Self {
            base: interval,
            cap: interval,
            exponential: false,
            jitter_ppk: 0,
            seed: 0,
        }
    }

    /// Exponential: `base`, `2·base`, `4·base`, … capped at `cap`.
    pub fn exponential(base: Duration, cap: Duration) -> Self {
        Self {
            base,
            cap,
            exponential: true,
            jitter_ppk: 0,
            seed: 0,
        }
    }

    /// Add symmetric jitter of ±`fraction` (clamped to `[0, 1]`) of each
    /// delay.
    pub fn with_jitter(mut self, fraction: f64) -> Self {
        self.jitter_ppk = (fraction.clamp(0.0, 1.0) * 1024.0) as u32;
        self
    }

    /// Seed the jitter hash (defaults to 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn mix(&self, stream: u64, attempt: u32) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The delay to wait after failed attempt `attempt` (0-based), for the
    /// given jitter stream. Pure: same inputs, same answer.
    ///
    /// `cap` is a *hard* ceiling: neither attempt-count growth (saturating
    /// shift, so `attempt = u32::MAX` cannot overflow) nor jitter can push
    /// the returned delay past it.
    pub fn delay(&self, stream: u64, attempt: u32) -> Duration {
        let cap = self.cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut nanos = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        if self.exponential {
            let shift = attempt.min(32);
            nanos = nanos.saturating_shl(shift).min(cap);
        }
        nanos = nanos.min(cap);
        if self.jitter_ppk > 0 && nanos > 0 {
            // Offset in [-jitter, +jitter] · delay, in 1/1024ths.
            let amplitude = (nanos / 1024).saturating_mul(u64::from(self.jitter_ppk));
            let span = amplitude.saturating_mul(2).max(1);
            let offset = self.mix(stream, attempt) % span;
            // Re-clamp after jitter: the upward half of the offset must
            // not carry a capped delay past the cap.
            nanos = nanos
                .saturating_sub(amplitude)
                .saturating_add(offset)
                .min(cap);
        }
        Duration::from_nanos(nanos)
    }
}

/// Receives retry decisions; implemented by the hazard monitor.
pub trait RetryObserver: Send + Sync {
    /// Attempt `attempt` (0-based) of `label` failed retryably; the loop
    /// will sleep `delay` and try again.
    fn on_retry(&self, label: &str, attempt: u32, delay: Duration);

    /// The loop for `label` gave up after `attempts` attempts.
    fn on_give_up(&self, label: &str, attempts: u32, reason: &str);
}

/// A bounded retry schedule: how many attempts, with what backoff, within
/// what overall deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (`None` = bounded only by `deadline`).
    pub max_attempts: Option<u32>,
    /// Delay schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Overall wall-clock budget from the first attempt (`None` = no
    /// deadline).
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Poll at a fixed `interval` until `timeout` — the lock-acquisition
    /// shape (Broadleaf/Discourse spin-until-timeout).
    pub fn fixed(interval: Duration, timeout: Duration) -> Self {
        Self {
            max_attempts: None,
            backoff: BackoffPolicy::fixed(interval),
            deadline: Some(timeout),
        }
    }

    /// `max_attempts` tries with exponential backoff — the DBT/OCC
    /// retry-on-conflict shape.
    pub fn exponential(max_attempts: u32, base: Duration, cap: Duration) -> Self {
        Self {
            max_attempts: Some(max_attempts),
            backoff: BackoffPolicy::exponential(base, cap),
            deadline: None,
        }
    }

    /// Replace the backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Set/replace the overall deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Start a stateful timer for one acquisition/retry loop.
    pub fn timer(&self, label: &'static str) -> RetryTimer {
        RetryTimer {
            policy: *self,
            label,
            stream: NEXT_STREAM.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
            attempts: 0,
            budget: None,
            clock_deadline: None,
        }
    }

    /// Run `body` under this policy. `retryable` classifies errors; a
    /// non-retryable error returns immediately. On give-up the last error
    /// is wrapped in [`GiveUp`] together with the attempt count.
    ///
    /// Sleeps on the calling thread between attempts and reports every
    /// decision to `observer` when provided.
    pub fn run<T, E>(
        &self,
        label: &str,
        observer: Option<&dyn RetryObserver>,
        retryable: impl Fn(&E) -> bool,
        body: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, GiveUp<E>> {
        self.run_resilient(label, observer, Resilience::default(), retryable, body)
    }

    /// [`run`](RetryPolicy::run) under an external resilience context: an
    /// absolute [`Deadline`] on a caller-supplied clock (checked before
    /// every retry, so a retry loop can never outlive its request) and a
    /// shared [`RetryBudget`] (each retry withdraws a token and an
    /// exhausted budget ends the loop; success deposits back).
    pub fn run_resilient<T, E>(
        &self,
        label: &str,
        observer: Option<&dyn RetryObserver>,
        ctx: Resilience<'_>,
        retryable: impl Fn(&E) -> bool,
        mut body: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, GiveUp<E>> {
        // Both the jitter stream and the deadline clock are only needed
        // once an attempt fails; the success path pays neither.
        let mut stream: Option<u64> = None;
        let started = self.deadline.map(|_| Instant::now());
        let mut attempt = 0u32;
        loop {
            match body(attempt) {
                Ok(v) => {
                    if let Some(budget) = ctx.budget {
                        budget.deposit();
                    }
                    return Ok(v);
                }
                Err(e) => {
                    let attempts = attempt + 1;
                    if !retryable(&e) {
                        return Err(GiveUp {
                            error: e,
                            attempts,
                            retryable: false,
                        });
                    }
                    let budget_left = self.max_attempts.is_none_or(|m| attempts < m);
                    let time_left = match (self.deadline, started) {
                        (Some(d), Some(started)) => started.elapsed() < d,
                        _ => true,
                    };
                    let deadline_left = match (ctx.deadline, ctx.clock) {
                        (Some(d), Some(clock)) => !d.expired(clock),
                        _ => true,
                    };
                    let tokens_left = deadline_left && ctx.budget.is_none_or(|b| b.try_withdraw());
                    if !budget_left || !time_left || !deadline_left || !tokens_left {
                        if let Some(obs) = observer {
                            let reason = if !budget_left {
                                "attempts"
                            } else if !deadline_left {
                                "deadline"
                            } else if !tokens_left {
                                "retry-budget"
                            } else {
                                "deadline"
                            };
                            obs.on_give_up(label, attempts, reason);
                        }
                        return Err(GiveUp {
                            error: e,
                            attempts,
                            retryable: true,
                        });
                    }
                    let stream =
                        *stream.get_or_insert_with(|| NEXT_STREAM.fetch_add(1, Ordering::Relaxed));
                    let delay = self.backoff.delay(stream, attempt);
                    if let Some(obs) = observer {
                        obs.on_retry(label, attempt, delay);
                    }
                    backoff_sleep(delay);
                    attempt += 1;
                }
            }
        }
    }
}

/// Why [`RetryPolicy::run`] returned an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GiveUp<E> {
    /// The last error observed.
    pub error: E,
    /// Total attempts made (≥ 1).
    pub attempts: u32,
    /// True when the policy ran out of budget on a retryable error; false
    /// when the error itself was non-retryable.
    pub retryable: bool,
}

impl<E: fmt::Display> fmt::Display for GiveUp<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.retryable {
            write!(
                f,
                "gave up after {} attempts: {}",
                self.attempts, self.error
            )
        } else {
            write!(f, "non-retryable: {}", self.error)
        }
    }
}

/// External resilience context for one [`RetryPolicy::run_resilient`]
/// call: an absolute deadline evaluated on a caller-supplied clock, and a
/// shared retry budget. Both optional and independent.
#[derive(Clone, Copy, Default)]
pub struct Resilience<'a> {
    /// Clock the deadline is evaluated against.
    pub clock: Option<&'a dyn Clock>,
    /// Absolute give-up point; checked before every retry.
    pub deadline: Option<Deadline>,
    /// Shared token bucket; every retry withdraws, every success deposits.
    pub budget: Option<&'a RetryBudget>,
}

impl<'a> Resilience<'a> {
    /// A context bounding the loop by `deadline` on `clock`.
    pub fn with_deadline(clock: &'a dyn Clock, deadline: Deadline) -> Self {
        Self {
            clock: Some(clock),
            deadline: Some(deadline),
            budget: None,
        }
    }

    /// Attach a shared retry budget.
    pub fn with_budget(mut self, budget: &'a RetryBudget) -> Self {
        self.budget = Some(budget);
        self
    }
}

impl fmt::Debug for Resilience<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resilience")
            .field("deadline", &self.deadline)
            .field("has_clock", &self.clock.is_some())
            .field("has_budget", &self.budget.is_some())
            .finish()
    }
}

/// Stateful companion for hand-written polling loops (lock acquisition):
/// call [`next_delay`](RetryTimer::next_delay) after each failed attempt;
/// `None` means the policy says give up.
pub struct RetryTimer {
    policy: RetryPolicy,
    label: &'static str,
    stream: u64,
    started: Instant,
    attempts: u32,
    /// Shared retry budget: each `next_delay` withdraws one token.
    budget: Option<Arc<RetryBudget>>,
    /// Absolute deadline on a shared clock, checked before every retry.
    clock_deadline: Option<(SharedClock, Deadline)>,
}

impl fmt::Debug for RetryTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryTimer")
            .field("policy", &self.policy)
            .field("label", &self.label)
            .field("attempts", &self.attempts)
            .field("has_budget", &self.budget.is_some())
            .field("deadline", &self.clock_deadline.as_ref().map(|(_, d)| *d))
            .finish()
    }
}

impl RetryTimer {
    /// Attach a shared [`RetryBudget`]: each retry decision withdraws one
    /// token, and an empty bucket turns the decision into give-up.
    pub fn with_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Bound the loop by an absolute [`Deadline`] on `clock`, layered
    /// under the policy's own attempt/timeout limits.
    pub fn until(mut self, clock: SharedClock, deadline: Deadline) -> Self {
        self.clock_deadline = Some((clock, deadline));
        self
    }

    /// Record a failed attempt. Returns the delay to sleep before the next
    /// attempt, or `None` when the attempt budget, deadline, or shared
    /// retry budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        let attempt = self.attempts;
        self.attempts += 1;
        let budget_left = self.policy.max_attempts.is_none_or(|m| self.attempts < m);
        let time_left = self
            .policy
            .deadline
            .is_none_or(|d| self.started.elapsed() < d);
        let deadline_left = self
            .clock_deadline
            .as_ref()
            .is_none_or(|(clock, d)| !d.expired(clock.as_ref()));
        if !budget_left || !time_left || !deadline_left {
            return None;
        }
        if let Some(budget) = &self.budget {
            if !budget.try_withdraw() {
                return None;
            }
        }
        Some(self.policy.backoff.delay(self.stream, attempt))
    }

    /// [`next_delay`](RetryTimer::next_delay) + sleep + observer reporting:
    /// returns `false` when the policy gives up (reported to `observer`),
    /// `true` after sleeping out the backoff.
    pub fn wait(&mut self, observer: Option<&dyn RetryObserver>) -> bool {
        let attempt = self.attempts;
        match self.next_delay() {
            Some(delay) => {
                if let Some(obs) = observer {
                    obs.on_retry(self.label, attempt, delay);
                }
                backoff_sleep(delay);
                true
            }
            None => {
                if let Some(obs) = observer {
                    obs.on_give_up(self.label, self.attempts, "timeout");
                }
                false
            }
        }
    }

    /// Failed attempts recorded so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The loop label this timer reports under.
    pub fn label(&self) -> &'static str {
        self.label
    }
}

/// `u64::checked_shl` that saturates instead of wrapping to zero.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if shift >= 64 {
            return u64::MAX;
        }
        if self.leading_zeros() < shift {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn fixed_backoff_is_constant() {
        let b = BackoffPolicy::fixed(Duration::from_millis(5));
        assert_eq!(b.delay(0, 0), Duration::from_millis(5));
        assert_eq!(b.delay(0, 9), Duration::from_millis(5));
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let b = BackoffPolicy::exponential(Duration::from_millis(1), Duration::from_millis(6));
        assert_eq!(b.delay(0, 0), Duration::from_millis(1));
        assert_eq!(b.delay(0, 1), Duration::from_millis(2));
        assert_eq!(b.delay(0, 2), Duration::from_millis(4));
        assert_eq!(b.delay(0, 3), Duration::from_millis(6));
        assert_eq!(b.delay(0, 60), Duration::from_millis(6), "huge shifts cap");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        // cap > base so the jitter band has headroom on both sides.
        let b = BackoffPolicy::exponential(Duration::from_millis(10), Duration::from_millis(40))
            .with_jitter(0.25);
        let d1 = b.delay(3, 0);
        assert_eq!(d1, b.delay(3, 0), "same (stream, attempt) -> same delay");
        assert_ne!(
            b.delay(3, 0),
            b.delay(4, 0),
            "different streams decorrelate"
        );
        for stream in 0..32 {
            let d = b.delay(stream, 0);
            assert!(d >= Duration::from_micros(7500), "{d:?} below -25%");
            assert!(d <= Duration::from_micros(12500), "{d:?} above +25%");
        }
    }

    #[test]
    fn jitter_never_exceeds_the_cap() {
        // At the cap the jitter band's upper half would overshoot; the
        // post-jitter clamp must hold the ceiling on every stream.
        let cap = Duration::from_millis(10);
        let b = BackoffPolicy::fixed(cap).with_jitter(0.25);
        let mut below = 0;
        for stream in 0..256 {
            let d = b.delay(stream, 0);
            assert!(d <= cap, "stream {stream}: {d:?} exceeds cap {cap:?}");
            assert!(d >= Duration::from_micros(7500), "{d:?} below -25%");
            below += usize::from(d < cap);
        }
        assert!(below > 0, "jitter must still vary below the cap");
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        // The other edge: attempt-count growth. Shifting by u32::MAX must
        // saturate (not wrap to zero or overflow), landing exactly on the
        // cap — with and without jitter.
        let cap = Duration::from_secs(2);
        let b = BackoffPolicy::exponential(Duration::from_millis(1), cap);
        for attempt in [24, 32, 63, 64, 1000, u32::MAX] {
            assert_eq!(b.delay(0, attempt), cap, "attempt {attempt}");
        }
        let jittered = b.with_jitter(1.0);
        for attempt in [63, u32::MAX] {
            for stream in 0..64 {
                assert!(jittered.delay(stream, attempt) <= cap);
            }
        }
        // Degenerate extreme: a base already above the cap stays capped.
        let b = BackoffPolicy::exponential(Duration::from_secs(u64::MAX), cap).with_jitter(0.5);
        assert!(b.delay(9, u32::MAX) <= cap);
    }

    #[test]
    fn run_returns_first_success() {
        let policy =
            RetryPolicy::exponential(5, Duration::from_micros(10), Duration::from_micros(100));
        let mut calls = 0;
        let out: Result<u32, GiveUp<&str>> = policy.run(
            "t",
            None,
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err("busy")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_stops_on_non_retryable() {
        let policy =
            RetryPolicy::exponential(5, Duration::from_micros(10), Duration::from_micros(100));
        let out: Result<(), GiveUp<&str>> =
            policy.run("t", None, |e| *e != "fatal", |_| Err("fatal"));
        let give_up = out.unwrap_err();
        assert!(!give_up.retryable);
        assert_eq!(give_up.attempts, 1);
    }

    #[test]
    fn run_exhausts_attempt_budget() {
        let policy =
            RetryPolicy::exponential(3, Duration::from_micros(10), Duration::from_micros(50));
        let mut calls = 0;
        let out: Result<(), GiveUp<&str>> = policy.run(
            "t",
            None,
            |_| true,
            |_| {
                calls += 1;
                Err("busy")
            },
        );
        let give_up = out.unwrap_err();
        assert!(give_up.retryable);
        assert_eq!(give_up.attempts, 3);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_respects_deadline() {
        let policy = RetryPolicy::fixed(Duration::from_millis(2), Duration::from_millis(10));
        let started = Instant::now();
        let out: Result<(), GiveUp<&str>> = policy.run("t", None, |_| true, |_| Err("busy"));
        assert!(out.is_err());
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn timer_gives_up_after_deadline() {
        let policy = RetryPolicy::fixed(Duration::from_millis(1), Duration::from_millis(5));
        let mut timer = policy.timer("t");
        let mut waits = 0;
        while timer.wait(None) {
            waits += 1;
            assert!(waits < 1000, "timer never gave up");
        }
        assert!(waits >= 1);
        assert_eq!(timer.attempts(), waits + 1);
    }

    #[test]
    fn timer_respects_attempt_budget() {
        let policy =
            RetryPolicy::exponential(3, Duration::from_micros(1), Duration::from_micros(1));
        let mut timer = policy.timer("t");
        assert!(timer.next_delay().is_some());
        assert!(timer.next_delay().is_some());
        assert!(
            timer.next_delay().is_none(),
            "third failure exhausts 3 attempts"
        );
    }

    struct Recorder(Mutex<Vec<String>>);

    impl RetryObserver for Recorder {
        fn on_retry(&self, label: &str, attempt: u32, _delay: Duration) {
            self.0.lock().push(format!("retry {label}#{attempt}"));
        }
        fn on_give_up(&self, label: &str, attempts: u32, reason: &str) {
            self.0
                .lock()
                .push(format!("give-up {label}@{attempts} ({reason})"));
        }
    }

    #[test]
    fn run_resilient_stops_at_the_clock_deadline() {
        use crate::clock::VirtualClock;
        let clock = VirtualClock::new();
        let deadline = Deadline::after(&clock, Duration::from_millis(10));
        let policy =
            RetryPolicy::exponential(1000, Duration::from_nanos(1), Duration::from_nanos(1));
        let mut calls = 0u32;
        let out: Result<(), GiveUp<&str>> = policy.run_resilient(
            "t",
            None,
            Resilience::with_deadline(&clock, deadline),
            |_| true,
            |_| {
                calls += 1;
                clock.advance(Duration::from_millis(6));
                Err("busy")
            },
        );
        let give_up = out.unwrap_err();
        assert!(give_up.retryable);
        // First failure at t=6ms: deadline not reached, retry. Second at
        // t=12ms: expired — give up without burning the attempt budget.
        assert_eq!(calls, 2);
    }

    #[test]
    fn run_resilient_respects_and_refills_the_shared_budget() {
        let budget = RetryBudget::with_deposit_ppk(2, 0);
        let policy =
            RetryPolicy::exponential(1000, Duration::from_nanos(1), Duration::from_nanos(1));
        let ctx = Resilience::default().with_budget(&budget);
        let mut calls = 0u32;
        let out: Result<(), GiveUp<&str>> = policy.run_resilient(
            "t",
            None,
            ctx,
            |_| true,
            |_| {
                calls += 1;
                Err("busy")
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 3, "2 tokens = first try + 2 retries");
        assert_eq!(budget.denied(), 1);
        // Successes deposit back into the same bucket.
        let budget = RetryBudget::with_deposit_ppk(1, 1024);
        assert!(budget.try_withdraw());
        let ctx = Resilience::default().with_budget(&budget);
        let out: Result<u32, GiveUp<&str>> = policy.run_resilient("t", None, ctx, |_| true, Ok);
        assert_eq!(out.unwrap(), 0);
        assert_eq!(budget.tokens(), 1, "the success earned the token back");
    }

    #[test]
    fn timer_honors_clock_deadline_and_budget() {
        use crate::clock::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let shared: SharedClock = clock.clone();
        let policy =
            RetryPolicy::exponential(1000, Duration::from_nanos(1), Duration::from_nanos(1));
        let deadline = Deadline::after(shared.as_ref(), Duration::from_millis(5));
        let mut timer = policy.timer("t").until(shared.clone(), deadline);
        assert!(timer.next_delay().is_some());
        clock.advance(Duration::from_millis(5));
        assert!(timer.next_delay().is_none(), "deadline expired");

        let budget = Arc::new(RetryBudget::with_deposit_ppk(1, 0));
        let mut timer = policy.timer("t").with_budget(Arc::clone(&budget));
        assert!(timer.next_delay().is_some());
        assert!(timer.next_delay().is_none(), "bucket empty");
        assert_eq!(budget.denied(), 1);
    }

    #[test]
    fn observer_sees_retries_and_give_up() {
        let rec = Recorder(Mutex::new(Vec::new()));
        let policy =
            RetryPolicy::exponential(2, Duration::from_micros(1), Duration::from_micros(1));
        let out: Result<(), GiveUp<&str>> =
            policy.run("occ", Some(&rec), |_| true, |_| Err("busy"));
        assert!(out.is_err());
        let events = rec.0.into_inner();
        assert_eq!(events, vec!["retry occ#0", "give-up occ@2 (attempts)"]);
    }
}
