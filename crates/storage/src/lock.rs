//! The lock manager: record, gap, table and advisory locks with wait-for
//! graph deadlock detection.
//!
//! Behavioural targets, all taken from the paper:
//!
//! * shared→exclusive upgrades are possible and two concurrent upgraders
//!   deadlock (the MySQL RMW deadlock of §3.3.1 — "if they both have
//!   successfully acquired reader locks, then their updates block each
//!   other");
//! * gap locks don't conflict with one another but block *inserts* into the
//!   covered interval by other transactions (InnoDB insert-intention
//!   semantics, §3.3.2);
//! * deadlocks are detected immediately via a wait-for graph and the
//!   *requester* that closes the cycle is the victim (matching the paper's
//!   observation that both RMW users "fail" without external intervention
//!   being modelled as one aborting);
//! * advisory locks model PostgreSQL's explicit user locks (§6, Table 7a),
//!   the machinery behind the coordination-hints proxy in `adhoc-core`.

use crate::error::{DbError, TxnId};
use crate::predicate::ValueInterval;
use crate::value::Value;
use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared or exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (reader) mode: compatible with other shared holders.
    Shared,
    /// Exclusive (writer) mode: excludes every other holder.
    Exclusive,
}

/// Identifies a lockable resource.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ResourceId {
    /// A row of a table: (table, primary key).
    Record(usize, i64),
    /// A whole table (explicit table lock hint).
    Table(usize),
    /// A user/advisory lock key.
    Advisory(i64),
    /// A unique-index key: (table, column, value). Held exclusively for the
    /// duration of an insert/update transaction so concurrent duplicate
    /// inserts serialize before the uniqueness check.
    UniqueKey(usize, usize, Value),
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their modes. Multiple `Shared` holders allowed;
    /// an `Exclusive` holder excludes everyone else.
    holders: HashMap<TxnId, LockMode>,
    /// Reentrancy counts (advisory locks are counted; others hold at 1).
    counts: HashMap<TxnId, u32>,
}

impl LockState {
    /// Can `txn` acquire `mode` right now?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }

    /// Holders that block `txn` from acquiring `mode`.
    fn conflicting(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|(t, m)| {
                **t != txn
                    && match mode {
                        LockMode::Shared => **m == LockMode::Exclusive,
                        LockMode::Exclusive => true,
                    }
            })
            .map(|(t, _)| *t)
            .collect()
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        let entry = self.holders.entry(txn).or_insert(mode);
        // Upgrades stick; downgrades are ignored (2PL never downgrades).
        if mode == LockMode::Exclusive {
            *entry = LockMode::Exclusive;
        }
        *self.counts.entry(txn).or_insert(0) += 1;
    }
}

/// A registered gap lock over an index interval.
#[derive(Debug, Clone)]
struct GapLock {
    txn: TxnId,
    interval: ValueInterval,
}

#[derive(Debug, Default)]
struct Inner {
    locks: HashMap<ResourceId, LockState>,
    /// Gap locks per (table, column-index).
    gaps: HashMap<(usize, usize), Vec<GapLock>>,
    /// waiter → the holders it is currently blocked on.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
    deadlocks: u64,
    timeouts: u64,
}

impl Inner {
    /// Is `start` part of a wait cycle? DFS over `waits_for`.
    fn in_cycle(&self, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = self
            .waits_for
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Lock-manager statistics (diagnostics for benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Deadlock victims chosen so far.
    pub deadlocks: u64,
    /// Lock waits that exceeded the timeout.
    pub timeouts: u64,
    /// Total blocking waits entered.
    pub waits: u64,
}

/// The lock manager. One per [`Database`](crate::Database).
pub struct LockManager {
    inner: Mutex<Inner>,
    cv: Condvar,
    timeout: Duration,
    waits: AtomicU64,
}

impl LockManager {
    /// A lock manager whose waits give up after `timeout`.
    pub fn new(timeout: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            timeout,
            waits: AtomicU64::new(0),
        }
    }

    /// Acquire a record lock, blocking until granted, deadlock, or timeout.
    pub fn lock_record(&self, txn: TxnId, table: usize, row: i64, mode: LockMode) -> Result<()> {
        self.lock_resource(txn, ResourceId::Record(table, row), mode)
    }

    /// Acquire an explicit table lock.
    pub fn lock_table(&self, txn: TxnId, table: usize, mode: LockMode) -> Result<()> {
        self.lock_resource(txn, ResourceId::Table(table), mode)
    }

    /// Acquire an advisory (user) lock. Reentrant per transaction.
    pub fn lock_advisory(&self, txn: TxnId, key: i64) -> Result<()> {
        self.lock_resource(txn, ResourceId::Advisory(key), LockMode::Exclusive)
    }

    /// Exclusively lock a unique-index key prior to the uniqueness check.
    pub fn lock_unique_key(
        &self,
        txn: TxnId,
        table: usize,
        column: usize,
        value: Value,
    ) -> Result<()> {
        self.lock_resource(
            txn,
            ResourceId::UniqueKey(table, column, value),
            LockMode::Exclusive,
        )
    }

    /// Try to acquire an advisory lock without blocking.
    pub fn try_lock_advisory(&self, txn: TxnId, key: i64) -> bool {
        let mut inner = self.inner.lock();
        let state = inner.locks.entry(ResourceId::Advisory(key)).or_default();
        if state.grantable(txn, LockMode::Exclusive) {
            state.grant(txn, LockMode::Exclusive);
            true
        } else {
            false
        }
    }

    /// Release one reentrancy level of an advisory lock. Returns false when
    /// the transaction did not hold it.
    pub fn unlock_advisory(&self, txn: TxnId, key: i64) -> bool {
        let mut inner = self.inner.lock();
        let id = ResourceId::Advisory(key);
        let Some(state) = inner.locks.get_mut(&id) else {
            return false;
        };
        let Some(count) = state.counts.get_mut(&txn) else {
            return false;
        };
        *count -= 1;
        if *count == 0 {
            state.counts.remove(&txn);
            state.holders.remove(&txn);
            if state.holders.is_empty() {
                inner.locks.remove(&id);
            }
            self.cv.notify_all();
        }
        true
    }

    fn lock_resource(&self, txn: TxnId, id: ResourceId, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        loop {
            {
                let mut inner = self.inner.lock();
                let state = inner.locks.entry(id.clone()).or_default();
                if state.grantable(txn, mode) {
                    state.grant(txn, mode);
                    inner.waits_for.remove(&txn);
                    return Ok(());
                }
                let blockers = state.conflicting(txn, mode);
                if !self.block_on(&mut inner, txn, blockers, deadline)? {
                    continue;
                }
            }
            self.cooperative_wait(txn, deadline)?;
        }
    }

    /// Register a gap lock over an index interval. Gap locks are mutually
    /// compatible, so this never blocks.
    pub fn lock_gap(&self, txn: TxnId, table: usize, column: usize, interval: ValueInterval) {
        let mut inner = self.inner.lock();
        inner
            .gaps
            .entry((table, column))
            .or_default()
            .push(GapLock { txn, interval });
    }

    /// Insert-intention check: wait while any *other* transaction holds a
    /// gap lock covering `key` on this index.
    pub fn check_insert(&self, txn: TxnId, table: usize, column: usize, key: &Value) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        loop {
            {
                let mut inner = self.inner.lock();
                let blockers: Vec<TxnId> = inner
                    .gaps
                    .get(&(table, column))
                    .map(|gaps| {
                        gaps.iter()
                            .filter(|g| g.txn != txn && g.interval.contains(key))
                            .map(|g| g.txn)
                            .collect()
                    })
                    .unwrap_or_default();
                if blockers.is_empty() {
                    inner.waits_for.remove(&txn);
                    return Ok(());
                }
                if !self.block_on(&mut inner, txn, blockers, deadline)? {
                    continue;
                }
            }
            self.cooperative_wait(txn, deadline)?;
        }
    }

    /// Non-blocking query: which other transactions hold gaps covering `key`?
    pub fn gap_holders(&self, txn: TxnId, table: usize, column: usize, key: &Value) -> Vec<TxnId> {
        let inner = self.inner.lock();
        inner
            .gaps
            .get(&(table, column))
            .map(|gaps| {
                gaps.iter()
                    .filter(|g| g.txn != txn && g.interval.contains(key))
                    .map(|g| g.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// One round of blocking: record wait edges, detect deadlock, sleep.
    ///
    /// Returns `Ok(true)` when the calling thread is a deterministically
    /// scheduled task: the wait edges are recorded but no condvar wait
    /// happens — the caller must drop the manager mutex and call
    /// [`cooperative_wait`](Self::cooperative_wait) instead, so the
    /// scheduler (not the OS) decides when the blockers run.
    fn block_on(
        &self,
        inner: &mut parking_lot::MutexGuard<'_, Inner>,
        txn: TxnId,
        blockers: Vec<TxnId>,
        deadline: Instant,
    ) -> Result<bool> {
        debug_assert!(!blockers.is_empty());
        self.waits.fetch_add(1, Ordering::Relaxed);
        inner.waits_for.insert(txn, blockers.into_iter().collect());
        if inner.in_cycle(txn) {
            inner.waits_for.remove(&txn);
            inner.deadlocks += 1;
            self.cv.notify_all();
            return Err(DbError::Deadlock { txn });
        }
        if adhoc_sim::sched::under_scheduler() {
            return Ok(true);
        }
        if self.cv.wait_until(inner, deadline).timed_out() {
            inner.waits_for.remove(&txn);
            inner.timeouts += 1;
            return Err(DbError::LockWaitTimeout { txn });
        }
        Ok(false)
    }

    /// The scheduled-task half of a blocking wait: yield (without holding
    /// the manager mutex) until rescheduled, then enforce the deadline.
    fn cooperative_wait(&self, txn: TxnId, deadline: Instant) -> Result<()> {
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::LockWait);
        if Instant::now() >= deadline {
            let mut inner = self.inner.lock();
            inner.waits_for.remove(&txn);
            inner.timeouts += 1;
            return Err(DbError::LockWaitTimeout { txn });
        }
        Ok(())
    }

    /// Release every lock held by `txn` (commit/abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        inner.locks.retain(|_, state| {
            state.holders.remove(&txn);
            state.counts.remove(&txn);
            !state.holders.is_empty()
        });
        for gaps in inner.gaps.values_mut() {
            gaps.retain(|g| g.txn != txn);
        }
        inner.gaps.retain(|_, gaps| !gaps.is_empty());
        inner.waits_for.remove(&txn);
        for blocked_on in inner.waits_for.values_mut() {
            blocked_on.remove(&txn);
        }
        self.cv.notify_all();
    }

    /// Mode currently held by `txn` on a record, if any (test helper).
    pub fn held_record_mode(&self, txn: TxnId, table: usize, row: i64) -> Option<LockMode> {
        let inner = self.inner.lock();
        inner
            .locks
            .get(&ResourceId::Record(table, row))
            .and_then(|s| s.holders.get(&txn).copied())
    }

    /// Counters.
    pub fn stats(&self) -> LockStats {
        let inner = self.inner.lock();
        LockStats {
            deadlocks: inner.deadlocks,
            timeouts: inner.timeouts,
            waits: self.waits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_secs(5)))
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(2, 0, 10, LockMode::Shared).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Shared));
        assert_eq!(m.held_record_mode(2, 0, 10), Some(LockMode::Shared));

        // An exclusive request by txn 3 must block; use a short-timeout
        // manager to observe it.
        let short = Arc::new(LockManager::new(Duration::from_millis(30)));
        short.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        let err = short
            .lock_record(2, 0, 10, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, DbError::LockWaitTimeout { txn: 2 }));
    }

    #[test]
    fn reacquisition_is_idempotent() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_succeeds_when_sole_holder() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_unblocks_waiters() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(2, 0, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
        assert_eq!(m.held_record_mode(2, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_deadlock_is_detected() {
        // The paper's §3.3.1 MySQL RMW scenario: both transactions hold S,
        // both request X. The second upgrader closes the cycle and aborts.
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(2, 0, 10, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(1, 0, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let err = m.lock_record(2, 0, 10, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { txn: 2 }));
        // Victim releases; the first upgrader proceeds.
        m.release_all(2);
        h.join().unwrap().unwrap();
        assert_eq!(m.stats().deadlocks, 1);
    }

    #[test]
    fn two_resource_deadlock_is_detected() {
        let m = mgr();
        m.lock_record(1, 0, 1, LockMode::Exclusive).unwrap();
        m.lock_record(2, 0, 2, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let r = m2.lock_record(1, 0, 2, LockMode::Exclusive);
            if r.is_ok() {
                m2.release_all(1);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(50));
        let err = m.lock_record(2, 0, 1, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { .. }));
        m.release_all(2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn gap_locks_are_compatible_but_block_inserts() {
        let m = mgr();
        // Txn 1 and 2 both gap-lock (9, 12): no conflict.
        let gap = ValueInterval::point(Value::Int(10))
            .widen_to_gap(Some(Value::Int(9)), Some(Value::Int(12)));
        m.lock_gap(1, 0, 1, gap.clone());
        m.lock_gap(2, 0, 1, gap);
        // Txn 1 inserting key 10 is fine (it holds the gap; txn 2's gap
        // covers it though!): InnoDB would block here too — the insert
        // waits on txn 2's gap.
        assert_eq!(m.gap_holders(1, 0, 1, &Value::Int(11)), vec![2]);
        // Txn 3 inserting 11 blocks on both.
        let mut holders = m.gap_holders(3, 0, 1, &Value::Int(11));
        holders.sort_unstable();
        assert_eq!(holders, vec![1, 2]);
        // Outside the gap: free.
        assert!(m.gap_holders(3, 0, 1, &Value::Int(12)).is_empty());
        // After release, inserts proceed.
        m.release_all(1);
        m.release_all(2);
        m.check_insert(3, 0, 1, &Value::Int(11)).unwrap();
    }

    #[test]
    fn insert_intention_waits_for_gap_release() {
        let m = mgr();
        let gap = ValueInterval::all();
        m.lock_gap(1, 0, 1, gap);
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.check_insert(2, 0, 1, &Value::Int(5)));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn advisory_locks_are_reentrant_and_exclusive() {
        let m = mgr();
        m.lock_advisory(1, 42).unwrap();
        m.lock_advisory(1, 42).unwrap(); // reentrant
        assert!(!m.try_lock_advisory(2, 42));
        assert!(m.unlock_advisory(1, 42));
        // Still held once.
        assert!(!m.try_lock_advisory(2, 42));
        assert!(m.unlock_advisory(1, 42));
        assert!(m.try_lock_advisory(2, 42));
        assert!(!m.unlock_advisory(1, 42));
    }

    #[test]
    fn table_lock_excludes_other_table_locks() {
        let short = LockManager::new(Duration::from_millis(30));
        short.lock_table(1, 0, LockMode::Exclusive).unwrap();
        let err = short.lock_table(2, 0, LockMode::Shared).unwrap_err();
        assert!(matches!(err, DbError::LockWaitTimeout { .. }));
        short.release_all(1);
        short.lock_table(2, 0, LockMode::Shared).unwrap();
        short.lock_table(3, 0, LockMode::Shared).unwrap();
    }

    #[test]
    fn release_all_clears_wait_edges() {
        let m = mgr();
        m.lock_record(1, 0, 1, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(2, 0, 1, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
        m.release_all(2);
        assert_eq!(m.held_record_mode(2, 0, 1), None);
    }

    #[test]
    fn stress_many_threads_single_record() {
        let m = mgr();
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..16u64 {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..50 {
                        m.lock_record(t + 1, 0, 7, LockMode::Exclusive).unwrap();
                        // Critical section: non-atomic RMW protected by lock.
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, Ordering::Relaxed);
                        m.release_all(t + 1);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16 * 50);
    }
}
