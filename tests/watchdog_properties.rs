//! Randomized stress for the watchdog lock: threads acquire random key
//! pairs in random orders (the §3.3.1 anti-pattern), retrying on deadlock
//! verdicts. The run must terminate promptly (no stall-to-timeout), every
//! critical section must be exclusive, and no acquisition may be lost.

use adhoc_transactions::core::locks::{AdHocLock, LockError, WatchdogLock};
use adhoc_transactions::sim::rng::for_worker;
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: usize = 4;
const THREADS: usize = 4;
const ITERS: usize = 60;

#[test]
fn random_order_pairs_terminate_exactly_under_retry() {
    let lock = Arc::new(WatchdogLock::new());
    // One unprotected counter per key; only mutual exclusion on that key
    // makes its count exact.
    let counters: Arc<Vec<AtomicUsize>> =
        Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
    let expected: Arc<Vec<AtomicUsize>> =
        Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
    let deadlocks = Arc::new(AtomicUsize::new(0));

    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counters = Arc::clone(&counters);
            let expected = Arc::clone(&expected);
            let deadlocks = Arc::clone(&deadlocks);
            s.spawn(move || {
                let mut rng = for_worker(0xDEAD_10C5, t as u64);
                for _ in 0..ITERS {
                    let a = rng.gen_range(0..KEYS);
                    let b = (a + rng.gen_range(1..KEYS)) % KEYS;
                    // Retry-on-deadlock loop: both guards or start over.
                    let (g1, g2) = loop {
                        let g1 = lock.lock(&format!("k{a}")).expect("first");
                        match lock.lock(&format!("k{b}")) {
                            Ok(g2) => break (g1, g2),
                            Err(LockError::Deadlock { .. }) => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                g1.unlock().expect("release on retry");
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    };
                    for key in [a, b] {
                        // Deliberately racy RMW, exact only under mutual
                        // exclusion on the key.
                        let v = counters[key].load(Ordering::Relaxed);
                        std::thread::yield_now();
                        counters[key].store(v + 1, Ordering::Relaxed);
                        expected[key].fetch_add(1, Ordering::Relaxed);
                    }
                    g2.unlock().expect("unlock b");
                    g1.unlock().expect("unlock a");
                }
            });
        }
    });

    assert!(
        started.elapsed() < Duration::from_secs(8),
        "victims must retry, not stall: {:?}",
        started.elapsed()
    );
    for key in 0..KEYS {
        assert_eq!(
            counters[key].load(Ordering::Relaxed),
            expected[key].load(Ordering::Relaxed),
            "key k{key} lost increments"
        );
    }
    // The workload is adversarial enough that on most runs at least one
    // cycle forms; zero is legal (schedule-dependent), so only report.
    println!(
        "watchdog stress: {} deadlock verdicts retried",
        deadlocks.load(Ordering::Relaxed)
    );
}
