//! `MEM` and `MEM-LRU`: Broadleaf's in-memory map lock tables (§3.2.1).
//!
//! `MEM` keeps lock entries in a concurrent map keyed by lock name —
//! equivalent to a `ConcurrentHashMap`-based table. `MEM-LRU` is the
//! customized variant where "developers added a least recently used (LRU)
//! eviction policy to remove excessive lock entries": when the table
//! exceeds its capacity, the least-recently-acquired entries are evicted
//! *even if currently held*, silently revoking the lock (§4.1.1, issue
//! \[66\] — users "not paying for concurrently added items").

use super::{AdHocLock, Guard, LockError, LockGuard};
use adhoc_sim::{Deadline, SharedClock};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// An acquisition deadline on a shared clock: checked on every wakeup of
/// the table's condvar wait (and on every cooperative yield under the
/// deterministic scheduler).
type WaitBound = (SharedClock, Deadline);

/// State of one lock table entry.
#[derive(Debug, Clone)]
struct Entry {
    /// Fencing token: increments on every grant, so a revoked-then-
    /// re-granted entry is distinguishable from the original.
    grant: u64,
    /// Recency stamp for LRU eviction.
    last_used: u64,
}

#[derive(Default)]
struct TableInner {
    entries: HashMap<String, Entry>,
    grant_counter: u64,
    use_counter: u64,
    evictions: u64,
}

struct LockTable {
    inner: Mutex<TableInner>,
    cv: Condvar,
    /// `None` = unbounded (`MEM`); `Some(cap)` = LRU-evicting (`MEM-LRU`).
    capacity: Option<usize>,
}

impl LockTable {
    fn acquire(&self, key: &str, bound: Option<&WaitBound>) -> Result<u64, LockError> {
        let mut inner = self.inner.lock();
        while inner.entries.contains_key(key) {
            if let Some((clock, deadline)) = bound {
                if deadline.expired(clock.as_ref()) {
                    return Err(LockError::Timeout {
                        key: key.to_string(),
                    });
                }
            }
            if adhoc_sim::sched::under_scheduler() {
                // Deterministically scheduled task: the holder only runs
                // when the scheduler picks it, so waiting on the condvar
                // would deadlock the trial. Yield cooperatively instead.
                drop(inner);
                adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::LockWait);
                inner = self.inner.lock();
                continue;
            }
            match bound {
                // Bounded wait: wake at least every 10 ms to re-evaluate
                // the deadline (the clock may be virtual, so a real-time
                // wait cannot be trusted to cover the remaining span).
                Some((clock, deadline)) => {
                    let slice = deadline
                        .remaining(clock.as_ref())
                        .min(Duration::from_millis(10));
                    self.cv.wait_for(&mut inner, slice);
                }
                None => {
                    self.cv.wait(&mut inner);
                }
            }
        }
        inner.grant_counter += 1;
        inner.use_counter += 1;
        let entry = Entry {
            grant: inner.grant_counter,
            last_used: inner.use_counter,
        };
        let grant = entry.grant;
        inner.entries.insert(key.to_string(), entry);
        if let Some(cap) = self.capacity {
            while inner.entries.len() > cap {
                // Evict the least recently used entry — even when that
                // entry is a lock somebody is holding right now.
                let victim = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty over capacity");
                inner.entries.remove(&victim);
                inner.evictions += 1;
                self.cv.notify_all();
            }
        }
        Ok(grant)
    }

    /// Release only when the entry is still ours (same grant).
    fn release(&self, key: &str, grant: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get(key) {
            Some(e) if e.grant == grant => {
                inner.entries.remove(key);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    fn is_held(&self, key: &str, grant: u64) -> bool {
        let inner = self.inner.lock();
        matches!(inner.entries.get(key), Some(e) if e.grant == grant)
    }

    fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }
}

/// `MEM`: unbounded concurrent-map lock table.
#[derive(Clone)]
pub struct MemLock {
    table: Arc<LockTable>,
    deadline: Option<WaitBound>,
}

impl MemLock {
    /// An empty, unbounded lock table.
    pub fn new() -> Self {
        Self {
            table: Arc::new(LockTable {
                inner: Mutex::new(TableInner::default()),
                cv: Condvar::new(),
                capacity: None,
            }),
            deadline: None,
        }
    }

    /// Bound every acquisition wait by an absolute [`Deadline`] on
    /// `clock`; an expired deadline surfaces as
    /// [`LockError::Timeout`] instead of waiting forever on a holder
    /// that may never release (the partition failure mode).
    pub fn with_deadline(mut self, clock: SharedClock, deadline: Deadline) -> Self {
        self.deadline = Some((clock, deadline));
        self
    }
}

impl Default for MemLock {
    fn default() -> Self {
        Self::new()
    }
}

struct MemGuard {
    table: Arc<LockTable>,
    key: String,
    grant: u64,
    released: bool,
}

impl LockGuard for MemGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        self.table.release(&self.key, self.grant);
        Ok(())
    }

    fn is_valid(&self) -> bool {
        !self.released && self.table.is_held(&self.key, self.grant)
    }

    fn fencing_token(&self) -> Option<u64> {
        // The table's grant counter is already monotonic per table, so it
        // doubles as a fencing token: an evicted-then-re-granted entry's
        // new holder always carries a larger token.
        Some(self.grant)
    }

    fn leak(&mut self) {
        // In-memory lock info vanishes with a process crash (§3.4.2); for
        // an in-process simulation the entry simply stays until evicted or
        // the table is recreated.
        self.released = true;
    }
}

impl AdHocLock for MemLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let grant = self.table.acquire(key, self.deadline.as_ref())?;
        Ok(Guard::new(Box::new(MemGuard {
            table: Arc::clone(&self.table),
            key: key.to_string(),
            grant,
            released: false,
        })))
    }

    fn label(&self) -> &'static str {
        "MEM"
    }
}

/// `MEM-LRU`: capacity-bounded lock table with LRU eviction — Broadleaf's
/// lease-semantics bug built in (eviction is the point of this variant;
/// there is no "fixed" configuration other than using [`MemLock`]).
#[derive(Clone)]
pub struct MemLruLock {
    table: Arc<LockTable>,
    deadline: Option<WaitBound>,
}

impl MemLruLock {
    /// `capacity` is the maximum number of resident lock entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            table: Arc::new(LockTable {
                inner: Mutex::new(TableInner::default()),
                cv: Condvar::new(),
                capacity: Some(capacity),
            }),
            deadline: None,
        }
    }

    /// Bound every acquisition wait by an absolute [`Deadline`] on
    /// `clock` (see [`MemLock::with_deadline`]).
    pub fn with_deadline(mut self, clock: SharedClock, deadline: Deadline) -> Self {
        self.deadline = Some((clock, deadline));
        self
    }

    /// How many held-or-idle entries have been evicted so far.
    pub fn evictions(&self) -> u64 {
        self.table.evictions()
    }
}

impl AdHocLock for MemLruLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let grant = self.table.acquire(key, self.deadline.as_ref())?;
        Ok(Guard::new(Box::new(MemGuard {
            table: Arc::clone(&self.table),
            key: key.to_string(),
            grant,
            released: false,
        })))
    }

    fn label(&self) -> &'static str {
        "MEM-LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::mutual_exclusion_trial;

    #[test]
    fn mem_lock_mutual_exclusion() {
        let lock = MemLock::new();
        assert_eq!(mutual_exclusion_trial(&lock, "cart-1", 8, 200), 8 * 200);
    }

    #[test]
    fn mem_lock_blocks_second_acquirer() {
        let lock = MemLock::new();
        let g = lock.lock("k").unwrap();
        let lock2 = lock.clone();
        let h = std::thread::spawn(move || {
            let g2 = lock2.lock("k").unwrap();
            g2.unlock().unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!h.is_finished());
        g.unlock().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn mem_lock_deadline_bounds_the_wait() {
        let clock = adhoc_sim::RealClock::shared();
        let lock = MemLock::new();
        let g = lock.lock("k").unwrap();
        let bounded = lock.clone().with_deadline(
            clock.clone(),
            Deadline::after(clock.as_ref(), std::time::Duration::from_millis(40)),
        );
        let started = std::time::Instant::now();
        let err = bounded.lock("k").unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the deadline, not an unbounded condvar wait, ended the attempt"
        );
        // The holder is untouched and the table still works.
        assert!(g.is_valid());
        g.unlock().unwrap();
        lock.lock("k").unwrap().unlock().unwrap();
    }

    #[test]
    fn mem_guards_expose_monotonic_fencing_tokens() {
        let lock = MemLruLock::new(2);
        let g1 = lock.lock("a").unwrap();
        let t1 = g1.fencing_token().expect("mem guards are fenced");
        let _g2 = lock.lock("b").unwrap();
        let _g3 = lock.lock("c").unwrap(); // evicts "a"
        let g1b = lock.lock("a").unwrap();
        let t2 = g1b.fencing_token().unwrap();
        assert!(
            t2 > t1,
            "the re-granted entry's token must dominate the evicted holder's"
        );
    }

    #[test]
    fn lru_eviction_revokes_held_locks() {
        // Capacity 2: acquiring a third key evicts the least recently used
        // held entry — the Broadleaf lease bug.
        let lock = MemLruLock::new(2);
        let g1 = lock.lock("order-1").unwrap();
        let _g2 = lock.lock("order-2").unwrap();
        assert!(g1.is_valid());
        let _g3 = lock.lock("order-3").unwrap();
        assert!(!g1.is_valid(), "order-1 must have been evicted");
        assert_eq!(lock.evictions(), 1);
        // A second acquirer can now take "order-1" while g1 thinks it holds
        // it: mutual exclusion is gone.
        let g1b = lock.lock("order-1").unwrap();
        assert!(g1b.is_valid());
        // g1's release must not clobber g1b's entry (fencing tokens).
        g1.unlock().unwrap();
        assert!(g1b.is_valid());
    }

    #[test]
    fn lru_below_capacity_behaves_like_mem() {
        let lock = MemLruLock::new(64);
        assert_eq!(mutual_exclusion_trial(&lock, "k", 4, 100), 4 * 100);
        assert_eq!(lock.evictions(), 0);
    }

    #[test]
    fn leak_keeps_entry_resident() {
        let lock = MemLock::new();
        let g = lock.lock("crashed").unwrap();
        g.leak();
        // The entry is still in the table: a second acquirer would block.
        let lock2 = lock.clone();
        let h = std::thread::spawn(move || lock2.lock("crashed").map(|g| g.unlock()));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!h.is_finished(), "leaked lock must still block");
        // Clean up so the thread can finish: a fresh guard with the same
        // grant does not exist, so release directly via a new table entry
        // is impossible — simulate process restart by dropping the table.
        // (We just detach the thread; test process teardown reaps it.)
        drop(h);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        MemLruLock::new(0);
    }
}
