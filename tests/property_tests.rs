//! Property-based tests over the substrates' core invariants.

use adhoc_transactions::kv::{SetMode, Store};
use adhoc_transactions::storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Predicate, Value,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

// ---------------------------------------------------------------------
// KV store vs. a HashMap model.

#[derive(Debug, Clone)]
enum KvOp {
    Set(u8, u8),
    SetNx(u8, u8),
    Del(u8),
    Get(u8),
    Incr(u8),
    ExpireIn(u8, u16),
    Advance(u16),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| KvOp::Set(k % 8, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| KvOp::SetNx(k % 8, v)),
        any::<u8>().prop_map(|k| KvOp::Del(k % 8)),
        any::<u8>().prop_map(|k| KvOp::Get(k % 8)),
        any::<u8>().prop_map(|k| KvOp::Incr(k % 8)),
        (any::<u8>(), 1u16..500).prop_map(|(k, d)| KvOp::ExpireIn(k % 8, d)),
        (1u16..500).prop_map(KvOp::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KV store agrees with a simple model (value + expiry deadline)
    /// under arbitrary single-threaded command sequences.
    #[test]
    fn kv_store_matches_model(ops in proptest::collection::vec(kv_op(), 1..120)) {
        let store = Store::new();
        let mut model: HashMap<String, (String, Option<Duration>)> = HashMap::new();
        let mut now = Duration::ZERO;
        let live = |model: &HashMap<String, (String, Option<Duration>)>, k: &str, now: Duration| {
            model.get(k).filter(|(_, exp)| exp.map(|e| now < e).unwrap_or(true)).cloned()
        };
        for op in ops {
            match op {
                KvOp::Advance(ms) => now += Duration::from_millis(ms as u64),
                KvOp::Set(k, v) => {
                    let key = format!("k{k}");
                    store.set(&key, &v.to_string(), SetMode::Always, None, now).unwrap();
                    model.insert(key, (v.to_string(), None));
                }
                KvOp::SetNx(k, v) => {
                    let key = format!("k{k}");
                    let expect_free = live(&model, &key, now).is_none();
                    let did = store.set(&key, &v.to_string(), SetMode::IfAbsent, None, now).unwrap();
                    prop_assert_eq!(did, expect_free);
                    if did {
                        model.insert(key, (v.to_string(), None));
                    }
                }
                KvOp::Del(k) => {
                    let key = format!("k{k}");
                    let expect = live(&model, &key, now).is_some();
                    prop_assert_eq!(store.del(&key, now), expect);
                    model.remove(&key);
                }
                KvOp::Get(k) => {
                    let key = format!("k{k}");
                    let expect = live(&model, &key, now).map(|(v, _)| v);
                    prop_assert_eq!(store.get(&key, now).unwrap(), expect);
                }
                KvOp::Incr(k) => {
                    let key = format!("k{k}");
                    let current = live(&model, &key, now)
                        .map(|(v, _)| v.parse::<i64>().unwrap())
                        .unwrap_or(0);
                    // Keep expiry from the live entry (INCR preserves TTL).
                    let exp = live(&model, &key, now).and_then(|(_, e)| e);
                    prop_assert_eq!(store.incr(&key, now).unwrap(), current + 1);
                    model.insert(key, ((current + 1).to_string(), exp));
                }
                KvOp::ExpireIn(k, ms) => {
                    let key = format!("k{k}");
                    let alive = live(&model, &key, now).is_some();
                    let did = store.expire(&key, Duration::from_millis(ms as u64), now);
                    prop_assert_eq!(did, alive);
                    if alive {
                        let (v, _) = model.get(&key).unwrap().clone();
                        model.insert(key, (v, Some(now + Duration::from_millis(ms as u64))));
                    } else {
                        model.remove(&key);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Storage engine properties.

fn tiny_db(profile: EngineProfile) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        adhoc_transactions::storage::Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("grp", ColumnType::Int),
                Column::new("val", ColumnType::Int),
            ],
            "id",
        )
        .unwrap()
        .with_index("grp")
        .unwrap(),
    )
    .unwrap();
    db
}

#[derive(Debug, Clone)]
enum DbOp {
    Insert { grp: i8, val: i8 },
    Update { idx: u8, val: i8 },
    Delete { idx: u8 },
    ScanGrp { grp: i8 },
}

fn db_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        (any::<i8>(), any::<i8>()).prop_map(|(g, v)| DbOp::Insert { grp: g % 4, val: v }),
        (any::<u8>(), any::<i8>()).prop_map(|(i, v)| DbOp::Update { idx: i, val: v }),
        any::<u8>().prop_map(|i| DbOp::Delete { idx: i }),
        any::<i8>().prop_map(|g| DbOp::ScanGrp { grp: g % 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Auto-committed single-statement transactions agree with a HashMap
    /// model on both engine profiles, including index scans.
    #[test]
    fn engine_matches_model_single_threaded(
        ops in proptest::collection::vec(db_op(), 1..80),
        profile_pg in any::<bool>(),
    ) {
        let profile = if profile_pg { EngineProfile::PostgresLike } else { EngineProfile::MySqlLike };
        let db = tiny_db(profile);
        let mut model: HashMap<i64, (i64, i64)> = HashMap::new(); // id -> (grp, val)
        let mut ids: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                DbOp::Insert { grp, val } => {
                    let id = db.run(IsolationLevel::ReadCommitted, |t| {
                        t.insert("t", &[("grp", (grp as i64).into()), ("val", (val as i64).into())])
                    }).unwrap();
                    model.insert(id, (grp as i64, val as i64));
                    ids.push(id);
                }
                DbOp::Update { idx, val } => {
                    if ids.is_empty() { continue; }
                    let id = ids[idx as usize % ids.len()];
                    let result = db.run(IsolationLevel::ReadCommitted, |t| {
                        t.update("t", id, &[("val", (val as i64).into())])
                    });
                    if let Some(entry) = model.get_mut(&id) {
                        prop_assert!(result.is_ok());
                        entry.1 = val as i64;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                DbOp::Delete { idx } => {
                    if ids.is_empty() { continue; }
                    let id = ids[idx as usize % ids.len()];
                    let existed = db.run(IsolationLevel::ReadCommitted, |t| t.delete("t", id)).unwrap();
                    prop_assert_eq!(existed, model.remove(&id).is_some());
                }
                DbOp::ScanGrp { grp } => {
                    let rows = db.run(IsolationLevel::ReadCommitted, |t| {
                        t.scan("t", &Predicate::eq("grp", grp as i64))
                    }).unwrap();
                    let mut got: Vec<i64> = rows.iter().map(|(id, _)| *id).collect();
                    got.sort_unstable();
                    let mut want: Vec<i64> = model
                        .iter()
                        .filter(|(_, (g, _))| *g == grp as i64)
                        .map(|(id, _)| *id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                    // Scan results honour the predicate on the row itself.
                    let schema = db.schema("t").unwrap();
                    for (_, row) in &rows {
                        prop_assert_eq!(row.get_int(&schema, "grp").unwrap(), grp as i64);
                    }
                }
            }
        }
        // Final state: every live model row readable, with matching value.
        for (id, (grp, val)) in &model {
            let row = db.latest_committed("t", *id).unwrap().unwrap();
            let schema = db.schema("t").unwrap();
            prop_assert_eq!(row.get_int(&schema, "grp").unwrap(), *grp);
            prop_assert_eq!(row.get_int(&schema, "val").unwrap(), *val);
        }
    }

    /// Snapshot stability: under Repeatable Read, a transaction re-reading
    /// a row sees the same value regardless of interleaved commits.
    #[test]
    fn repeatable_read_is_repeatable(updates in proptest::collection::vec(any::<i8>(), 1..12)) {
        for profile in [EngineProfile::PostgresLike, EngineProfile::MySqlLike] {
            let db = tiny_db(profile);
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.insert("t", &[("id", 1.into()), ("grp", 0.into()), ("val", 42.into())]).map(|_| ())
            }).unwrap();
            let mut reader = db.begin_with(IsolationLevel::RepeatableRead);
            let first = reader.get("t", 1).unwrap().unwrap();
            for v in &updates {
                db.run(IsolationLevel::ReadCommitted, |t| {
                    t.update("t", 1, &[("val", (*v as i64).into())])
                }).unwrap();
                let again = reader.get("t", 1).unwrap().unwrap();
                prop_assert_eq!(&again, &first);
            }
            reader.commit().unwrap();
        }
    }

    /// Transaction atomicity: an aborted transaction leaves no trace, no
    /// matter which writes it buffered.
    #[test]
    fn aborted_transactions_leave_no_trace(writes in proptest::collection::vec((any::<i8>(), any::<i8>()), 1..10)) {
        let db = tiny_db(EngineProfile::PostgresLike);
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("t", &[("id", 1.into()), ("grp", 0.into()), ("val", 0.into())]).map(|_| ())
        }).unwrap();
        let before = db.dump_table("t").unwrap();
        let mut txn = db.begin();
        for (g, v) in &writes {
            txn.insert("t", &[("grp", (*g as i64).into()), ("val", (*v as i64).into())]).unwrap();
        }
        txn.update("t", 1, &[("val", 99.into())]).unwrap();
        txn.abort();
        prop_assert_eq!(db.dump_table("t").unwrap(), before);
    }

    /// Value ordering is a total order consistent with index range scans.
    #[test]
    fn value_order_is_transitive(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (va, vb, vc) = (Value::Int(a), Value::Int(b), Value::Int(c));
        if va <= vb && vb <= vc {
            prop_assert!(va <= vc);
        }
        prop_assert_eq!(va == vb, a == b);
    }
}
