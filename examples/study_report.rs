//! Print the full study: every table of the paper plus the eight findings,
//! all derived from the 91-case corpus.
//!
//! Run with `cargo run --example study_report`.

use adhoc_transactions::study::report;

fn main() {
    println!("{}", report::render_table1());
    println!("{}", report::render_table2());
    println!("{}", report::render_table3());
    println!("{}", report::render_table4());
    println!("{}", report::render_table5a());
    println!("{}", report::render_table5b());
    println!("{}", report::render_table7a());
    println!("{}", report::render_table7b());
    println!("{}", report::render_findings());
    println!("{}", report::render_playbook());
}
