//! Discourse (Ruby/Active Record): topics, posts, images, reviewables.
//!
//! Scenarios reproduced:
//! * **Table 6 `CBC`** — `create_post` and `toggle_answer` update
//!   *different columns* of the same Topics row; the ad hoc variant uses
//!   two lock namespaces (`create_post:{topic}` / `toggle_answer:{topic}`)
//!   so they run in parallel, while the database variant (PostgreSQL
//!   Repeatable Read) conflicts at row granularity (§3.3.2).
//! * **Table 6 `AA`** — `like_post` bumps the post's like count and its
//!   parent topic's total under one topic lock (associated access,
//!   §3.3.1); the database variant runs at PostgreSQL Serializable.
//! * **§3.1.2 / §3.3.2** — the two-request `edit-post` flow with version-
//!   and content-based validation, plus the lock-after-read bug
//!   (§4.1.1, issue \[76\]).
//! * **§3.4.1 / Figure 4** — `shrink_image` with the four rollback
//!   strategies (`REPAIR`, `DBT-S`, `DBT-W`, `MANUAL`), including the
//!   incomplete-repair bug (§4.3, issue \[64\]).
//! * **§4.1.2** — `update_reviewable` with the MiniSql non-atomic
//!   validate-and-commit (issue \[62\]).

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_core::locks::AdHocLock;
use adhoc_core::taxonomy::FailureHandling;
use adhoc_core::validation::{validated_write, CommitOutcome, ValidationCheck, ValidationStrategy};
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{
    Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Row, Schema,
};
use std::sync::Arc;
use std::time::Duration;

/// Create Discourse's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "topics",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("max_post", ColumnType::Int),
            Column::new("answer", ColumnType::Int),
            Column::new("total_likes", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "posts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("topic_id", ColumnType::Int),
                Column::new("seq", ColumnType::Int),
                Column::new("content", ColumnType::Str),
                Column::new("ver", ColumnType::Int),
                Column::new("view_cnt", ColumnType::Int),
                Column::new("like_cnt", ColumnType::Int),
                Column::new("img_id", ColumnType::Int),
                Column::new("is_answer", ColumnType::Bool),
            ],
            "id",
        )?
        .with_index("topic_id")?
        .with_index("img_id")?,
    )?;
    db.create_table(Schema::new(
        "images",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("bytes", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "reviewables",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("version", ColumnType::Int),
            Column::new("score", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "drafts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("user_id", ColumnType::Int),
                Column::new("dkey", ColumnType::Str),
                // user_id + dkey combined; the unique index is what makes
                // concurrent first saves safe (Discourse's schema does the
                // same with a composite unique index).
                Column::new("ukey", ColumnType::Str),
                Column::new("sequence", ColumnType::Int),
                Column::new("content", ColumnType::Str),
            ],
            "id",
        )?
        .with_index("user_id")?
        .with_unique_index("ukey")?,
    )?;
    let registry = Registry::new()
        .register(EntityDef::new("topics"))
        .register(EntityDef::new("posts"))
        .register(EntityDef::new("images"))
        .register(EntityDef::new("reviewables"))
        .register(EntityDef::new("drafts"));
    Ok(Orm::new(db.clone(), registry))
}

/// Result of a composer draft save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DraftOutcome {
    /// The draft was stored.
    Saved,
    /// The client's sequence is behind the stored draft (a stale tab);
    /// nothing was written.
    StaleSequence {
        /// The sequence currently stored.
        current: i64,
    },
}

/// Result of the second edit-post request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOutcome {
    /// The edit was applied.
    Success,
    /// The post changed since request 1 — the user is told to re-edit.
    Conflict,
}

/// What request 1 of the edit flow hands to the client.
#[derive(Debug, Clone)]
pub struct EditToken {
    /// The post being edited.
    pub post_id: i64,
    /// Content as fetched by request 1.
    pub content: String,
    /// Version as fetched by request 1.
    pub ver: i64,
}

/// Per-call report from `shrink_image`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Posts whose references were rewritten.
    pub rewritten: usize,
    /// Restarts/repairs the strategy needed (full batch restarts for the
    /// transactional strategies, per-post repairs for `REPAIR`).
    pub restarts: usize,
}

/// The Discourse application model.
pub struct Discourse {
    orm: Orm,
    lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
    /// §4.1.1 \[76\]: read the post *before* acquiring its lock.
    lock_after_read: bool,
    /// §4.3 \[64\]: the shrink-image repair ignores posts that started using
    /// the image after the initial query.
    incomplete_repair: bool,
    /// Simulated image-processing cost (dominates Figure 4's latencies).
    pub image_process_cost: Duration,
    /// Simulated request-processing cost paid while `commit_edit` holds the
    /// post lock (drives the DBT-W/MANUAL blocking of §5.3).
    pub edit_hold_cost: Duration,
    /// Application-server CPU burned per request attempt (see
    /// [`crate::busy_work`]). Zero by default.
    pub request_cpu_work: Duration,
}

impl Discourse {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            lock,
            coord,
            mode,
            lock_after_read: false,
            incomplete_repair: false,
            image_process_cost: Duration::ZERO,
            edit_hold_cost: Duration::ZERO,
            request_cpu_work: Duration::ZERO,
        }
    }

    /// Set the per-attempt application-server CPU cost.
    pub fn with_request_cpu_work(mut self, d: Duration) -> Self {
        self.request_cpu_work = d;
        self
    }

    /// Enable the §4.1.1 \[76\] lock-after-read fault.
    pub fn lock_after_read(mut self) -> Self {
        self.lock_after_read = true;
        self
    }

    /// Enable the §4.3 \[64\] incomplete-repair fault.
    pub fn incomplete_repair(mut self) -> Self {
        self.incomplete_repair = true;
        self
    }

    /// Set the simulated image-processing cost.
    pub fn with_image_cost(mut self, cost: Duration) -> Self {
        self.image_process_cost = cost;
        self
    }

    /// Set the cost paid while an edit holds the post lock.
    pub fn with_edit_hold_cost(mut self, cost: Duration) -> Self {
        self.edit_hold_cost = cost;
        self
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// Seed an empty topic.
    pub fn seed_topic(&self, topic_id: i64) -> Result<()> {
        self.orm.create(
            "topics",
            &[
                ("id", topic_id.into()),
                ("max_post", 0.into()),
                ("answer", 0.into()),
                ("total_likes", 0.into()),
            ],
        )?;
        Ok(())
    }

    /// Seed an image record.
    pub fn seed_image(&self, img_id: i64, bytes: i64) -> Result<()> {
        self.orm
            .create("images", &[("id", img_id.into()), ("bytes", bytes.into())])?;
        Ok(())
    }

    /// Seed a post; returns its id.
    pub fn seed_post(&self, topic_id: i64, content: &str, img_id: i64) -> Result<i64> {
        let obj = self.orm.transaction(|t| {
            let topic = t.find_required("topics", topic_id)?;
            let seq = topic.get_int("max_post")? + 1;
            let post = t.create(
                "posts",
                &[
                    ("topic_id", topic_id.into()),
                    ("seq", seq.into()),
                    ("content", content.into()),
                    ("ver", 0.into()),
                    ("view_cnt", 0.into()),
                    ("like_cnt", 0.into()),
                    ("img_id", img_id.into()),
                    ("is_answer", false.into()),
                ],
            )?;
            t.raw()
                .update("topics", topic_id, &[("max_post", seq.into())])?;
            Ok(post)
        })?;
        Ok(obj.id)
    }

    /// Table 6 `CBC` (writer 1): allocate the next post number and insert.
    pub fn create_post(&self, topic_id: i64, content: &str) -> Result<i64> {
        match self.mode {
            Mode::AdHoc => {
                crate::busy_work(self.request_cpu_work);
                let guard = self.lock.lock(&format!("create_post:{topic_id}"))?;
                let (post_id, seq) = self.orm.transaction(|t| {
                    let topic = t.find_required("topics", topic_id)?;
                    let seq = topic.get_int("max_post")? + 1;
                    let post = t.create(
                        "posts",
                        &[
                            ("topic_id", topic_id.into()),
                            ("seq", seq.into()),
                            ("content", content.into()),
                            ("ver", 0.into()),
                            ("view_cnt", 0.into()),
                            ("like_cnt", 0.into()),
                            ("img_id", 0.into()),
                            ("is_answer", false.into()),
                        ],
                    )?;
                    Ok((post.id, seq))
                })?;
                // Second statement in its own transaction: the app lock is
                // what keeps the pair atomic.
                self.orm.transaction(|t| {
                    t.raw()
                        .update("topics", topic_id, &[("max_post", seq.into())])?;
                    Ok(())
                })?;
                guard.unlock()?;
                Ok(post_id)
            }
            Mode::DatabaseTxn => {
                // Table 6: PostgreSQL, Repeatable Read.
                Ok(self.orm.db().run_with_retries(
                    IsolationLevel::RepeatableRead,
                    DBT_RETRIES,
                    |t| {
                        crate::busy_work(self.request_cpu_work);
                        let schema = self.orm.db().schema("topics")?;
                        let topic = t.get("topics", topic_id)?.ok_or(DbError::NoSuchRow {
                            table: "topics".into(),
                            id: topic_id,
                        })?;
                        let seq = topic.get_int(&schema, "max_post")? + 1;
                        let id = t.insert(
                            "posts",
                            &[
                                ("topic_id", topic_id.into()),
                                ("seq", seq.into()),
                                ("content", content.into()),
                                ("ver", 0.into()),
                                ("view_cnt", 0.into()),
                                ("like_cnt", 0.into()),
                                ("img_id", 0.into()),
                                ("is_answer", false.into()),
                            ],
                        )?;
                        t.update("topics", topic_id, &[("max_post", seq.into())])?;
                        Ok(id)
                    },
                )?)
            }
            // Post-number allocation is *not* invariant-confluent (numbers
            // must stay dense and ordered), so Confluent inherits the
            // coordinated cure unchanged.
            Mode::Cured | Mode::Confluent => {
                // §7 cure: the façade serializes sequence allocation per
                // topic, and one default-isolation transaction makes the
                // insert + counter bump atomic. The lock key is its own
                // namespace, so `toggle_answer` (different columns of the
                // same Topics row) still runs in parallel — the CBC win.
                crate::busy_work(self.request_cpu_work);
                let guard = self.coord.user_lock(&format!("create_post:{topic_id}"))?;
                let post_id = self.orm.transaction(|t| {
                    let topic = t.find_required("topics", topic_id)?;
                    let seq = topic.get_int("max_post")? + 1;
                    let post = t.create(
                        "posts",
                        &[
                            ("topic_id", topic_id.into()),
                            ("seq", seq.into()),
                            ("content", content.into()),
                            ("ver", 0.into()),
                            ("view_cnt", 0.into()),
                            ("like_cnt", 0.into()),
                            ("img_id", 0.into()),
                            ("is_answer", false.into()),
                        ],
                    )?;
                    t.raw()
                        .update("topics", topic_id, &[("max_post", seq.into())])?;
                    Ok(post.id)
                })?;
                guard.unlock()?;
                Ok(post_id)
            }
        }
    }

    /// Table 6 `CBC` (writer 2): mark a post as the topic's answer.
    pub fn toggle_answer(&self, topic_id: i64, post_id: i64) -> Result<()> {
        match self.mode {
            Mode::AdHoc => {
                crate::busy_work(self.request_cpu_work);
                let guard = self.lock.lock(&format!("toggle_answer:{topic_id}"))?;
                self.orm.transaction(|t| {
                    t.raw()
                        .update("posts", post_id, &[("is_answer", true.into())])?;
                    Ok(())
                })?;
                self.orm.transaction(|t| {
                    t.raw()
                        .update("topics", topic_id, &[("answer", post_id.into())])?;
                    Ok(())
                })?;
                guard.unlock()?;
                Ok(())
            }
            Mode::DatabaseTxn => {
                self.orm.db().run_with_retries(
                    IsolationLevel::RepeatableRead,
                    DBT_RETRIES,
                    |t| {
                        crate::busy_work(self.request_cpu_work);
                        t.update("posts", post_id, &[("is_answer", true.into())])?;
                        t.update("topics", topic_id, &[("answer", post_id.into())])?;
                        Ok(())
                    },
                )?;
                Ok(())
            }
            Mode::Cured | Mode::Confluent => {
                // §7 cure: two blind writes become one optimistic commit —
                // nothing is read, so nothing can conflict, and the pair is
                // atomic. Writing only the `answer`/`is_answer` columns
                // keeps it commuting with `create_post` (CBC).
                crate::busy_work(self.request_cpu_work);
                run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    occ.stage_update("posts", post_id, &[("is_answer", true.into())]);
                    occ.stage_update("topics", topic_id, &[("answer", post_id.into())]);
                    Ok(())
                })?;
                Ok(())
            }
        }
    }

    /// Table 6 `AA`: like a post, bumping the post's and the topic's
    /// counters under one topic lock.
    pub fn like_post(&self, post_id: i64) -> Result<()> {
        let schema = self.orm.db().schema("posts")?;
        let topic_schema = self.orm.db().schema("topics")?;
        match self.mode {
            Mode::AdHoc => {
                // Non-critical request work, pipelined outside the lock.
                crate::busy_work(self.request_cpu_work);
                let topic_id = self
                    .orm
                    .find_required("posts", post_id)?
                    .get_int("topic_id")?;
                let guard = self.lock.lock(&format!("topic:{topic_id}"))?;
                self.orm.transaction(|t| {
                    let post = t.raw().get("posts", post_id)?.ok_or(DbError::NoSuchRow {
                        table: "posts".into(),
                        id: post_id,
                    })?;
                    let likes = post.get_int(&schema, "like_cnt")?;
                    t.raw()
                        .update("posts", post_id, &[("like_cnt", (likes + 1).into())])?;
                    Ok(())
                })?;
                self.orm.transaction(|t| {
                    let topic = t.raw().get("topics", topic_id)?.ok_or(DbError::NoSuchRow {
                        table: "topics".into(),
                        id: topic_id,
                    })?;
                    let total = topic.get_int(&topic_schema, "total_likes")?;
                    t.raw()
                        .update("topics", topic_id, &[("total_likes", (total + 1).into())])?;
                    Ok(())
                })?;
                guard.unlock()?;
                Ok(())
            }
            Mode::DatabaseTxn => {
                // Table 6: PostgreSQL, Serializable.
                self.orm
                    .db()
                    .run_with_retries(IsolationLevel::Serializable, DBT_RETRIES, |t| {
                        // Every retry re-executes the request handler.
                        crate::busy_work(self.request_cpu_work);
                        let post = t.get("posts", post_id)?.ok_or(DbError::NoSuchRow {
                            table: "posts".into(),
                            id: post_id,
                        })?;
                        let topic_id = post.get_int(&schema, "topic_id")?;
                        let likes = post.get_int(&schema, "like_cnt")?;
                        t.update("posts", post_id, &[("like_cnt", (likes + 1).into())])?;
                        let topic = t.get("topics", topic_id)?.ok_or(DbError::NoSuchRow {
                            table: "topics".into(),
                            id: topic_id,
                        })?;
                        let total = topic.get_int(&topic_schema, "total_likes")?;
                        t.update("topics", topic_id, &[("total_likes", (total + 1).into())])?;
                        Ok(())
                    })?;
                Ok(())
            }
            Mode::Confluent => {
                // Like-counts are invariant-confluent: two likes commute,
                // no invariant orders them. Both bumps commit as
                // commutative deltas in one transaction — no lock, no
                // validated read, no retry loop. The only read is the
                // post's immutable topic_id.
                crate::busy_work(self.request_cpu_work);
                let topic_id = self
                    .orm
                    .find_required("posts", post_id)?
                    .get_int("topic_id")?;
                self.orm.transaction(|t| {
                    t.raw().add_delta("posts", post_id, "like_cnt", 1)?;
                    t.raw().add_delta("topics", topic_id, "total_likes", 1)?;
                    Ok(())
                })?;
                Ok(())
            }
            Mode::Cured => {
                // §7 cure for AA: one optimistic transaction over both
                // counters, field-granular on exactly the columns read —
                // no topic lock, no Serializable aborts; conflicting likes
                // retry automatically.
                crate::busy_work(self.request_cpu_work);
                run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    let post = occ
                        .read_fields(&self.orm, "posts", post_id, &["topic_id", "like_cnt"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "posts".into(),
                            id: post_id,
                        })?;
                    let topic_id = post.get_int("topic_id")?;
                    let likes = post.get_int("like_cnt")?;
                    let topic = occ
                        .read_fields(&self.orm, "topics", topic_id, &["total_likes"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "topics".into(),
                            id: topic_id,
                        })?;
                    let total = topic.get_int("total_likes")?;
                    occ.stage_update("posts", post_id, &[("like_cnt", (likes + 1).into())]);
                    occ.stage_update("topics", topic_id, &[("total_likes", (total + 1).into())]);
                    Ok(())
                })?;
                Ok(())
            }
        }
    }

    /// Edit-post request 1 (§3.1.2): bump the view count and return the
    /// content + version for client-side editing. The view-count bump is
    /// deliberately *not* rolled back if request 2 later conflicts.
    pub fn begin_edit(&self, post_id: i64) -> Result<EditToken> {
        let schema = self.orm.db().schema("posts")?;
        let (content, ver) = self.orm.transaction(|t| {
            let post = t.raw().get("posts", post_id)?.ok_or(DbError::NoSuchRow {
                table: "posts".into(),
                id: post_id,
            })?;
            let views = post.get_int(&schema, "view_cnt")?;
            t.raw()
                .update("posts", post_id, &[("view_cnt", (views + 1).into())])?;
            Ok((
                post.get_str(&schema, "content")?,
                post.get_int(&schema, "ver")?,
            ))
        })?;
        Ok(EditToken {
            post_id,
            content,
            ver,
        })
    }

    /// Edit-post request 2, version-validated (§3.1.2's listing).
    pub fn commit_edit(&self, token: &EditToken, new_content: &str) -> Result<EditOutcome> {
        let schema = self.orm.db().schema("posts")?;
        if self.lock_after_read {
            // §4.1.1 [76]: the post is read *before* the lock; the write-
            // back is serialized but the RMW is not atomic, so a concurrent
            // edit committed in the window is silently overwritten.
            let current = self.orm.find_required("posts", token.post_id)?;
            let ver = current.get_int("ver")?;
            std::thread::yield_now(); // the request-processing window
            let guard = self.lock.lock(&format!("post:{}", token.post_id))?;
            if ver != token.ver {
                guard.unlock()?;
                return Ok(EditOutcome::Conflict);
            }
            self.orm.transaction(|t| {
                t.raw().update(
                    "posts",
                    token.post_id,
                    &[("content", new_content.into()), ("ver", (ver + 1).into())],
                )?;
                Ok(())
            })?;
            guard.unlock()?;
            return Ok(EditOutcome::Success);
        }
        // Correct order: lock, re-read, validate, write.
        let guard = self.lock.lock(&format!("post:{}", token.post_id))?;
        std::thread::sleep(self.edit_hold_cost);
        let outcome = self.orm.transaction(|t| {
            let current = t
                .raw()
                .get("posts", token.post_id)?
                .ok_or(DbError::NoSuchRow {
                    table: "posts".into(),
                    id: token.post_id,
                })?;
            let ver = current.get_int(&schema, "ver")?;
            if ver != token.ver {
                return Ok(EditOutcome::Conflict);
            }
            t.raw().update(
                "posts",
                token.post_id,
                &[("content", new_content.into()), ("ver", (ver + 1).into())],
            )?;
            Ok(EditOutcome::Success)
        })?;
        guard.unlock()?;
        Ok(outcome)
    }

    /// Edit-post request 2, content-validated (§3.3.2's column-based
    /// refinement): only concurrent changes to `content` itself conflict —
    /// view-count bumps do not.
    pub fn commit_edit_by_content(
        &self,
        token: &EditToken,
        new_content: &str,
    ) -> Result<EditOutcome> {
        let guard = self.lock.lock(&format!("post:{}", token.post_id))?;
        let obj = self.orm.find_required("posts", token.post_id)?;
        let outcome = if obj.get_str("content")? != token.content {
            EditOutcome::Conflict
        } else {
            let strategy = ValidationStrategy::HandCraftedAtomic(ValidationCheck::ValueEquals {
                column: "content".into(),
            });
            match validated_write(
                &self.orm,
                &obj,
                &[("content", new_content.into())],
                &strategy,
            )? {
                CommitOutcome::Committed => EditOutcome::Success,
                CommitOutcome::Conflict => EditOutcome::Conflict,
            }
        };
        guard.unlock()?;
        Ok(outcome)
    }

    /// §3.4.1 / Figure 4: rewrite every post referencing `old_img` to
    /// `new_img` with the given rollback strategy. The figure's four
    /// configurations map as: `Repair` → REPAIR, `ErrorReturn` → DBT-S
    /// (pure Serializable transaction), `DbtRollback` → DBT-W,
    /// `ManualRollback` → MANUAL.
    pub fn shrink_image(
        &self,
        old_img: i64,
        new_img: i64,
        strategy: FailureHandling,
    ) -> Result<ShrinkReport> {
        match strategy {
            FailureHandling::Repair => self.shrink_repair(old_img, new_img),
            FailureHandling::ErrorReturn => {
                self.shrink_dbt(old_img, new_img, IsolationLevel::Serializable, false)
            }
            FailureHandling::DbtRollback => {
                self.shrink_dbt(old_img, new_img, IsolationLevel::ReadCommitted, true)
            }
            FailureHandling::ManualRollback => self.shrink_manual(old_img, new_img),
        }
    }

    fn replace_refs(&self, content: &str, old_img: i64, new_img: i64) -> String {
        content.replace(&format!("img:{old_img}"), &format!("img:{new_img}"))
    }

    fn posts_using(&self, img: i64) -> Result<Vec<(i64, String, i64)>> {
        let schema = self.orm.db().schema("posts")?;
        let rows = self
            .orm
            .transaction(|t| Ok(t.raw().scan("posts", &Predicate::eq("img_id", img))?))?;
        let mut out = Vec::with_capacity(rows.len());
        for (id, row) in &rows {
            out.push((
                *id,
                row.get_str(&schema, "content")?,
                row.get_int(&schema, "ver")?,
            ));
        }
        Ok(out)
    }

    /// One validated per-post rewrite; returns whether it landed.
    fn rewrite_post(
        &self,
        post_id: i64,
        content: &str,
        ver: i64,
        old_img: i64,
        new_img: i64,
    ) -> Result<bool> {
        let new_content = self.replace_refs(content, old_img, new_img);
        let affected = self.orm.transaction(|t| {
            let pred = Predicate::And(vec![
                Predicate::eq("id", post_id),
                Predicate::eq("ver", ver),
            ]);
            Ok(t.raw().update_where(
                "posts",
                &pred,
                &[
                    ("content", new_content.as_str().into()),
                    ("img_id", new_img.into()),
                    ("ver", (ver + 1).into()),
                ],
            )?)
        })?;
        Ok(affected == 1)
    }

    /// `REPAIR`: process the image once; per-post OCC retry redoes only
    /// the affected post's replacement (§3.4.1's listing).
    fn shrink_repair(&self, old_img: i64, new_img: i64) -> Result<ShrinkReport> {
        let mut report = ShrinkReport::default();
        let posts = self.posts_using(old_img)?;
        // The expensive, once-only image processing, based on the posts
        // just read. Conflicting edits land in this window; repair redoes
        // only the affected post's cheap replacement, never this step.
        std::thread::sleep(self.image_process_cost);
        for (post_id, mut content, mut ver) in posts {
            loop {
                if self.rewrite_post(post_id, &content, ver, old_img, new_img)? {
                    report.rewritten += 1;
                    break;
                }
                // Conflict: re-read just this post and redo its replacement
                // (no image re-processing, no other posts touched).
                report.restarts += 1;
                match self.orm.find("posts", post_id)? {
                    Some(obj) if obj.get_int("img_id")? == old_img => {
                        content = obj.get_str("content")?;
                        ver = obj.get_int("ver")?;
                    }
                    _ => break, // deleted or already migrated
                }
            }
        }
        // Sweep for posts that started using the image mid-run; the
        // incomplete-repair bug (§4.3 [64]) skips this.
        if !self.incomplete_repair {
            for (post_id, content, ver) in self.posts_using(old_img)? {
                if self.rewrite_post(post_id, &content, ver, old_img, new_img)? {
                    report.rewritten += 1;
                }
            }
        }
        Ok(report)
    }

    /// `DBT-S` / `DBT-W`: one database transaction over the whole batch;
    /// any conflict aborts and restarts everything, including image
    /// re-processing. `validate` adds DBT-W's in-transaction version check
    /// with a user-initiated abort.
    fn shrink_dbt(
        &self,
        old_img: i64,
        new_img: i64,
        iso: IsolationLevel,
        validate: bool,
    ) -> Result<ShrinkReport> {
        let schema = self.orm.db().schema("posts")?;
        let mut restarts = 0usize;
        loop {
            let attempt = self.orm.db().run(iso, |t| {
                let posts = t.scan("posts", &Predicate::eq("img_id", old_img))?;
                // Image processing happens on the contents the transaction
                // read; an abort throws this work away (§5.3).
                std::thread::sleep(self.image_process_cost);
                let mut rewritten = 0usize;
                for (post_id, row) in &posts {
                    let content = row.get_str(&schema, "content")?;
                    let ver = row.get_int(&schema, "ver")?;
                    let new_content = self.replace_refs(&content, old_img, new_img);
                    let pairs: Vec<(&str, adhoc_storage::Value)> = vec![
                        ("content", new_content.as_str().into()),
                        ("img_id", new_img.into()),
                        ("ver", (ver + 1).into()),
                    ];
                    if validate {
                        // DBT-W shares the edit-post lock to guard its
                        // version check (SS5.3: "the post lock used by
                        // edit-post is also used in DBT-W and MANUAL"), so
                        // it blocks for the duration of conflicting edits.
                        let guard = self.lock.lock(&format!("post:{post_id}")).map_err(|e| {
                            DbError::SerializationFailure {
                                txn: 0,
                                reason: e.to_string(),
                            }
                        })?;
                        let pred = Predicate::And(vec![
                            Predicate::eq("id", *post_id),
                            Predicate::eq("ver", ver),
                        ]);
                        let affected = t.update_where("posts", &pred, &pairs)?;
                        let _ = guard.unlock();
                        if affected == 0 {
                            // Validation failure: user-initiated abort of
                            // the whole batch (DBT-W).
                            return Err(DbError::SerializationFailure {
                                txn: 0,
                                reason: "stale post version in shrink batch".into(),
                            });
                        }
                    } else {
                        t.update("posts", *post_id, &pairs)?;
                    }
                    rewritten += 1;
                }
                Ok(rewritten)
            });
            match attempt {
                Ok(rewritten) => {
                    return Ok(ShrinkReport {
                        rewritten,
                        restarts,
                    })
                }
                Err(e) if e.is_retryable() => {
                    restarts += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// `MANUAL`: commit post-by-post; on a conflict, issue hand-written
    /// compensation updates restoring the already-committed posts, then
    /// restart (§3.4.1's "manually written rollback procedures").
    fn shrink_manual(&self, old_img: i64, new_img: i64) -> Result<ShrinkReport> {
        let mut restarts = 0usize;
        'outer: loop {
            let posts = self.posts_using(old_img)?;
            std::thread::sleep(self.image_process_cost);
            // (post_id, original content, version after our rewrite).
            let mut done: Vec<(i64, String, i64)> = Vec::new();
            for (post_id, content, ver) in &posts {
                // MANUAL also guards its check with the edit-post lock.
                let guard = self.lock.lock(&format!("post:{post_id}"))?;
                let ok = self.rewrite_post(*post_id, content, *ver, old_img, new_img)?;
                let _ = guard.unlock();
                if ok {
                    done.push((*post_id, content.clone(), ver + 1));
                } else {
                    // Conflict: compensate every post already rewritten.
                    for (undo_id, original, cur_ver) in done.iter().rev() {
                        self.orm.transaction(|t| {
                            t.raw().update(
                                "posts",
                                *undo_id,
                                &[
                                    ("content", original.as_str().into()),
                                    ("img_id", old_img.into()),
                                    ("ver", (cur_ver + 1).into()),
                                ],
                            )?;
                            Ok(())
                        })?;
                    }
                    restarts += 1;
                    continue 'outer;
                }
            }
            return Ok(ShrinkReport {
                rewritten: done.len(),
                restarts,
            });
        }
    }

    /// Save a composer draft with Discourse's client sequence validation
    /// (the `discourse/draft-save` case): each save carries the sequence
    /// the client last saw, and a save whose sequence is behind the stored
    /// one is rejected — the stale-tab protection. The check and the write
    /// run in one transaction with the draft row locked.
    pub fn save_draft(
        &self,
        user_id: i64,
        dkey: &str,
        sequence: i64,
        content: &str,
    ) -> Result<DraftOutcome> {
        let schema = self.orm.db().schema("drafts")?;
        let iso = match self.mode {
            // Draft-save is one of the paper's *good* ad hoc transactions:
            // the cured variant keeps the same single-transaction
            // SELECT-FOR-UPDATE shape at the weakest sufficient level.
            Mode::AdHoc | Mode::Cured | Mode::Confluent => IsolationLevel::ReadCommitted,
            Mode::DatabaseTxn => IsolationLevel::Serializable,
        };
        let ukey = format!("{user_id}:{dkey}");
        loop {
            let result = self.orm.db().run_with_retries(iso, DBT_RETRIES, |t| {
                let mine = t
                    .select_for_update("drafts", &Predicate::eq("user_id", user_id))?
                    .into_iter()
                    .find(|(_, row)| row.get_str(&schema, "dkey").map(|k| k == dkey) == Ok(true));
                match mine {
                    Some((draft_id, row)) => {
                        let current = row.get_int(&schema, "sequence")?;
                        if sequence < current {
                            return Ok(DraftOutcome::StaleSequence { current });
                        }
                        t.update(
                            "drafts",
                            draft_id,
                            &[("sequence", sequence.into()), ("content", content.into())],
                        )?;
                        Ok(DraftOutcome::Saved)
                    }
                    None => {
                        t.insert(
                            "drafts",
                            &[
                                ("user_id", user_id.into()),
                                ("dkey", dkey.into()),
                                ("ukey", ukey.as_str().into()),
                                ("sequence", sequence.into()),
                                ("content", content.into()),
                            ],
                        )?;
                        Ok(DraftOutcome::Saved)
                    }
                }
            });
            match result {
                // Lost the first-save race: the row exists now, take the
                // update path instead.
                Err(DbError::UniqueViolation { .. }) => continue,
                other => return Ok(other?),
            }
        }
    }

    /// The stored draft (sequence, content), if any.
    pub fn draft(&self, user_id: i64, dkey: &str) -> Result<Option<(i64, String)>> {
        let schema = self.orm.db().schema("drafts")?;
        let rows = self
            .orm
            .transaction(|t| Ok(t.raw().scan("drafts", &Predicate::eq("user_id", user_id))?))?;
        for (_, row) in &rows {
            if row.get_str(&schema, "dkey")? == dkey {
                return Ok(Some((
                    row.get_int(&schema, "sequence")?,
                    row.get_str(&schema, "content")?,
                )));
            }
        }
        Ok(None)
    }

    /// §4.1.2 \[62\]: bump a reviewable's version, guarding follow-up
    /// operations. `atomic = false` reproduces the MiniSql bypass.
    pub fn update_reviewable(&self, id: i64, atomic: bool) -> Result<CommitOutcome> {
        let obj = self.orm.find_required("reviewables", id)?;
        let score = obj.get_int("score")?;
        let strategy = if atomic {
            ValidationStrategy::HandCraftedAtomic(ValidationCheck::Version {
                column: "version".into(),
            })
        } else {
            ValidationStrategy::HandCraftedNonAtomic {
                check: ValidationCheck::Version {
                    column: "version".into(),
                },
                pause_between: None,
            }
        };
        validated_write(&self.orm, &obj, &[("score", (score + 1).into())], &strategy)
    }

    /// Invariant (CBC): `max_post` equals the number of posts and their
    /// sequence numbers are exactly 1..=max_post.
    pub fn topic_posts_consistent(&self, topic_id: i64) -> Result<bool> {
        let schema = self.orm.db().schema("posts")?;
        let max_post = self
            .orm
            .find_required("topics", topic_id)?
            .get_int("max_post")?;
        let rows = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("posts", &Predicate::eq("topic_id", topic_id))?)
        })?;
        let mut seqs: Vec<i64> = Vec::with_capacity(rows.len());
        for (_, r) in &rows {
            seqs.push(r.get_int(&schema, "seq")?);
        }
        seqs.sort_unstable();
        let expect: Vec<i64> = (1..=max_post).collect();
        Ok(seqs == expect)
    }

    /// Invariant (AA): the topic's `total_likes` equals the sum of its
    /// posts' like counts.
    pub fn likes_consistent(&self, topic_id: i64) -> Result<bool> {
        let schema = self.orm.db().schema("posts")?;
        let total = self
            .orm
            .find_required("topics", topic_id)?
            .get_int("total_likes")?;
        let rows = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("posts", &Predicate::eq("topic_id", topic_id))?)
        })?;
        let mut sum = 0;
        for (_, r) in &rows {
            sum += r.get_int(&schema, "like_cnt")?;
        }
        Ok(total == sum)
    }

    /// Invariant (shrink-image): no post references `img`.
    pub fn no_posts_reference(&self, img: i64) -> Result<bool> {
        Ok(self.posts_using(img)?.is_empty())
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// Discourse's boot-time recovery pass: the denormalized Topics counters
/// (`total_likes`, `max_post`) are recomputed from the Posts rows they
/// summarize. A crash between a post/like write and its counter bump — or
/// between the bump and the row, in the counter-first ad hoc flow — leaves
/// the aggregate lying about its rows; this is the §3.4.2 "check and fix
/// inconsistent references" job run at boot instead of every twelve hours.
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("discourse")
        .rule(topic_counter_rule(
            "discourse:topics.total_likes",
            "total_likes",
            |schema, posts| {
                posts
                    .iter()
                    .map(|r| r.get_int(schema, "like_cnt").unwrap_or(0))
                    .sum()
            },
        ))
        .rule(topic_counter_rule(
            "discourse:topics.max_post",
            "max_post",
            |schema, posts| {
                posts
                    .iter()
                    .map(|r| r.get_int(schema, "seq").unwrap_or(0))
                    .max()
                    .unwrap_or(0)
            },
        ))
}

/// One recomputable Topics counter: flag rows where the stored value
/// disagrees with `expected` over the topic's posts, and rewrite it.
fn topic_counter_rule(
    name: &'static str,
    column: &'static str,
    expected: fn(&Schema, &[Row]) -> i64,
) -> CheckRule {
    let compute = move |db: &Database, topic_id: i64| -> Option<i64> {
        let schema = db.schema("posts").ok()?;
        let rows: Vec<Row> = db
            .dump_table("posts")
            .ok()?
            .into_iter()
            .filter(|(_, r)| r.get_int(&schema, "topic_id").ok() == Some(topic_id))
            .map(|(_, r)| r)
            .collect();
        Some(expected(&schema, &rows))
    };
    CheckRule::new(name, move |db| {
        let (Ok(topics), Ok(schema)) = (db.dump_table("topics"), db.schema("topics")) else {
            return Vec::new();
        };
        topics
            .iter()
            .filter_map(|(id, row)| {
                let actual = row.get_int(&schema, column).ok()?;
                let want = compute(db, *id)?;
                (actual != want).then(|| Violation {
                    rule: name.to_string(),
                    table: "topics".to_string(),
                    row_id: *id,
                    message: format!("{column} = {actual}, posts say {want}"),
                })
            })
            .collect()
    })
    .with_fix(move |db, v| {
        let Some(want) = compute(db, v.row_id) else {
            return false;
        };
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update("topics", v.row_id, &[(column, want.into())])
        })
        .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::MemLock;
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode) -> Discourse {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let app = Discourse::new(orm, Arc::new(MemLock::new()), mode);
        app.seed_topic(1).unwrap();
        app
    }

    #[test]
    fn stale_draft_sequences_are_rejected() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode);
            assert_eq!(
                app.save_draft(7, "topic:1", 0, "v0").unwrap(),
                DraftOutcome::Saved
            );
            assert_eq!(
                app.save_draft(7, "topic:1", 2, "v2").unwrap(),
                DraftOutcome::Saved
            );
            // A stale tab (still at sequence 1) must not clobber v2.
            assert_eq!(
                app.save_draft(7, "topic:1", 1, "stale").unwrap(),
                DraftOutcome::StaleSequence { current: 2 },
                "{mode:?}"
            );
            assert_eq!(
                app.draft(7, "topic:1").unwrap(),
                Some((2, "v2".into())),
                "{mode:?}"
            );
            // Separate keys and users are independent.
            assert_eq!(
                app.save_draft(7, "pm:9", 0, "other").unwrap(),
                DraftOutcome::Saved
            );
            assert_eq!(
                app.save_draft(8, "topic:1", 0, "mine").unwrap(),
                DraftOutcome::Saved
            );
        }
    }

    #[test]
    fn concurrent_first_saves_never_duplicate_the_draft_row() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            // No seed: every thread races the insert path; the unique
            // index arbitrates and losers fall back to the update path.
            std::thread::scope(|s| {
                for t in 0..4i64 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        app.save_draft(7, "topic:1", t, &format!("w{t}")).unwrap();
                    });
                }
            });
            let rows = app
                .orm()
                .transaction(|t| Ok(t.raw().scan("drafts", &Predicate::eq("user_id", 7))?))
                .unwrap();
            assert_eq!(rows.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn concurrent_draft_saves_keep_the_highest_sequence() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            app.save_draft(7, "topic:1", 0, "seed").unwrap();
            std::thread::scope(|s| {
                for t in 0..4i64 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for seq in 1..=10i64 {
                            let _ = app
                                .save_draft(7, "topic:1", seq, &format!("w{t}s{seq}"))
                                .unwrap();
                        }
                    });
                }
            });
            let (seq, content) = app.draft(7, "topic:1").unwrap().unwrap();
            assert_eq!(seq, 10, "{mode:?}");
            assert!(content.ends_with("s10"), "{mode:?}: {content}");
            // Exactly one draft row exists for the key.
            let schema = app.orm().db().schema("drafts").unwrap();
            let rows = app
                .orm()
                .transaction(|t| Ok(t.raw().scan("drafts", &Predicate::eq("user_id", 7))?))
                .unwrap();
            let same_key = rows
                .iter()
                .filter(|(_, r)| r.get_str(&schema, "dkey").unwrap() == "topic:1")
                .count();
            assert_eq!(same_key, 1, "{mode:?}");
        }
    }

    #[test]
    fn create_post_allocates_sequences() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = fixture(mode);
            app.create_post(1, "first").unwrap();
            app.create_post(1, "second").unwrap();
            assert!(app.topic_posts_consistent(1).unwrap(), "{mode:?}");
        }
    }

    #[test]
    fn concurrent_create_post_is_consistent_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            std::thread::scope(|s| {
                for _ in 0..6 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        for _ in 0..10 {
                            app.create_post(1, "post").unwrap();
                        }
                    });
                }
            });
            assert!(app.topic_posts_consistent(1).unwrap(), "{mode:?}");
        }
    }

    #[test]
    fn create_post_and_toggle_answer_commute_in_adhoc_mode() {
        let app = Arc::new(fixture(Mode::AdHoc));
        let p = app.seed_post(1, "seed", 0).unwrap();
        std::thread::scope(|s| {
            let a = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..20 {
                    a.create_post(1, "x").unwrap();
                }
            });
            let b = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..20 {
                    b.toggle_answer(1, p).unwrap();
                }
            });
        });
        assert!(app.topic_posts_consistent(1).unwrap());
        assert_eq!(
            app.orm
                .find_required("topics", 1)
                .unwrap()
                .get_int("answer")
                .unwrap(),
            p
        );
    }

    #[test]
    fn likes_are_conserved_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            let p1 = app.seed_post(1, "a", 0).unwrap();
            let p2 = app.seed_post(1, "b", 0).unwrap();
            std::thread::scope(|s| {
                for i in 0..6 {
                    let app = Arc::clone(&app);
                    let post = if i % 2 == 0 { p1 } else { p2 };
                    s.spawn(move || {
                        for _ in 0..10 {
                            app.like_post(post).unwrap();
                        }
                    });
                }
            });
            assert!(app.likes_consistent(1).unwrap(), "{mode:?}");
            assert_eq!(
                app.orm
                    .find_required("topics", 1)
                    .unwrap()
                    .get_int("total_likes")
                    .unwrap(),
                60,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn confluent_likes_converge_and_fsck_stays_clean() {
        let app = Arc::new(fixture(Mode::Confluent));
        let p1 = app.seed_post(1, "a", 0).unwrap();
        let p2 = app.seed_post(1, "b", 0).unwrap();
        std::thread::scope(|s| {
            for i in 0..6 {
                let app = Arc::clone(&app);
                let post = if i % 2 == 0 { p1 } else { p2 };
                s.spawn(move || {
                    for _ in 0..10 {
                        app.like_post(post).unwrap();
                    }
                });
            }
        });
        assert!(app.likes_consistent(1).unwrap());
        assert_eq!(
            app.orm
                .find_required("topics", 1)
                .unwrap()
                .get_int("total_likes")
                .unwrap(),
            60
        );
        // Deltas materialize into ordinary row images at commit, so the
        // counter-recompute fsck rules see nothing special to repair.
        let report = app.recover_on_boot();
        assert!(report.is_clean() && report.fixed == 0, "{report:?}");
    }

    #[test]
    fn edit_post_flow_detects_conflicts() {
        let app = fixture(Mode::AdHoc);
        let p = app.seed_post(1, "original", 0).unwrap();
        let alice = app.begin_edit(p).unwrap();
        let bob = app.begin_edit(p).unwrap();
        assert_eq!(
            app.commit_edit(&alice, "alice's edit").unwrap(),
            EditOutcome::Success
        );
        assert_eq!(
            app.commit_edit(&bob, "bob's edit").unwrap(),
            EditOutcome::Conflict,
            "bob must not overwrite alice"
        );
        let post = app.orm.find_required("posts", p).unwrap();
        assert_eq!(post.get_str("content").unwrap(), "alice's edit");
        // View counter advanced twice and was not rolled back by the
        // conflict (§3.1.2: "the view count increment … cannot be rolled
        // back").
        assert_eq!(post.get_int("view_cnt").unwrap(), 2);
    }

    #[test]
    fn content_validation_ignores_view_count_bumps() {
        let app = fixture(Mode::AdHoc);
        let p = app.seed_post(1, "original", 0).unwrap();
        let token = app.begin_edit(p).unwrap();
        // A flood of concurrent views (view_cnt moves, content does not).
        for _ in 0..5 {
            app.begin_edit(p).unwrap();
        }
        assert_eq!(
            app.commit_edit_by_content(&token, "edited").unwrap(),
            EditOutcome::Success,
            "§3.3.2: view_cnt changes must not conflict with content edits"
        );
    }

    #[test]
    fn lock_after_read_loses_concurrent_edits() {
        // §4.1.1 [76]: with the buggy order, two concurrent commits based
        // on the same token can both "succeed".
        let app = Arc::new(fixture(Mode::AdHoc).lock_after_read());
        let mut double_success = false;
        for round in 0..200 {
            let p = app.seed_post(1, &format!("orig-{round}"), 0).unwrap();
            let t1 = app.begin_edit(p).unwrap();
            let t2 = EditToken {
                post_id: t1.post_id,
                content: t1.content.clone(),
                ver: t1.ver,
            };
            let (r1, r2) = std::thread::scope(|s| {
                let a = Arc::clone(&app);
                let h1 = s.spawn(move || a.commit_edit(&t1, "edit-one").unwrap());
                let b = Arc::clone(&app);
                let h2 = s.spawn(move || b.commit_edit(&t2, "edit-two").unwrap());
                (h1.join().unwrap(), h2.join().unwrap())
            });
            if r1 == EditOutcome::Success && r2 == EditOutcome::Success {
                double_success = true;
                break;
            }
        }
        assert!(
            double_success,
            "the lock-after-read bug must allow double success"
        );
    }

    #[test]
    fn correct_edit_order_never_double_succeeds() {
        let app = Arc::new(fixture(Mode::AdHoc));
        for round in 0..50 {
            let p = app.seed_post(1, &format!("orig-{round}"), 0).unwrap();
            let t1 = app.begin_edit(p).unwrap();
            let t2 = EditToken {
                post_id: t1.post_id,
                content: t1.content.clone(),
                ver: t1.ver,
            };
            let (r1, r2) = std::thread::scope(|s| {
                let a = Arc::clone(&app);
                let h1 = s.spawn(move || a.commit_edit(&t1, "edit-one").unwrap());
                let b = Arc::clone(&app);
                let h2 = s.spawn(move || b.commit_edit(&t2, "edit-two").unwrap());
                (h1.join().unwrap(), h2.join().unwrap())
            });
            assert!(
                !(r1 == EditOutcome::Success && r2 == EditOutcome::Success),
                "correct ordering must serialize the two edits"
            );
        }
    }

    #[test]
    fn shrink_image_strategies_all_converge_without_conflicts() {
        for strategy in [
            FailureHandling::Repair,
            FailureHandling::ErrorReturn, // DBT-S
            FailureHandling::DbtRollback, // DBT-W
            FailureHandling::ManualRollback,
        ] {
            let app = fixture(Mode::AdHoc);
            app.seed_image(1, 1000).unwrap();
            app.seed_image(2, 10).unwrap();
            for i in 0..8 {
                app.seed_post(1, &format!("post {i} img:1"), 1).unwrap();
            }
            let report = app.shrink_image(1, 2, strategy).unwrap();
            assert_eq!(report.rewritten, 8, "{strategy:?}");
            assert_eq!(report.restarts, 0, "{strategy:?}");
            assert!(app.no_posts_reference(1).unwrap(), "{strategy:?}");
        }
    }

    #[test]
    fn shrink_repair_survives_concurrent_edits() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_image(1, 1000).unwrap();
        app.seed_image(2, 10).unwrap();
        let posts: Vec<i64> = (0..8)
            .map(|i| app.seed_post(1, &format!("post {i} img:1"), 1).unwrap())
            .collect();
        std::thread::scope(|s| {
            let a = Arc::clone(&app);
            s.spawn(move || {
                a.shrink_image(1, 2, FailureHandling::Repair).unwrap();
            });
            let b = Arc::clone(&app);
            let target = posts[3];
            s.spawn(move || {
                for i in 0..10 {
                    let token = b.begin_edit(target).unwrap();
                    let _ = b.commit_edit(&token, &format!("edited {i} img:1")).unwrap();
                }
            });
        });
        // A final repair pass catches edits that re-introduced img:1 after
        // the shrinker finished (production runs this periodically).
        app.shrink_image(1, 2, FailureHandling::Repair).unwrap();
        assert!(app.no_posts_reference(1).unwrap());
    }

    #[test]
    fn incomplete_repair_leaves_dangling_references() {
        // §4.3 [64]: a post created *during* the shrink that references the
        // old image is missed by the buggy repair.
        let app = fixture(Mode::AdHoc).incomplete_repair();
        app.seed_image(1, 1000).unwrap();
        app.seed_image(2, 10).unwrap();
        app.seed_post(1, "old img:1", 1).unwrap();
        // Simulate the mid-run arrival by inserting between query and sweep:
        // with the buggy variant there is no sweep, so a post added now
        // (after posts_using ran inside shrink) stays dangling. We model it
        // by adding the post, running the shrink, then adding another and
        // NOT being able to catch it without the sweep.
        app.shrink_image(1, 2, FailureHandling::Repair).unwrap();
        app.seed_post(1, "late img:1", 1).unwrap();
        // The buggy shrink has already finished; the late post dangles.
        assert!(!app.no_posts_reference(1).unwrap());
        // The fixed variant's sweep (a fresh run) picks it up.
        let fixed = fixture(Mode::AdHoc);
        let _ = fixed; // (fresh app only to satisfy the naming)
        app.shrink_image(1, 2, FailureHandling::Repair).unwrap();
        // Note: the buggy app still skips the sweep but the initial query
        // of the *new* run sees the late post.
        assert!(app.no_posts_reference(1).unwrap());
    }

    #[test]
    fn reviewable_atomic_validation_works() {
        let app = fixture(Mode::AdHoc);
        app.orm
            .create(
                "reviewables",
                &[("id", 1.into()), ("version", 0.into()), ("score", 0.into())],
            )
            .unwrap();
        assert_eq!(
            app.update_reviewable(1, true).unwrap(),
            CommitOutcome::Committed
        );
        let r = app.orm.find_required("reviewables", 1).unwrap();
        assert_eq!(r.get_int("version").unwrap(), 1);
        assert_eq!(r.get_int("score").unwrap(), 1);
        // The non-atomic variant also "works" sequentially — which is what
        // kept the Discourse bug latent.
        assert_eq!(
            app.update_reviewable(1, false).unwrap(),
            CommitOutcome::Committed
        );
    }
    #[test]
    fn topic_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (2..=7)
            .map(|id| {
                app.seed_topic(id).unwrap();
                crate::observed_footprint(&app.orm, |t| {
                    t.raw().update("topics", id, &[("total_likes", 0.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
