//! Entity definitions and ORM-mapped objects.

use crate::error::OrmError;
use crate::Result;
use adhoc_storage::{Row, Schema, Value};
use std::collections::{BTreeSet, HashMap};

/// A many-to-many touch cascade: when this entity is saved, follow
/// `join_table` from `fk_column`'s value to the parents and touch their
/// `updated_at` — the ProductCategories hop of the §3.1.1 Spree listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TouchVia {
    /// Column on the saved entity whose value seeds the join (product_id).
    pub fk_column: String,
    /// Join table (ProductCategories).
    pub join_table: String,
    /// Join-table column matched against `fk_column`'s value (product_id).
    pub join_left: String,
    /// Join-table column holding parent ids (category_id).
    pub join_right: String,
    /// Parent table whose `updated_at` is touched (Categories).
    pub parent_table: String,
}

/// A `validates` rule, checked against database state at save time —
/// feral concurrency control in Bailis et al.'s terminology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validation {
    /// `validates :column, uniqueness: true` — SELECT-before-write; racy
    /// without a backing unique index.
    Uniqueness {
        /// The column that must be unique.
        column: String,
    },
    /// `validates :column, presence: true` — non-NULL, non-empty string.
    Presence {
        /// The column that must be present.
        column: String,
    },
    /// Numericality: `>= 0` (stock quantities, balances).
    NonNegative {
        /// The column that must be non-negative.
        column: String,
    },
}

/// Declarative entity metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityDef {
    /// Entity (and table) name.
    pub name: String,
    /// Direct belongs_to touch cascades: (fk column, parent table).
    pub touches: Vec<(String, String)>,
    /// Many-to-many touch cascades.
    pub touches_via: Vec<TouchVia>,
    /// Validation rules run on create/save.
    pub validations: Vec<Validation>,
    /// Whether a `lock_version` column drives optimistic locking.
    pub optimistic_lock: bool,
    /// Whether the table has an `updated_at` column maintained on save.
    pub timestamps: bool,
}

impl EntityDef {
    /// A bare entity with no cascades, validations or locking.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            touches: Vec::new(),
            touches_via: Vec::new(),
            validations: Vec::new(),
            optimistic_lock: false,
            timestamps: false,
        }
    }

    /// `belongs_to :parent, touch: true`.
    pub fn touch(mut self, fk_column: &str, parent_table: &str) -> Self {
        self.touches
            .push((fk_column.to_string(), parent_table.to_string()));
        self
    }

    /// Touch through a many-to-many join.
    pub fn touch_via(mut self, via: TouchVia) -> Self {
        self.touches_via.push(via);
        self
    }

    /// Add a `validates` rule.
    pub fn validate(mut self, v: Validation) -> Self {
        self.validations.push(v);
        self
    }

    /// Enable `lock_version` optimistic locking (requires the column).
    pub fn with_lock_version(mut self) -> Self {
        self.optimistic_lock = true;
        self
    }

    /// Maintain `updated_at` on save.
    pub fn with_timestamps(mut self) -> Self {
        self.timestamps = true;
        self
    }
}

/// The registry of entity definitions, shared by every ORM handle.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entities: HashMap<String, EntityDef>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) an entity definition.
    pub fn register(mut self, def: EntityDef) -> Self {
        self.entities.insert(def.name.clone(), def);
        self
    }

    /// Look an entity up by name.
    pub fn get(&self, name: &str) -> Result<&EntityDef> {
        self.entities
            .get(name)
            .ok_or_else(|| OrmError::UnknownEntity {
                entity: name.to_string(),
            })
    }

    /// Registered entity names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entities.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

/// An ORM-mapped object: a row snapshot plus dirty-field tracking.
///
/// Mirrors the paper's observation (§2.1) that fetched relational data is
/// presented as in-memory runtime objects — including the pitfall that the
/// snapshot can go stale while business logic runs against it.
#[derive(Debug, Clone)]
pub struct Obj {
    /// Entity (table) name this object belongs to.
    pub entity: String,
    /// Primary key.
    pub id: i64,
    schema: Schema,
    row: Row,
    dirty: BTreeSet<String>,
    /// `lock_version` value at load time (for optimistic locking).
    pub loaded_version: Option<i64>,
}

impl Obj {
    pub(crate) fn from_row(entity: &str, schema: Schema, id: i64, row: Row) -> Self {
        let loaded_version = schema
            .column_index("lock_version")
            .ok()
            .map(|idx| row.at(idx).as_int());
        Self {
            entity: entity.to_string(),
            id,
            schema,
            row,
            dirty: BTreeSet::new(),
            loaded_version,
        }
    }

    /// The entity's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Raw row snapshot.
    pub fn row(&self) -> &Row {
        &self.row
    }

    /// Value of a named field.
    pub fn get(&self, column: &str) -> Result<&Value> {
        Ok(self.row.get(&self.schema, column)?)
    }

    /// Integer shorthand for [`Obj::get`].
    pub fn get_int(&self, column: &str) -> Result<i64> {
        Ok(self.row.get_int(&self.schema, column)?)
    }

    /// String shorthand for [`Obj::get`].
    pub fn get_str(&self, column: &str) -> Result<String> {
        Ok(self.row.get_str(&self.schema, column)?)
    }

    /// Boolean shorthand for [`Obj::get`].
    pub fn get_bool(&self, column: &str) -> Result<bool> {
        Ok(self.row.get_bool(&self.schema, column)?)
    }

    /// Assign a field, marking it dirty.
    pub fn set(&mut self, column: &str, value: impl Into<Value>) -> Result<()> {
        self.row = self.row.with(&self.schema, column, value.into())?;
        self.dirty.insert(column.to_string());
        Ok(())
    }

    /// Columns assigned since load.
    pub fn dirty_columns(&self) -> impl Iterator<Item = &str> {
        self.dirty.iter().map(|s| s.as_str())
    }

    /// True when any field has been assigned since load.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    pub(crate) fn bump_loaded_version(&mut self) {
        if let Some(v) = self.loaded_version.as_mut() {
            *v += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_storage::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(
            "posts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("content", ColumnType::Str),
                Column::new("lock_version", ColumnType::Int),
            ],
            "id",
        )
        .unwrap()
    }

    fn obj() -> Obj {
        let s = schema();
        let row = adhoc_storage::schema::row_from_pairs(
            &s,
            &[
                ("id", 1.into()),
                ("content", "hello".into()),
                ("lock_version", 3.into()),
            ],
        )
        .unwrap();
        Obj::from_row("posts", s, 1, row)
    }

    #[test]
    fn registry_lookup() {
        let reg = Registry::new()
            .register(EntityDef::new("posts"))
            .register(EntityDef::new("topics"));
        assert_eq!(reg.names(), vec!["posts", "topics"]);
        assert!(reg.get("posts").is_ok());
        assert!(matches!(
            reg.get("ghosts"),
            Err(OrmError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn entity_def_builder() {
        let def = EntityDef::new("items")
            .touch("cart_id", "carts")
            .validate(Validation::NonNegative {
                column: "qty".into(),
            })
            .with_lock_version()
            .with_timestamps();
        assert_eq!(def.touches.len(), 1);
        assert!(def.optimistic_lock);
        assert!(def.timestamps);
    }

    #[test]
    fn obj_tracks_dirty_fields_and_version() {
        let mut o = obj();
        assert_eq!(o.loaded_version, Some(3));
        assert!(!o.is_dirty());
        o.set("content", "edited").unwrap();
        assert!(o.is_dirty());
        assert_eq!(o.dirty_columns().collect::<Vec<_>>(), vec!["content"]);
        assert_eq!(o.get_str("content").unwrap(), "edited");
        o.clear_dirty();
        assert!(!o.is_dirty());
        o.bump_loaded_version();
        assert_eq!(o.loaded_version, Some(4));
    }

    #[test]
    fn obj_without_lock_version_has_none() {
        let s = Schema::new(
            "plain",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            "id",
        )
        .unwrap();
        let row = adhoc_storage::schema::row_from_pairs(&s, &[("id", 1.into()), ("v", 2.into())])
            .unwrap();
        let o = Obj::from_row("plain", s, 1, row);
        assert_eq!(o.loaded_version, None);
    }

    #[test]
    fn set_unknown_column_errors() {
        let mut o = obj();
        assert!(o.set("ghost", 1).is_err());
    }
}
