//! Resilience primitives: absolute deadlines, retry budgets, and a
//! deterministic circuit breaker.
//!
//! §3.4 of the paper shows what failure handling looks like when every
//! call site improvises it: unbounded retries, no deadline, and no notion
//! of shared blame when a backend degrades. Under a correlated fault storm
//! those habits compose into *metastable* collapse — each request retries
//! independently, the retry traffic keeps the backend saturated, and the
//! system stays down after the original fault has healed. The three
//! primitives here are the standard antidotes, built deterministically on
//! the virtual clock so every test and every schedule witness replays
//! bit-for-bit:
//!
//! * [`Deadline`] — an *absolute* point on the clock's timeline, passed
//!   down through KV round trips, storage operations and lock waits, so a
//!   request's total latency is bounded once, at the edge, instead of by
//!   an uncoordinated product of per-layer timeouts.
//! * [`RetryBudget`] — a token bucket shared by all retry loops that hit
//!   the same backend: retries spend, successes earn. A fault storm can
//!   then cost at most the bucket, never an amplifying retry storm.
//! * [`CircuitBreaker`] — the closed → open → half-open machine that stops
//!   sending work to a backend that keeps failing, probes it once per
//!   cooldown, and closes again on the first success.

use crate::clock::Clock;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// An absolute deadline on a [`Clock`]'s timeline.
///
/// Copyable and clock-agnostic: the deadline stores only the absolute
/// instant (as the clock's `Duration`-since-start reading), so one value
/// propagates unchanged through every layer a request touches. Each layer
/// evaluates it against *its* clock — which is the same shared clock in
/// any one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at: Duration,
}

impl Deadline {
    /// A deadline at the absolute clock reading `at`.
    pub fn at(at: Duration) -> Self {
        Self { at }
    }

    /// A deadline `timeout` from the clock's current reading.
    pub fn after(clock: &dyn Clock, timeout: Duration) -> Self {
        Self {
            at: clock.now().saturating_add(timeout),
        }
    }

    /// The absolute instant of the deadline.
    pub fn instant(self) -> Duration {
        self.at
    }

    /// True once the clock has reached (or passed) the deadline.
    pub fn expired(self, clock: &dyn Clock) -> bool {
        clock.now() >= self.at
    }

    /// Time left before the deadline (zero when expired).
    pub fn remaining(self, clock: &dyn Clock) -> Duration {
        self.at.saturating_sub(clock.now())
    }

    /// The earlier of two deadlines — layering a stricter local bound
    /// under a caller's deadline.
    pub fn min(self, other: Self) -> Self {
        Self {
            at: self.at.min(other.at),
        }
    }
}

// ---------------------------------------------------------------------------
// RetryBudget
// ---------------------------------------------------------------------------

/// A token-bucket retry budget: first attempts are always free, *retries*
/// withdraw a token, and successes deposit a configurable fraction of one.
///
/// Shared (via `Arc`) by every retry loop that targets the same backend,
/// the bucket bounds the fleet-wide retry amplification factor: with a
/// deposit rate of `ppk` parts-per-1024 per success, steady-state retry
/// traffic can be at most `ppk/1024` of the success traffic, and a burst
/// can draw at most the bucket capacity. That is what turns a fault storm
/// into a bounded error spike instead of a self-sustaining retry storm.
///
/// Deterministic: pure integer arithmetic, no clock, no randomness. Token
/// accounting is in millitokens so fractional deposit rates stay exact.
#[derive(Debug)]
pub struct RetryBudget {
    /// Bucket capacity, in millitokens.
    capacity: u64,
    /// Current balance, in millitokens.
    balance: AtomicU64,
    /// Deposit per recorded success, in millitokens.
    deposit: u64,
    /// Retries granted.
    granted: AtomicU64,
    /// Retries denied (budget empty).
    denied: AtomicU64,
}

/// One retry withdraws this many millitokens.
const RETRY_COST: u64 = 1000;

impl RetryBudget {
    /// A budget holding `capacity` retry tokens, starting full, earning
    /// 10% of a token per success (the classic 10% retry ratio).
    pub fn new(capacity: u32) -> Self {
        Self::with_deposit_ppk(capacity, 102)
    }

    /// A budget earning `ppk` parts-per-1024 of a token per success.
    pub fn with_deposit_ppk(capacity: u32, ppk: u32) -> Self {
        let capacity = u64::from(capacity) * RETRY_COST;
        Self {
            capacity,
            balance: AtomicU64::new(capacity),
            deposit: u64::from(ppk) * RETRY_COST / 1024,
            granted: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Try to pay for one retry. `false` means the budget is exhausted and
    /// the caller must give up instead of retrying.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.balance.load(Ordering::SeqCst);
        loop {
            if cur < RETRY_COST {
                self.denied.fetch_add(1, Ordering::SeqCst);
                return false;
            }
            match self.balance.compare_exchange(
                cur,
                cur - RETRY_COST,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.granted.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record one success, earning the deposit fraction back (saturating
    /// at capacity).
    pub fn deposit(&self) {
        let mut cur = self.balance.load(Ordering::SeqCst);
        loop {
            let next = (cur + self.deposit).min(self.capacity);
            if next == cur {
                return;
            }
            match self
                .balance
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whole retry tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.balance.load(Ordering::SeqCst) / RETRY_COST
    }

    /// Retries granted so far.
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::SeqCst)
    }

    /// Retries denied so far (each denial is a retry loop giving up).
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

/// Where the breaker's state machine currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call passes through.
    Closed,
    /// Tripped: every call is rejected without touching the backend.
    Open,
    /// Cooldown elapsed: exactly one probe call is allowed through; its
    /// outcome decides between `Closed` and another `Open` round.
    HalfOpen,
}

/// A deterministic closed / open / half-open circuit breaker.
///
/// `failure_threshold` *consecutive* failures trip the breaker open; it
/// stays open for `cooldown` on the supplied clock reading, then admits a
/// single half-open probe. A probe success closes the breaker (and resets
/// the failure count); a probe failure re-opens it for another cooldown.
///
/// All transitions are pure functions of the recorded outcomes and the
/// clock readings passed in, so a breaker-wrapped client remains fully
/// deterministic under the virtual clock and the schedule explorer.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    core: Mutex<BreakerCore>,
    /// Calls rejected while open (fast-failed, never sent).
    rejected: AtomicU64,
    /// Times the breaker tripped from closed or half-open to open.
    opened: AtomicU64,
}

#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock reading at which the breaker last opened.
    opened_at: Duration,
    /// A half-open probe has been admitted and not yet resolved.
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `failure_threshold` consecutive
    /// failures and cooling down for `cooldown` before each probe.
    pub fn new(failure_threshold: u32, cooldown: Duration) -> Self {
        Self {
            threshold: failure_threshold.max(1),
            cooldown,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                probe_in_flight: false,
            }),
            rejected: AtomicU64::new(0),
            opened: AtomicU64::new(0),
        }
    }

    /// May a call proceed at clock reading `now`? `false` is a fast-fail:
    /// the caller must error without touching the backend. Admitting the
    /// half-open probe is part of this call, so concurrent callers cannot
    /// both be "the" probe.
    pub fn allow(&self, now: Duration) -> bool {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= core.opened_at.saturating_add(self.cooldown) {
                    core.state = BreakerState::HalfOpen;
                    core.probe_in_flight = true;
                    true
                } else {
                    self.rejected.fetch_add(1, Ordering::SeqCst);
                    false
                }
            }
            BreakerState::HalfOpen => {
                if core.probe_in_flight {
                    self.rejected.fetch_add(1, Ordering::SeqCst);
                    false
                } else {
                    core.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record a successful call: closes a half-open breaker, clears the
    /// consecutive-failure count.
    pub fn record_success(&self) {
        let mut core = self.core.lock();
        core.consecutive_failures = 0;
        core.probe_in_flight = false;
        core.state = BreakerState::Closed;
    }

    /// Record a failed call at clock reading `now`: re-opens a half-open
    /// breaker immediately, trips a closed one at the threshold.
    pub fn record_failure(&self, now: Duration) {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::HalfOpen => {
                core.probe_in_flight = false;
                core.state = BreakerState::Open;
                core.opened_at = now;
                self.opened.fetch_add(1, Ordering::SeqCst);
            }
            BreakerState::Closed => {
                core.consecutive_failures += 1;
                if core.consecutive_failures >= self.threshold {
                    core.state = BreakerState::Open;
                    core.opened_at = now;
                    self.opened.fetch_add(1, Ordering::SeqCst);
                }
            }
            // Failures recorded while open (in-flight calls that started
            // before the trip) don't restart the cooldown.
            BreakerState::Open => {}
        }
    }

    /// The state the breaker would act from at clock reading `now`
    /// (reports `HalfOpen` for an open breaker whose cooldown elapsed,
    /// without admitting a probe).
    pub fn state(&self, now: Duration) -> BreakerState {
        let core = self.core.lock();
        match core.state {
            BreakerState::Open if now >= core.opened_at.saturating_add(self.cooldown) => {
                BreakerState::HalfOpen
            }
            s => s,
        }
    }

    /// Calls fast-failed while the breaker was open.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }

    /// Times the breaker has tripped open.
    pub fn times_opened(&self) -> u64 {
        self.opened.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::Arc;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn deadline_is_absolute_on_the_virtual_clock() {
        let clock = VirtualClock::new();
        let d = Deadline::after(&clock, MS(100));
        assert!(!d.expired(&clock));
        assert_eq!(d.remaining(&clock), MS(100));
        clock.advance(MS(60));
        assert_eq!(d.remaining(&clock), MS(40));
        clock.advance(MS(40));
        assert!(d.expired(&clock));
        assert_eq!(d.remaining(&clock), Duration::ZERO);
        // Absolute: re-deriving from the instant gives the same deadline.
        assert_eq!(Deadline::at(d.instant()), d);
        assert_eq!(d.min(Deadline::at(MS(50))), Deadline::at(MS(50)));
    }

    #[test]
    fn budget_bounds_burst_and_earns_back() {
        let b = RetryBudget::new(3);
        assert_eq!(b.tokens(), 3);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "capacity is a hard burst bound");
        assert_eq!(b.granted(), 3);
        assert_eq!(b.denied(), 1);
        // Successes at the default ~10% deposit rate (99 millitokens
        // after integer truncation) earn one retry back after 11.
        for _ in 0..11 {
            b.deposit();
        }
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
    }

    #[test]
    fn budget_deposit_saturates_at_capacity() {
        let b = RetryBudget::with_deposit_ppk(2, 1024);
        for _ in 0..100 {
            b.deposit();
        }
        assert_eq!(b.tokens(), 2);
    }

    #[test]
    fn breaker_trips_cools_probes_and_recovers() {
        let clock = Arc::new(VirtualClock::new());
        let br = CircuitBreaker::new(3, MS(100));
        let now = || clock.now();
        // Two failures: still closed.
        br.record_failure(now());
        br.record_failure(now());
        assert_eq!(br.state(now()), BreakerState::Closed);
        assert!(br.allow(now()));
        // Third consecutive failure trips it.
        br.record_failure(now());
        assert_eq!(br.state(now()), BreakerState::Open);
        assert!(!br.allow(now()), "open fast-fails");
        assert_eq!(br.rejected(), 1);
        // Cooldown elapses: exactly one probe goes through.
        clock.advance(MS(100));
        assert_eq!(br.state(now()), BreakerState::HalfOpen);
        assert!(br.allow(now()), "the probe");
        assert!(!br.allow(now()), "only one probe at a time");
        // Probe fails: open again, cooldown restarts from now.
        br.record_failure(now());
        assert!(!br.allow(now()));
        clock.advance(MS(100));
        assert!(br.allow(now()), "second probe");
        br.record_success();
        assert_eq!(br.state(now()), BreakerState::Closed);
        assert!(br.allow(now()));
        assert_eq!(br.times_opened(), 2);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let br = CircuitBreaker::new(2, MS(50));
        br.record_failure(MS(0));
        br.record_success();
        br.record_failure(MS(1));
        assert_eq!(br.state(MS(1)), BreakerState::Closed, "streak was broken");
        br.record_failure(MS(2));
        assert_eq!(br.state(MS(2)), BreakerState::Open);
    }
}
