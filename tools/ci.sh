#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from the repository root: ./tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Bounded interleaving-explorer smoke gate: fixed seed, fixed 128-schedule
# budget per scenario (see tests/schedule_explorer.rs). Deterministic, so
# the timeout guards only against accidental budget inflation.
echo "==> explorer smoke gate (fixed seed, bounded budget, <60s)"
timeout 60 cargo test -q --release --test schedule_explorer --test schedule_corpus

# Crash-recovery smoke gate: bounded oracle sweep over two apps (one that
# needs boot-fsck repair, one clean by single-txn discipline) — every
# commit-adjacent crash point under all four crash kinds, restart, WAL
# replay, invariants. Deterministic; any point replays in isolation via
# CRASH_ORACLE=app/kind/k.
echo "==> crash-recovery smoke gate (2-app bounded sweep, <120s)"
timeout 120 cargo test -q --release --test crash_recovery_oracle -- \
  spree_crash_sweep_surfaces_and_repairs_stuck_payments \
  scm_crash_sweep_conserves_money

# Cured-apps oracle gate: all eight `Mode::Cured` variants against the
# serializability workloads (tests/cured_oracle.rs: exact counters,
# conservation, continuation flows) AND the full crash sweep — the §7
# layer must leave ZERO findings and nothing for boot-fsck to repair.
# CRASH_ORACLE=spree_cured/kind/k replays any cured crash point alone.
echo "==> cured-apps oracle gate (8 apps x serializability + crash, <120s)"
timeout 120 cargo test -q --release --test cured_oracle
timeout 120 cargo test -q --release --test crash_recovery_oracle -- \
  cured_crash_sweep_has_zero_findings

# Confluence oracle gate: the PR-9 coordination-avoiding layer — hot-key
# convergence and escrow budget exactness under real threads, plus the
# WAL-backed crash sweep over the Confluent app paths (every commit point
# x all four crash kinds, zero fsck repairs demanded). Replay one crash
# point alone via CONFLUENCE_ORACLE=app/kind/k.
echo "==> confluence oracle gate (convergence + escrow + crash sweep, <60s)"
timeout 60 cargo test -q --release --test confluence_oracle

# WAL-format fuzz smoke: encode/decode round-trip plus truncation- and
# corruption-yields-a-prefix properties (tools/../crates/storage/tests).
echo "==> WAL format fuzz smoke (<60s)"
timeout 60 cargo test -q --release -p adhoc-storage --test wal_properties

# Chaos smoke gate: the metastability oracle — a seeded 30-tick partition
# storm through the full resilience stack (deadlines, retry budget,
# breaker, admission doors, fencing) vs the naive ablation, plus the
# ambiguous-reply fault family. Fully virtual-clock-driven and
# deterministic; the timeout guards only against accidental inflation.
echo "==> chaos smoke gate (partition storm + fault suite, <60s)"
timeout 60 cargo test -q --release --test resilience_oracle --test fault_suite

# Tiny-duty-cycle scaling-bench smoke: proves the sweeps run end to end
# and emit well-formed BENCH_{fig2,fig3,wal,occ,resilience}.json.
# Numbers from the smoke windows are noise — the committed artifacts come
# from ./tools/bench.sh with full windows.
echo "==> bench smoke (BENCH_SCALE=smoke)"
BENCH_SCALE=smoke ./tools/bench.sh target/bench-smoke >/dev/null
python3 -c "import json; [json.load(open(f'target/bench-smoke/BENCH_{n}.json')) for n in ('fig2', 'fig3', 'wal', 'occ', 'confluence', 'resilience', 'traffic')]"

# Scaling-regression gate: the fresh smoke sweep must not fall behind the
# committed pre-refactor baselines (tools/baselines/) — fig3 KV disjoint
# at every thread count, fig2 commit scaling hardware-aware (full 3x only
# demanded with 8+ CPUs; no-collapse on a single-CPU box), the cured
# orm::occ path vs the hand-rolled AHT (disjoint parity, hot-key 0.9x,
# pre-cure absolute floor), and the confluent delta path vs both
# (zero aborts everywhere, 2x cured on the 8T hot key on multi-CPU
# hardware, disjoint parity). Tolerance band via SCALING_GATE_TOL
# absorbs smoke-window noise.
echo "==> scaling-regression gate (fresh smoke vs tools/baselines/)"
python3 tools/check_scaling.py target/bench-smoke/BENCH_fig2.json target/bench-smoke/BENCH_fig3.json target/bench-smoke/BENCH_occ.json target/bench-smoke/BENCH_confluence.json

# Traffic-SLO gate: the open-loop ablation is virtual-clock deterministic,
# so the shape is demanded on any hardware — every arm meets the p99 SLO
# below saturation; past saturation the full front door plateaus (>= 50%
# of its own peak goodput) while naive and breaker_only collapse (<= 15%);
# full absorbs bursty arrivals within the SLO.
echo "==> traffic-SLO gate (plateau vs metastable collapse)"
python3 tools/check_traffic.py target/bench-smoke/BENCH_traffic.json

echo "==> CI green"
