//! Table 7: coordination hints in the top-ranking RDBMSs and their
//! relationship to ad hoc transactions (§6).

/// Surveyed database systems (Table 7a's columns; SQLite, MS Access and
/// Hive are skipped as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Oracle Database.
    Oracle,
    /// MySQL and MariaDB.
    MySqlMariaDb,
    /// Microsoft SQL Server and Azure SQL.
    SqlServerAzure,
    /// PostgreSQL.
    PostgreSql,
    /// IBM Db2.
    IbmDb2,
}

impl Vendor {
    /// All surveyed vendor groups, in Table 7a's column order.
    pub fn all() -> [Vendor; 5] {
        [
            Vendor::Oracle,
            Vendor::MySqlMariaDb,
            Vendor::SqlServerAzure,
            Vendor::PostgreSql,
            Vendor::IbmDb2,
        ]
    }

    /// Display name, as in the table header.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Oracle => "Oracle",
            Vendor::MySqlMariaDb => "MySQL, MariaDB",
            Vendor::SqlServerAzure => "SQL Server, Azure SQL",
            Vendor::PostgreSql => "PostgreSQL",
            Vendor::IbmDb2 => "IBM Db2",
        }
    }
}

/// The hint kinds of Table 7a's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hint {
    /// `LOCK TABLE`-style explicit table locks.
    ExplicitTableLocks,
    /// `SELECT … FOR UPDATE`-style explicit row locks.
    ExplicitRowLocks,
    /// Application-keyed advisory (user) locks.
    ExplicitUserLocks,
    /// Per-statement isolation hints (`READCOMMITTED` table hints).
    PerOperationIsolation,
    /// `SAVEPOINT` / partial rollback.
    Savepoints,
}

impl Hint {
    /// All hint kinds, in Table 7a's row order.
    pub fn all() -> [Hint; 5] {
        [
            Hint::ExplicitTableLocks,
            Hint::ExplicitRowLocks,
            Hint::ExplicitUserLocks,
            Hint::PerOperationIsolation,
            Hint::Savepoints,
        ]
    }

    /// Display name, as in Table 7a's row labels.
    pub fn name(self) -> &'static str {
        match self {
            Hint::ExplicitTableLocks => "Explicit table locks",
            Hint::ExplicitRowLocks => "Explicit row locks",
            Hint::ExplicitUserLocks => "Explicit user locks",
            Hint::PerOperationIsolation => "Per-op isolation",
            Hint::Savepoints => "Savepoints",
        }
    }

    /// Table 7a: does `vendor` support this hint? (All five support table
    /// locks, row locks and savepoints, with differing restrictions; user
    /// locks exist in Oracle, MySQL/MariaDB and PostgreSQL; per-operation
    /// isolation in SQL Server and IBM Db2.)
    pub fn supported_by(self, vendor: Vendor) -> bool {
        match self {
            Hint::ExplicitTableLocks | Hint::ExplicitRowLocks | Hint::Savepoints => true,
            Hint::ExplicitUserLocks => matches!(
                vendor,
                Vendor::Oracle | Vendor::MySqlMariaDb | Vendor::PostgreSql
            ),
            Hint::PerOperationIsolation => {
                matches!(vendor, Vendor::SqlServerAzure | Vendor::IbmDb2)
            }
        }
    }

    /// Table 7b: what the hint can potentially support.
    pub fn supports(self) -> &'static [&'static str] {
        match self {
            Hint::ExplicitTableLocks => &["Coarse-grained coordination (§3.3.1)"],
            Hint::ExplicitRowLocks | Hint::PerOperationIsolation => &[
                "Coarse-grained coordination (§3.3.1)",
                "Partial coordination (§3.1.1)",
            ],
            Hint::ExplicitUserLocks => &[
                "Fine-grained coordination (§3.3.2)",
                "Non-database operations (§3.1.3)",
            ],
            Hint::Savepoints => &["Partial rollback in long interactions (§3.1.2)"],
        }
    }

    /// Table 7b: what the hint can potentially avoid.
    pub fn avoids(self) -> &'static [&'static str] {
        match self {
            Hint::ExplicitTableLocks | Hint::ExplicitRowLocks | Hint::PerOperationIsolation => &[
                "Incorrect lock implementations and ORM-related misuses (§4.1.1)",
                "Incorrect failure handling (§4.3)",
            ],
            Hint::ExplicitUserLocks => {
                &["Incorrect lock implementations and transaction-related misuses (§4.1.1)"]
            }
            Hint::Savepoints => &["Full-transaction aborts on partial failures"],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7a_support_matrix_matches_paper() {
        // User locks: Oracle, MySQL/MariaDB, PostgreSQL only.
        assert!(Hint::ExplicitUserLocks.supported_by(Vendor::Oracle));
        assert!(Hint::ExplicitUserLocks.supported_by(Vendor::MySqlMariaDb));
        assert!(Hint::ExplicitUserLocks.supported_by(Vendor::PostgreSql));
        assert!(!Hint::ExplicitUserLocks.supported_by(Vendor::SqlServerAzure));
        assert!(!Hint::ExplicitUserLocks.supported_by(Vendor::IbmDb2));
        // Per-op isolation: SQL Server and Db2.
        assert!(Hint::PerOperationIsolation.supported_by(Vendor::SqlServerAzure));
        assert!(Hint::PerOperationIsolation.supported_by(Vendor::IbmDb2));
        assert!(!Hint::PerOperationIsolation.supported_by(Vendor::PostgreSql));
        // Table/row locks and savepoints everywhere.
        for v in Vendor::all() {
            assert!(Hint::ExplicitTableLocks.supported_by(v));
            assert!(Hint::ExplicitRowLocks.supported_by(v));
            assert!(Hint::Savepoints.supported_by(v));
        }
    }

    #[test]
    fn no_vendor_supports_everything() {
        // The paper's point: "database systems usually support only a
        // subset of the listed hints" — hence the proxy module.
        for v in Vendor::all() {
            let all = Hint::all().iter().all(|h| h.supported_by(v));
            assert!(!all, "{} should not support every hint", v.name());
        }
    }

    #[test]
    fn table7b_mappings_are_nonempty() {
        for h in Hint::all() {
            assert!(!h.supports().is_empty(), "{h:?}");
            assert!(!h.avoids().is_empty(), "{h:?}");
        }
    }
}
