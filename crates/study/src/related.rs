//! Table 1: comparison with Feral CC (Bailis et al.) and ACIDRain
//! (Warszawski and Bailis).

/// One column of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelatedWork {
    /// Short study name.
    pub name: &'static str,
    /// The paper's citation for it.
    pub citation: &'static str,
    /// The coordination mechanism studied.
    pub target: &'static str,
    /// Aspects examined (characteristics / correctness / performance).
    pub aspects: &'static [&'static str],
    /// Issue families the study identifies.
    pub issue_types: &'static [&'static str],
}

/// The three compared studies, in Table 1's column order.
pub static RELATED: &[RelatedWork] = &[
    RelatedWork {
        name: "Feral CC",
        citation: "Bailis et al. [5]",
        target: "ORMs' invariant validation APIs",
        aspects: &["Characteristics", "Correctness"],
        issue_types: &["Insufficient isolation"],
    },
    RelatedWork {
        name: "ACIDRain",
        citation: "Warszawski and Bailis [83]",
        target: "Database transactions",
        aspects: &["Correctness"],
        issue_types: &["Insufficient isolation", "Incorrect trans. scope"],
    },
    RelatedWork {
        name: "This work",
        citation: "Tang et al. (SIGMOD '22)",
        target: "Ad hoc transactions",
        aspects: &["Characteristics", "Correctness", "Performance"],
        issue_types: &[
            "Incorrect sync. primitives",
            "Incorrect ad hoc trans. scope",
            "Incorrect failure handling",
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_structure_matches_paper() {
        assert_eq!(RELATED.len(), 3);
        assert_eq!(RELATED[0].name, "Feral CC");
        assert_eq!(RELATED[1].name, "ACIDRain");
        assert_eq!(RELATED[2].name, "This work");
        // This work studies three aspects and three issue families.
        assert_eq!(RELATED[2].aspects.len(), 3);
        assert_eq!(RELATED[2].issue_types.len(), 3);
        // The issue families match the Table 5a grouping labels.
        use adhoc_core::taxonomy::IssueGroup;
        assert_eq!(
            RELATED[2].issue_types[0],
            IssueGroup::IncorrectSyncPrimitives.label()
        );
        assert_eq!(
            RELATED[2].issue_types[1],
            IssueGroup::IncorrectScope.label()
        );
        assert_eq!(
            RELATED[2].issue_types[2],
            IssueGroup::IncorrectFailureHandling.label()
        );
    }
}
