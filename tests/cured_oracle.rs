//! Cured-variant oracle: the §7 cure layer must *empty the bug catalog*.
//!
//! Every scenario here drives a `Mode::Cured` app — rebased onto
//! `orm::occ` (validate-on-save with field-granular footprints) and
//! `orm::coord` (the unified coordination façade) — under the same
//! thread-level contention that makes the faithful ad hoc variants lose
//! updates, double-grant, overdraft, or deadlock. The assertions are
//! exact: counters must equal the number of acknowledged operations,
//! conservation invariants must hold to the unit, and no finding is
//! tolerated. Together with `crash_recovery_oracle`'s `*_cured` sweeps
//! (zero findings, zero repairs) this is the oracle half of the paper's
//! cure claim; the throughput half lives in `BENCH_occ.json`.
//!
//! The continuation test at the bottom exercises the optimistic
//! transaction that *spans simulated HTTP requests*: save → concurrent
//! writer → restore → commit must validate, conflict, and retry.

mod common;

use adhoc_transactions::apps::{mastodon, Mode};
use adhoc_transactions::orm::{run_occ, ContinuationStore, OccTxn, OrmError};
use common::{
    broadleaf_app, discourse_app, jumpserver_app, mastodon_app, redmine_app, saleor_app, scm_app,
    spree_app,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const THREADS: i64 = 8;
const OPS: i64 = 10;

#[test]
fn spree_cured_checkout_is_exact_despite_the_touch_cascade() {
    // §3.1.1: the ad hoc lock covers only the SKU RMW and the DBT variant
    // pays cascade aborts on shared category rows. The cured variant
    // validates only the fields it read, so the cascade is conflict-free
    // and the stock count is exact.
    let app = Arc::new(spree_app(Mode::Cured));
    app.seed_catalog(1, 1, &[10, 11], 1000).unwrap();
    app.seed_order(1).unwrap();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..OPS {
                    assert!(app.decrement_stock(1, 1, 1).unwrap());
                }
            });
        }
    });
    assert_eq!(app.sku_quantity(1).unwrap(), 1000 - THREADS * OPS);
    assert_eq!(
        app.orm()
            .find_required("orders", 1)
            .unwrap()
            .get_str("state")
            .unwrap(),
        "confirmed"
    );
}

#[test]
fn spree_cured_add_payment_is_exactly_once() {
    // Table 6 `PBC`: the exact-predicate key through the façade keeps the
    // at-most-one-payment invariant without the hand-rolled lock table.
    let app = Arc::new(spree_app(Mode::Cured));
    app.seed_order(1).unwrap();
    let created: usize = std::thread::scope(|s| {
        (0..THREADS)
            .map(|_| {
                let app = Arc::clone(&app);
                s.spawn(move || app.add_payment(1).unwrap() as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(created, 1);
    assert!(app.one_payment_per_order(1).unwrap());
}

#[test]
fn broadleaf_cured_checkout_conserves_stock() {
    // Figure 1a: the OCC RMW over (quantity, sold) can never lose a sale.
    let app = Arc::new(broadleaf_app(Mode::Cured));
    app.seed_sku(1, 1000).unwrap();
    let successes = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            let successes = Arc::clone(&successes);
            s.spawn(move || {
                for _ in 0..OPS {
                    if app.check_out(1, 1).unwrap() {
                        successes.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(successes.load(Ordering::SeqCst), THREADS * OPS);
    assert!(app.sku_conserved(1, 1000).unwrap());
    let sold = app
        .orm()
        .find_required("skus", 1)
        .unwrap()
        .get_int("sold")
        .unwrap();
    assert_eq!(sold, THREADS * OPS);
}

#[test]
fn broadleaf_cured_cart_total_tracks_items() {
    // Figure 1a's second half: item insert + total recompute in one
    // façade-guarded transaction.
    let app = Arc::new(broadleaf_app(Mode::Cured));
    app.seed_cart(1).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for i in 0..OPS {
                    app.add_to_cart(1, 10 + t, 1 + (i % 2)).unwrap();
                }
            });
        }
    });
    assert!(app.cart_total_consistent(1).unwrap());
}

#[test]
fn saleor_cured_never_overcaptures() {
    // Table 5b: concurrent captures race an authorization ceiling. The
    // cured OCC path makes the check-and-add atomic: exactly the
    // authorized amount is captured, never more.
    let app = Arc::new(saleor_app(Mode::Cured));
    app.seed_capture(1, 1000).unwrap();
    let captured = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            let captured = Arc::clone(&captured);
            s.spawn(move || {
                for _ in 0..2 {
                    if app.capture_payment(1, 100).unwrap() {
                        captured.fetch_add(100, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    // 16 capture attempts of 100 against a 1000 ceiling: exactly 10 land.
    assert_eq!(captured.load(Ordering::SeqCst), 1000);
    assert!(app.capture_within_authorization(1).unwrap());
}

#[test]
fn saleor_cured_allocations_never_oversell() {
    // §3.2.1's praised FOR-UPDATE shape, now as façade row-lock hints:
    // concurrent fulfillments of the same item never drive stock negative.
    let app = Arc::new(saleor_app(Mode::Cured));
    app.seed_stock(1, 6).unwrap();
    // Eight items, each with one 2-unit allocation against the same
    // 6-unit stock: exactly three fulfillments can land.
    for item in 1..=THREADS {
        app.seed_allocation(item, 1, 2).unwrap();
    }
    let fulfilled = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for item in 1..=THREADS {
            let app = Arc::clone(&app);
            let fulfilled = Arc::clone(&fulfilled);
            s.spawn(move || {
                if app.allocate(item).unwrap() {
                    fulfilled.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(fulfilled.load(Ordering::SeqCst), 3);
    let qty = app
        .orm()
        .find_required("stocks", 1)
        .unwrap()
        .get_int("qty")
        .unwrap();
    assert_eq!(qty, 0, "exactly the stock was allocated");
}

#[test]
fn discourse_cured_counters_stay_consistent() {
    // §4.2: post creation bumps `max_post` in the same transaction as the
    // insert; likes are a field-granular OCC RMW over two counters.
    let app = Arc::new(discourse_app(Mode::Cured));
    app.seed_topic(1).unwrap();
    let post = app.seed_post(1, "seed", 0).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for i in 0..OPS {
                    app.create_post(1, &format!("p{t}-{i}")).unwrap();
                    app.like_post(post).unwrap();
                }
            });
        }
    });
    assert!(app.topic_posts_consistent(1).unwrap());
    assert!(app.likes_consistent(1).unwrap());
    let like_cnt = app
        .orm()
        .find_required("posts", post)
        .unwrap()
        .get_int("like_cnt")
        .unwrap();
    assert_eq!(like_cnt, THREADS * OPS);
}

#[test]
fn mastodon_cured_invites_respect_the_limit_exactly() {
    // §3.4.2 / §4.1.1: no lease to expire, no SETNX reply to lose — the
    // redeem is an OCC RMW, so exactly `max_redeems` succeed.
    let app = Arc::new(mastodon_app(Mode::Cured));
    app.seed_invite(1, 5).unwrap();
    let granted = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let app = Arc::clone(&app);
            let granted = Arc::clone(&granted);
            s.spawn(move || {
                if app.redeem_invite(1).unwrap() {
                    granted.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(granted.load(Ordering::SeqCst), 5);
    assert!(app.invite_within_limit(1).unwrap());
}

#[test]
fn mastodon_cured_votes_count_exactly() {
    // Figure 1c: A-votes and B-votes touch different columns, so with
    // field-granular footprints they no longer conflict at all.
    let app = Arc::new(mastodon_app(Mode::Cured));
    app.seed_poll(1).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                let choice = if t % 2 == 0 {
                    mastodon::Choice::A
                } else {
                    mastodon::Choice::B
                };
                for _ in 0..OPS {
                    app.vote(1, choice).unwrap();
                }
            });
        }
    });
    let (a, b) = app.poll_totals(1).unwrap();
    assert_eq!((a, b), (THREADS / 2 * OPS, THREADS / 2 * OPS));
}

#[test]
fn mastodon_cured_timeline_matches_posts() {
    // §4.1.1 [65]: the façade's advisory user lock has ownership
    // semantics — no TTL to expire mid-critical-section.
    let app = Arc::new(mastodon_app(Mode::Cured));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                app.create_post(7, t, "hello").unwrap();
                if t % 2 == 0 {
                    app.delete_post(7, t).unwrap();
                }
            });
        }
    });
    assert!(app.timeline_consistent(7).unwrap());
}

#[test]
fn redmine_cured_progress_and_attachments_are_exact() {
    let app = Arc::new(redmine_app(Mode::Cured));
    app.seed_issue(1, "cured oracle").unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for i in 0..OPS {
                    app.advance_issue(1, t, 1).unwrap();
                    app.add_attachment(1, &format!("f{t}-{i}.png")).unwrap();
                }
            });
        }
    });
    // Each advance adds 1 (min-capped at 100, unreachable here): exact sum.
    assert_eq!(app.done_ratio(1).unwrap(), THREADS * OPS);
    assert!(app.attachments_consistent(1).unwrap());
}

#[test]
fn redmine_cured_version_close_excludes_assignment() {
    // §3.3: both halves of the version invariant take the same façade
    // key, so a close and an assignment can never interleave badly.
    let app = Arc::new(redmine_app(Mode::Cured));
    app.seed_version(1, "v1").unwrap();
    for issue in 1..=THREADS {
        app.seed_issue(issue, "versioned").unwrap();
    }
    std::thread::scope(|s| {
        for issue in 1..=THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                let _ = app.assign_version(issue, 1).unwrap();
            });
        }
        let app = Arc::clone(&app);
        s.spawn(move || {
            let _ = app.close_version(1).unwrap();
        });
    });
    assert!(app.versions_consistent().unwrap());
}

#[test]
fn jumpserver_cured_grants_stay_unique() {
    let app = Arc::new(jumpserver_app(Mode::Cured));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                app.grant(7, 1, t + 1).unwrap();
            });
        }
    });
    assert!(app.grants_unique(7).unwrap());
}

#[test]
fn scm_cured_adjustments_and_transfers_are_exact() {
    // §4.1.1 [91]: nothing to `synchronize` on — the OCC RMW counts every
    // increment, and lock-free transfers conserve money with no ordering
    // discipline to get wrong.
    let app = Arc::new(scm_app(Mode::Cured));
    app.seed_account(1, 1000).unwrap();
    app.seed_account(2, 1000).unwrap();
    app.seed_merchandise(1, 10_000).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..OPS {
                    assert!(app.adjust_balance(1, 1).unwrap());
                    let (from, to) = if t % 2 == 0 { (1, 2) } else { (2, 1) };
                    assert!(app.transfer(from, to, 3).unwrap());
                    app.track_stock(1, -1, true).unwrap();
                }
            });
        }
    });
    // +1 × THREADS × OPS on account 1; transfers cancel in total.
    assert_eq!(app.total_balance(&[1, 2]).unwrap(), 2000 + THREADS * OPS);
    assert_eq!(
        app.orm()
            .find_required("merchandise", 1)
            .unwrap()
            .get_int("stock")
            .unwrap(),
        10_000 - THREADS * OPS
    );
}

// ---------------------------------------------------------------------------
// The continuation flow: one optimistic transaction across two requests.
// ---------------------------------------------------------------------------

fn invite_fixture() -> (Arc<mastodon::Mastodon>, Arc<ContinuationStore>) {
    let app = Arc::new(mastodon_app(Mode::Cured));
    app.seed_invite(1, 100).unwrap();
    (app, Arc::new(ContinuationStore::new()))
}

fn stage_redeem(orm: &adhoc_transactions::orm::Orm) -> OccTxn {
    let mut occ = OccTxn::new();
    let invite = occ
        .read_fields(orm, "invites", 1, &["redeems"])
        .unwrap()
        .expect("seeded invite");
    let next = invite.get_int("redeems").unwrap() + 1;
    occ.stage_update("invites", 1, &[("redeems", next.into())]);
    occ
}

/// The deterministic interleaving: request 1 parks the continuation, a
/// writer commits between the requests, request 2's commit must *fail
/// validation* (the stale read is detected), and the redo succeeds.
#[test]
fn continuation_save_restore_detects_an_intervening_write() {
    let (app, store) = invite_fixture();
    let orm = app.orm();

    // Request 1: read + stage, park across the "HTTP" boundary.
    let token = store.save(stage_redeem(orm));
    assert_eq!(store.len(), 1);

    // Between the requests: a concurrent redeem commits.
    assert!(app.redeem_invite(1).unwrap());

    // Request 2: restore and commit — validation must catch the conflict.
    let pending = store.restore(token).unwrap();
    let err = pending.commit(orm).unwrap_err();
    assert!(
        matches!(err, OrmError::OccConflict { ref entity, id: 1, .. } if entity == "invites"),
        "expected an OCC conflict, got {err}"
    );

    // The continuation is consumed either way (one-shot restore).
    assert!(matches!(
        store.restore(token),
        Err(OrmError::NoSuchContinuation { .. })
    ));

    // The redo path (what `run_occ` automates) lands the increment.
    run_occ(
        orm,
        &adhoc_transactions::apps::cured_policy(),
        None,
        |occ| {
            let invite = occ
                .read_fields(orm, "invites", 1, &["redeems"])
                .unwrap()
                .expect("seeded invite");
            let next = invite.get_int("redeems").unwrap() + 1;
            occ.stage_update("invites", 1, &[("redeems", next.into())]);
            Ok(())
        },
    )
    .unwrap();
    let redeems = orm
        .find_required("invites", 1)
        .unwrap()
        .get_int("redeems")
        .unwrap();
    assert_eq!(redeems, 2, "both the writer and the redone flow count");
}

/// The quiet path: nobody writes between the requests, so the restored
/// continuation commits first try.
#[test]
fn continuation_commits_clean_when_unchallenged() {
    let (app, store) = invite_fixture();
    let orm = app.orm();
    let token = store.save(stage_redeem(orm));
    store.restore(token).unwrap().commit(orm).unwrap();
    assert!(store.is_empty());
    let redeems = orm
        .find_required("invites", 1)
        .unwrap()
        .get_int("redeems")
        .unwrap();
    assert_eq!(redeems, 1);
}

/// Many form flows race many direct writers; every flow retries its
/// continuation until validation passes, and no increment is lost.
#[test]
fn continuation_flows_survive_concurrent_writers() {
    let (app, store) = invite_fixture();
    let flows = Arc::clone(&store);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let app = Arc::clone(&app);
            let store = Arc::clone(&flows);
            s.spawn(move || {
                let orm = app.orm();
                for _ in 0..OPS {
                    let token = store.save(stage_redeem(orm));
                    let mut pending = store.restore(token).unwrap();
                    loop {
                        match pending.commit(orm) {
                            Ok(()) => break,
                            Err(OrmError::OccConflict { .. }) => pending = stage_redeem(orm),
                            Err(e) => panic!("continuation commit: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..4 {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for _ in 0..OPS {
                    assert!(app.redeem_invite(1).unwrap());
                }
            });
        }
    });
    let redeems = app
        .orm()
        .find_required("invites", 1)
        .unwrap()
        .get_int("redeems")
        .unwrap();
    assert_eq!(
        redeems,
        8 * OPS,
        "every flow and writer counted exactly once"
    );
}
