//! The §6 "proxy module for existing hints" — now a compatibility shim.
//!
//! Table 7a shows that engines disagree on which coordination hints exist
//! (explicit user/table/row locks, per-operation isolation) and on their
//! semantics. The paper proposes an application-level proxy that exposes
//! one interface and falls back gracefully — "the module should provide a
//! database table–based lock implementation as the fallback of explicit
//! user locks".
//!
//! That module now lives in [`adhoc_orm::coord`] as the unified
//! coordination façade (it additionally routes fenced KV leases);
//! [`HintProxy`] delegates to it and keeps the original toolkit-flavoured
//! surface — [`crate::ToolkitError`] results, the same mechanism labels —
//! for existing callers.

use crate::locks::LockError;
use crate::Result;
use adhoc_orm::coord::{CoordGuard, Coordinator};
use adhoc_storage::{Database, LockMode, Transaction};

/// Capability flags for the engine behind the proxy (Table 7a rows).
/// The canonical type is [`adhoc_orm::coord::CoordSupport`]; re-exported
/// here under its historical name.
pub use adhoc_orm::coord::CoordSupport as HintSupport;

/// A held user-lock hint: advisory when the engine supports it, a
/// database-table lock otherwise. Wraps the façade's [`CoordGuard`].
pub struct UserLockGuard {
    inner: Option<CoordGuard>,
}

impl UserLockGuard {
    /// Release the lock.
    pub fn unlock(mut self) -> Result<()> {
        match self.inner.take() {
            Some(guard) => guard
                .unlock()
                .map_err(|e| LockError::Backend(e.to_string()).into()),
            None => Ok(()),
        }
    }

    /// Which mechanism backs this guard (diagnostics / tests).
    pub fn mechanism(&self) -> &'static str {
        self.inner
            .as_ref()
            .map(CoordGuard::mechanism)
            .unwrap_or("released")
    }
}

// Dropping the inner CoordGuard releases the lock; an explicit Drop impl
// would only forbid the field move in `unlock`.

/// One portable interface over the engines' coordination hints,
/// delegating to the [`Coordinator`] façade.
pub struct HintProxy {
    coord: Coordinator,
}

impl HintProxy {
    /// A proxy assuming full hint support (see [`HintSupport::full`]).
    pub fn new(db: Database) -> Self {
        Self {
            coord: Coordinator::new(db),
        }
    }

    /// Pretend the engine lacks some hints, to exercise fallbacks.
    pub fn with_support(mut self, support: HintSupport) -> Self {
        self.coord = self.coord.with_support(support);
        self
    }

    /// The underlying coordination façade.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coord
    }

    /// Explicit user lock on an application-chosen key. Uses the engine's
    /// advisory locks when available; otherwise the database-table
    /// fallback the paper calls for.
    pub fn user_lock(&self, key: &str) -> Result<UserLockGuard> {
        let guard = self
            .coord
            .user_lock(key)
            .map_err(|e| LockError::Backend(e.to_string()))?;
        Ok(UserLockGuard { inner: Some(guard) })
    }

    /// Try-variant of [`user_lock`](Self::user_lock): `None` when held
    /// elsewhere.
    pub fn try_user_lock(&self, key: &str) -> Result<Option<UserLockGuard>> {
        let guard = self
            .coord
            .try_user_lock(key)
            .map_err(|e| LockError::Backend(e.to_string()))?;
        Ok(guard.map(|g| UserLockGuard { inner: Some(g) }))
    }

    /// Explicit row lock inside an open transaction (SQL Server's
    /// `HOLDLOCK`-style hint; our engines spell it `FOR UPDATE`). The lock
    /// persists until the transaction ends.
    pub fn row_lock(&self, txn: &mut Transaction, table: &str, id: i64) -> Result<()> {
        self.coord
            .row_lock(txn, table, id)
            .map_err(|e| LockError::Backend(e.to_string()).into())
    }

    /// Explicit table lock inside an open transaction.
    pub fn table_lock(&self, txn: &mut Transaction, table: &str, mode: LockMode) -> Result<()> {
        self.coord
            .table_lock(txn, table, mode)
            .map_err(|e| LockError::Backend(e.to_string()).into())
    }

    /// Per-operation isolation hint: read this row at Read Committed even
    /// inside a snapshot transaction (Table 7b: supports coarse-grained
    /// and *partial* coordination — §3.1.1's non-critical reads can opt
    /// out of the strict level).
    pub fn read_committed_read(
        &self,
        txn: &mut Transaction,
        table: &str,
        id: i64,
    ) -> Result<Option<adhoc_storage::Row>> {
        self.coord
            .read_committed_read(txn, table, id)
            .map_err(|e| LockError::Backend(e.to_string()).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_storage::EngineProfile;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn db() -> Database {
        Database::in_memory(EngineProfile::PostgresLike)
    }

    #[test]
    fn user_lock_uses_advisory_when_supported() {
        let proxy = HintProxy::new(db());
        let g = proxy.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "advisory");
        assert!(proxy.try_user_lock("checkout:42").unwrap().is_none());
        g.unlock().unwrap();
        let g2 = proxy.try_user_lock("checkout:42").unwrap();
        assert!(g2.is_some());
    }

    #[test]
    fn user_lock_falls_back_to_db_table() {
        let proxy = HintProxy::new(db()).with_support(HintSupport::without_user_locks());
        let g = proxy.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "db-table-fallback");
        g.unlock().unwrap();
        // Reacquirable after release.
        proxy.user_lock("checkout:42").unwrap().unlock().unwrap();
    }

    #[test]
    fn user_lock_blocks_across_mechanism_users() {
        let proxy = std::sync::Arc::new(HintProxy::new(db()));
        let g = proxy.user_lock("k").unwrap();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let p2 = std::sync::Arc::clone(&proxy);
        let d2 = std::sync::Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let g2 = p2.user_lock("k").unwrap();
            d2.store(true, Ordering::SeqCst);
            g2.unlock().unwrap();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst));
        g.unlock().unwrap();
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_releases_user_lock() {
        let proxy = HintProxy::new(db());
        {
            let _g = proxy.user_lock("k").unwrap();
        }
        assert!(proxy.try_user_lock("k").unwrap().is_some());
    }

    #[test]
    fn row_lock_holds_until_commit() {
        let database = db();
        database
            .create_table(
                adhoc_storage::Schema::new(
                    "orders",
                    vec![
                        adhoc_storage::Column::new("id", adhoc_storage::ColumnType::Int),
                        adhoc_storage::Column::new("total", adhoc_storage::ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.insert("orders", &[("id", 1.into()), ("total", 0.into())])
                    .map(|_| ())
            })
            .unwrap();
        let proxy = HintProxy::new(database.clone());
        let mut txn = database.begin();
        proxy.row_lock(&mut txn, "orders", 1).unwrap();
        // A concurrent writer blocks until we commit.
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let d2 = std::sync::Arc::clone(&done);
        let db2 = database.clone();
        let h = std::thread::spawn(move || {
            db2.run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.update("orders", 1, &[("total", 5.into())])
            })
            .unwrap();
            d2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst));
        txn.commit().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn per_op_isolation_hint_reads_latest() {
        let database = db();
        database
            .create_table(
                adhoc_storage::Schema::new(
                    "orders",
                    vec![
                        adhoc_storage::Column::new("id", adhoc_storage::ColumnType::Int),
                        adhoc_storage::Column::new("total", adhoc_storage::ColumnType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.insert("orders", &[("id", 1.into()), ("total", 10.into())])
                    .map(|_| ())
            })
            .unwrap();
        let proxy = HintProxy::new(database.clone());
        let mut txn = database.begin_with(adhoc_storage::IsolationLevel::RepeatableRead);
        assert_eq!(
            txn.get("orders", 1).unwrap().unwrap().values[1].as_int(),
            10
        );
        database
            .run(adhoc_storage::IsolationLevel::ReadCommitted, |t| {
                t.update("orders", 1, &[("total", 99.into())])
            })
            .unwrap();
        let hinted = proxy
            .read_committed_read(&mut txn, "orders", 1)
            .unwrap()
            .unwrap();
        assert_eq!(hinted.values[1].as_int(), 99);
        txn.commit().unwrap();
        // Unsupported engines error cleanly.
        let limited =
            HintProxy::new(database.clone()).with_support(HintSupport::without_per_op_isolation());
        let mut txn = database.begin();
        assert!(limited.read_committed_read(&mut txn, "orders", 1).is_err());
    }

    #[test]
    fn unsupported_hints_error_cleanly() {
        let database = db();
        let proxy = HintProxy::new(database.clone()).with_support(HintSupport {
            user_locks: true,
            table_locks: false,
            row_locks: false,
            per_op_isolation: false,
        });
        let mut txn = database.begin();
        assert!(proxy.row_lock(&mut txn, "any", 1).is_err());
        assert!(proxy.table_lock(&mut txn, "any", LockMode::Shared).is_err());
    }
}
