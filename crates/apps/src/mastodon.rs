//! Mastodon (Ruby/Active Record + Redis): posts, timelines, invites, polls.
//!
//! Scenarios reproduced:
//! * **§3.1.3** — `create_post`/`delete_post` coordinate an RDBMS insert
//!   with a Redis timeline-set update under one post lock (coordination of
//!   database and non-database operations).
//! * **Figure 1b** — `redeem_invite`: a Redis `SETNX` lock around the
//!   invitation read–modify–write.
//! * **Figure 1c** — `vote`: the optimistic retry loop over
//!   `UPDATE … WHERE id = ? AND ver = ?`.
//! * **§4.1.1 (issue \[65\]) / Table 5b** — every Mastodon lock has lease
//!   semantics (Redis TTL) and the application never checks expiry;
//!   `critical_section_delay` lets tests stretch the critical section past
//!   the TTL, producing the "deleted posts appearing in timelines" class
//!   of inconsistency.

use crate::{Mode, Result, DBT_RETRIES};
use adhoc_core::checker::{BootRecovery, CheckRule, Report, Violation};
use adhoc_core::locks::AdHocLock;
use adhoc_orm::occ::run_occ;
use adhoc_orm::{Coordinator, EntityDef, Orm, OrmError, Registry};
use adhoc_storage::{Column, ColumnType, Database, DbError, IsolationLevel, Predicate, Schema};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Create Mastodon's tables and entity registry.
pub fn setup(db: &Database) -> Result<Orm> {
    db.create_table(Schema::new(
        "posts",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("content", ColumnType::Str),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "invites",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("redeems", ColumnType::Int),
            Column::new("max_redeems", ColumnType::Int),
            // Remaining redemptions, the escrow budget column: seeded to
            // max_redeems and decremented alongside each redeem, so
            // `redeems <= max_redeems` becomes `slots >= 0` — the shape
            // escrow reservations enforce without a lock. Only the
            // Confluent path maintains it; the other modes guard the
            // invariant with their own coordination.
            Column::new("slots", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(Schema::new(
        "polls",
        vec![
            Column::new("id", ColumnType::Int),
            Column::new("tally_a", ColumnType::Int),
            Column::new("tally_b", ColumnType::Int),
            Column::new("ver", ColumnType::Int),
        ],
        "id",
    )?)?;
    db.create_table(
        Schema::new(
            "notifications",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("user_id", ColumnType::Int),
                Column::new("event", ColumnType::Str),
            ],
            "id",
        )?
        .with_index("user_id")?,
    )?;
    // Per-user unread badge, maintained as a commutative delta column by
    // the Confluent notification path (one row per user, keyed by user id).
    db.create_table(Schema::new(
        "notify_counts",
        vec![
            Column::new("user_id", ColumnType::Int),
            Column::new("unread", ColumnType::Int),
        ],
        "user_id",
    )?)?;
    let registry = Registry::new()
        .register(EntityDef::new("posts"))
        .register(EntityDef::new("invites"))
        .register(EntityDef::new("polls"))
        .register(EntityDef::new("notifications"))
        .register(EntityDef::new("notify_counts"));
    Ok(Orm::new(db.clone(), registry))
}

/// A poll choice (tallies are two columns, like `{1: …, 2: …}` in Fig. 1c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// The first option.
    A,
    /// The second option.
    B,
}

/// The Mastodon application model.
pub struct Mastodon {
    orm: Orm,
    kv: adhoc_kv::Client,
    lock: Arc<dyn AdHocLock>,
    coord: Coordinator,
    mode: Mode,
    /// Stretches critical sections (past a lease TTL, when injected).
    pub critical_section_delay: Duration,
}

impl Mastodon {
    /// Build the application model over `orm`, coordinating with `lock` in the given [`Mode`].
    pub fn new(orm: Orm, kv: adhoc_kv::Client, lock: Arc<dyn AdHocLock>, mode: Mode) -> Self {
        let coord = Coordinator::new(orm.db().clone());
        Self {
            orm,
            kv,
            lock,
            coord,
            mode,
            critical_section_delay: Duration::ZERO,
        }
    }

    /// Stretch every critical section by `d` (drives the lease-expiry scenarios).
    pub fn with_critical_section_delay(mut self, d: Duration) -> Self {
        self.critical_section_delay = d;
        self
    }

    /// The underlying ORM handle (for assertions and seeding).
    pub fn orm(&self) -> &Orm {
        &self.orm
    }

    /// The Redis-like client (for assertions and checkers).
    pub fn kv(&self) -> &adhoc_kv::Client {
        &self.kv
    }

    /// Seed an invitation with a redemption limit.
    pub fn seed_invite(&self, invite_id: i64, max_redeems: i64) -> Result<()> {
        self.orm.create(
            "invites",
            &[
                ("id", invite_id.into()),
                ("redeems", 0.into()),
                ("max_redeems", max_redeems.into()),
                ("slots", max_redeems.into()),
            ],
        )?;
        Ok(())
    }

    /// Seed a poll with empty tallies.
    pub fn seed_poll(&self, poll_id: i64) -> Result<()> {
        self.orm.create(
            "polls",
            &[
                ("id", poll_id.into()),
                ("tally_a", 0.into()),
                ("tally_b", 0.into()),
                ("ver", 0.into()),
            ],
        )?;
        Ok(())
    }

    fn timeline_key(follower_id: i64) -> String {
        format!("timeline:{follower_id}")
    }

    /// §3.1.3: insert the post row and add its id to the follower's Redis
    /// timeline, under one post lock.
    pub fn create_post(&self, follower_id: i64, post_id: i64, content: &str) -> Result<()> {
        if self.mode.on_cured_layer() {
            // §7 cure for the §4.1.1 lease bug: the façade's user lock has
            // ownership semantics, not a TTL — it cannot silently expire
            // mid-critical-section, however long the section runs.
            let guard = self.coord.user_lock(&format!("post:{post_id}"))?;
            self.orm.create(
                "posts",
                &[("id", post_id.into()), ("content", content.into())],
            )?;
            std::thread::sleep(self.critical_section_delay);
            self.kv
                .sadd(&Self::timeline_key(follower_id), &post_id.to_string())
                .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
            guard.unlock()?;
            return Ok(());
        }
        let guard = self.lock.lock(&format!("post:{post_id}"))?;
        self.orm.create(
            "posts",
            &[("id", post_id.into()), ("content", content.into())],
        )?;
        std::thread::sleep(self.critical_section_delay);
        self.kv
            .sadd(&Self::timeline_key(follower_id), &post_id.to_string())
            .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
        // Mastodon releases unconditionally; an expired lease makes this a
        // no-op (the Guard refuses to clobber the next holder).
        let _ = guard.unlock();
        Ok(())
    }

    /// §3.1.3: remove the timeline entry, then the post row.
    pub fn delete_post(&self, follower_id: i64, post_id: i64) -> Result<()> {
        if self.mode.on_cured_layer() {
            let guard = self.coord.user_lock(&format!("post:{post_id}"))?;
            self.kv
                .srem(&Self::timeline_key(follower_id), &post_id.to_string())
                .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
            std::thread::sleep(self.critical_section_delay);
            self.orm.delete("posts", post_id)?;
            guard.unlock()?;
            return Ok(());
        }
        let guard = self.lock.lock(&format!("post:{post_id}"))?;
        self.kv
            .srem(&Self::timeline_key(follower_id), &post_id.to_string())
            .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
        std::thread::sleep(self.critical_section_delay);
        self.orm.delete("posts", post_id)?;
        let _ = guard.unlock();
        Ok(())
    }

    /// The follower's timeline (post ids).
    pub fn timeline(&self, follower_id: i64) -> Result<Vec<i64>> {
        let members = self
            .kv
            .smembers(&Self::timeline_key(follower_id))
            .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
        Ok(members.iter().filter_map(|m| m.parse().ok()).collect())
    }

    /// Invariant (§3.1.3): every timeline id references a live post row.
    pub fn timeline_consistent(&self, follower_id: i64) -> Result<bool> {
        for post_id in self.timeline(follower_id)? {
            if self.orm.find("posts", post_id)?.is_none() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Figure 1b: redeem an invitation; `false` when exhausted.
    pub fn redeem_invite(&self, invite_id: i64) -> Result<bool> {
        match self.mode {
            Mode::AdHoc => {
                let guard = self.lock.lock(&format!("redeem:{invite_id}"))?;
                let invite = self.orm.find_required("invites", invite_id)?;
                let redeems = invite.get_int("redeems")?;
                let max = invite.get_int("max_redeems")?;
                std::thread::sleep(self.critical_section_delay);
                let ok = if redeems < max {
                    self.orm.transaction(|t| {
                        t.raw().update(
                            "invites",
                            invite_id,
                            &[("redeems", (redeems + 1).into())],
                        )?;
                        Ok(())
                    })?;
                    true
                } else {
                    false
                };
                // Fig. 1b deletes the lock key unconditionally; our Guard
                // does the owner-checked equivalent (the unchecked variant
                // is covered by the lock's own fault switch).
                let _ = guard.unlock();
                Ok(ok)
            }
            Mode::DatabaseTxn => {
                let schema = self.orm.db().schema("invites")?;
                Ok(self.orm.db().run_with_retries(
                    IsolationLevel::Serializable,
                    DBT_RETRIES,
                    |t| {
                        let invite = t.get("invites", invite_id)?.ok_or(DbError::NoSuchRow {
                            table: "invites".into(),
                            id: invite_id,
                        })?;
                        let redeems = invite.get_int(&schema, "redeems")?;
                        let max = invite.get_int(&schema, "max_redeems")?;
                        if redeems >= max {
                            return Ok(false);
                        }
                        t.update("invites", invite_id, &[("redeems", (redeems + 1).into())])?;
                        Ok(true)
                    },
                )?)
            }
            Mode::Confluent => {
                // `redeems <= max_redeems` is not confluent, but as the
                // budget `slots >= 0` it admits escrow: reserve one slot
                // (a lock-free atomic — contenders only serialize near
                // exhaustion), then commit both commutative deltas and
                // confirm. Exhaustion is the business answer "invite used
                // up", not a conflict to retry.
                let reservation = match self.coord.reserve("invites", invite_id, "slots", 1) {
                    Ok(r) => r,
                    Err(OrmError::Db(DbError::EscrowExhausted { .. })) => return Ok(false),
                    Err(e) => return Err(e.into()),
                };
                std::thread::sleep(self.critical_section_delay);
                self.orm.transaction(|t| {
                    t.raw().add_delta("invites", invite_id, "slots", -1)?;
                    t.raw().add_delta("invites", invite_id, "redeems", 1)?;
                    Ok(())
                })?;
                reservation.confirm();
                Ok(true)
            }
            Mode::Cured => {
                // §7 cure for Fig. 1b: no lock, no TTL to get wrong — one
                // optimistic validate-and-commit over exactly the columns
                // the limit check reads. The stretch delay sits between
                // read and commit; a stale read surfaces as a conflict and
                // retries instead of over-redeeming.
                Ok(run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                    let invite = occ
                        .read_fields(&self.orm, "invites", invite_id, &["redeems", "max_redeems"])?
                        .ok_or(OrmError::RecordNotFound {
                            entity: "invites".into(),
                            id: invite_id,
                        })?;
                    let redeems = invite.get_int("redeems")?;
                    let max = invite.get_int("max_redeems")?;
                    std::thread::sleep(self.critical_section_delay);
                    if redeems >= max {
                        return Ok(false);
                    }
                    occ.stage_update("invites", invite_id, &[("redeems", (redeems + 1).into())]);
                    Ok(true)
                })?)
            }
        }
    }

    /// Deliver a notification at most once per (user, event) — the
    /// `mastodon/notification-dedupe` case. Coordination is lock-free: a
    /// `SETNX` marker *is* the uniqueness check (the winner delivers), a
    /// different use of the same primitive the locks build on.
    pub fn notify_once(&self, user_id: i64, event: &str) -> Result<bool> {
        let marker = format!("notified:{user_id}:{event}");
        let won = self
            .kv
            .set_nx(&marker, "1")
            .map_err(|e| adhoc_core::LockError::Backend(e.to_string()))?;
        if !won {
            return Ok(false); // someone already delivered this event
        }
        self.orm.create(
            "notifications",
            &[("user_id", user_id.into()), ("event", event.into())],
        )?;
        if self.mode == Mode::Confluent {
            // The unread badge is a confluent counter: concurrent
            // deliveries to the same user bump it with commutative deltas
            // and never contend. A crash between the insert above and
            // this bump leaves the badge one behind — boot-fsck's
            // counter-sync rule recomputes it from the rows.
            self.bump_unread(user_id)?;
        }
        Ok(true)
    }

    /// Bump the per-user unread badge by one, creating the counter row on
    /// first use (the create race resolves to a retryable delta).
    fn bump_unread(&self, user_id: i64) -> Result<()> {
        let bump = self.orm.transaction(|t| {
            t.raw().add_delta("notify_counts", user_id, "unread", 1)?;
            Ok(())
        });
        match bump {
            Err(OrmError::Db(DbError::NoSuchRow { .. })) => {
                match self.orm.create(
                    "notify_counts",
                    &[("user_id", user_id.into()), ("unread", 0.into())],
                ) {
                    Ok(_) | Err(OrmError::Db(DbError::UniqueViolation { .. })) => {}
                    Err(e) => return Err(e.into()),
                }
                self.orm.transaction(|t| {
                    t.raw().add_delta("notify_counts", user_id, "unread", 1)?;
                    Ok(())
                })?;
                Ok(())
            }
            other => Ok(other?),
        }
    }

    /// The user's unread-notification badge (0 when never notified).
    pub fn unread_count(&self, user_id: i64) -> Result<i64> {
        match self.orm.find("notify_counts", user_id)? {
            Some(row) => Ok(row.get_int("unread")?),
            None => Ok(0),
        }
    }

    /// The uncoordinated variant: check the table, then insert — the
    /// check-then-act window admits duplicates.
    pub fn notify_unchecked(&self, user_id: i64, event: &str) -> Result<bool> {
        let schema = self.orm.db().schema("notifications")?;
        let existing = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("notifications", &Predicate::eq("user_id", user_id))?)
        })?;
        for (_, row) in &existing {
            if row.get_str(&schema, "event")? == event {
                return Ok(false);
            }
        }
        std::thread::yield_now(); // the race window
        self.orm.create(
            "notifications",
            &[("user_id", user_id.into()), ("event", event.into())],
        )?;
        Ok(true)
    }

    /// Invariant: no (user, event) pair is notified twice.
    pub fn notifications_unique(&self, user_id: i64) -> Result<bool> {
        let schema = self.orm.db().schema("notifications")?;
        let rows = self.orm.transaction(|t| {
            Ok(t.raw()
                .scan("notifications", &Predicate::eq("user_id", user_id))?)
        })?;
        let mut events: Vec<String> = rows
            .iter()
            .map(|(_, row)| row.get_str(&schema, "event"))
            .collect::<std::result::Result<_, _>>()?;
        let before = events.len();
        events.sort_unstable();
        events.dedup();
        Ok(events.len() == before)
    }

    /// Invariant (Fig. 1b): an invitation is never redeemed past its max.
    pub fn invite_within_limit(&self, invite_id: i64) -> Result<bool> {
        let invite = self.orm.find_required("invites", invite_id)?;
        Ok(invite.get_int("redeems")? <= invite.get_int("max_redeems")?)
    }

    /// Figure 1c: optimistic vote with the version-checked retry loop.
    pub fn vote(&self, poll_id: i64, choice: Choice) -> Result<()> {
        if self.mode == Mode::Confluent {
            // Tallies are pure counters — invariant-confluent. One
            // commutative delta replaces Fig. 1c's whole version-checked
            // retry loop: concurrent votes (same choice or not) merge at
            // install, so there is nothing to validate and nothing to
            // retry.
            let col = match choice {
                Choice::A => "tally_a",
                Choice::B => "tally_b",
            };
            self.orm.transaction(|t| {
                t.raw().add_delta("polls", poll_id, col, 1)?;
                Ok(())
            })?;
            return Ok(());
        }
        if self.mode == Mode::Cured {
            // §7 cure for Fig. 1c: the declarative loop replaces the
            // hand-rolled one, and the field-granular footprint beats the
            // `ver` column — A-votes and B-votes no longer conflict at all.
            let col = match choice {
                Choice::A => "tally_a",
                Choice::B => "tally_b",
            };
            run_occ(&self.orm, &crate::cured_policy(), None, |occ| {
                let poll = occ
                    .read_fields(&self.orm, "polls", poll_id, &[col])?
                    .ok_or(OrmError::RecordNotFound {
                        entity: "polls".into(),
                        id: poll_id,
                    })?;
                let tally = poll.get_int(col)?;
                occ.stage_update("polls", poll_id, &[(col, (tally + 1).into())]);
                Ok(())
            })?;
            return Ok(());
        }
        loop {
            let poll = self.orm.find_required("polls", poll_id)?;
            let ver = poll.get_int("ver")?;
            let (col, tally) = match choice {
                Choice::A => ("tally_a", poll.get_int("tally_a")?),
                Choice::B => ("tally_b", poll.get_int("tally_b")?),
            };
            let pred = Predicate::And(vec![
                Predicate::eq("id", poll_id),
                Predicate::eq("ver", ver),
            ]);
            let affected = self.orm.transaction(|t| {
                Ok(t.raw().update_where(
                    "polls",
                    &pred,
                    &[(col, (tally + 1).into()), ("ver", (ver + 1).into())],
                )?)
            })?;
            if affected == 1 {
                return Ok(());
            }
            // Validation failed: loop and retry with fresh state (Fig. 1c).
        }
    }

    /// Total votes recorded for a poll.
    pub fn poll_totals(&self, poll_id: i64) -> Result<(i64, i64)> {
        let poll = self.orm.find_required("polls", poll_id)?;
        Ok((poll.get_int("tally_a")?, poll.get_int("tally_b")?))
    }

    /// Run [`boot_fsck`] against this instance's database.
    pub fn recover_on_boot(&self) -> Report {
        boot_fsck().recover_on_boot(self.orm.db())
    }
}

/// Mastodon's boot-time recovery pass: a crash (or an ambiguous commit
/// retried) in the unchecked notification path can deliver the same
/// (user, event) twice; boot keeps the earliest row and deletes the rest.
/// The Redis-side timeline is volatile state the app rebuilds lazily — the
/// database rules here cover only what survives a restart.
pub fn boot_fsck() -> BootRecovery {
    BootRecovery::new("mastodon")
        .rule(duplicate_notification_rule())
        .rule(unread_counter_sync_rule())
}

/// The Confluent path's unread badge is a delta column fed by a separate
/// transaction from the notification insert, so a crash between them
/// leaves the badge out of sync with the rows. The rule *recomputes* the
/// expected value instead of flagging the delta column as corruption:
/// any drift (behind after a crash, ahead after a lost insert) is
/// repaired to the row count.
fn unread_counter_sync_rule() -> CheckRule {
    let name = "mastodon:unread-counter-sync";
    CheckRule::new(name, move |db| {
        let (Ok(counts), Ok(schema)) = (db.dump_table("notify_counts"), db.schema("notify_counts"))
        else {
            return Vec::new();
        };
        let (Ok(rows), Ok(nschema)) = (db.dump_table("notifications"), db.schema("notifications"))
        else {
            return Vec::new();
        };
        counts
            .iter()
            .filter_map(|(user_id, row)| {
                let unread = row.get_int(&schema, "unread").ok()?;
                let actual = rows
                    .iter()
                    .filter(|(_, n)| n.get_int(&nschema, "user_id") == Ok(*user_id))
                    .count() as i64;
                (unread != actual).then(|| Violation {
                    rule: name.to_string(),
                    table: "notify_counts".to_string(),
                    row_id: *user_id,
                    message: format!(
                        "unread badge {unread} for user {user_id} but {actual} notification rows"
                    ),
                })
            })
            .collect()
    })
    .with_fix(|db, v| {
        let Ok(schema) = db.schema("notifications") else {
            return false;
        };
        let Ok(rows) = db.dump_table("notifications") else {
            return false;
        };
        let actual = rows
            .iter()
            .filter(|(_, n)| n.get_int(&schema, "user_id") == Ok(v.row_id))
            .count() as i64;
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update(&v.table, v.row_id, &[("unread", actual.into())])
        })
        .is_ok()
    })
}

/// Flag every notification whose (user, event) pair already appeared on a
/// lower id, and delete it on fix.
fn duplicate_notification_rule() -> CheckRule {
    let name = "mastodon:notifications-unique";
    CheckRule::new(name, move |db| {
        let (Ok(mut rows), Ok(schema)) =
            (db.dump_table("notifications"), db.schema("notifications"))
        else {
            return Vec::new();
        };
        rows.sort_by_key(|(id, _)| *id);
        let mut seen: HashSet<(i64, String)> = HashSet::new();
        rows.iter()
            .filter_map(|(id, row)| {
                let key = (
                    row.get_int(&schema, "user_id").ok()?,
                    row.get_str(&schema, "event").ok()?,
                );
                (!seen.insert(key.clone())).then(|| Violation {
                    rule: name.to_string(),
                    table: "notifications".to_string(),
                    row_id: *id,
                    message: format!("duplicate notification {:?} for user {}", key.1, key.0),
                })
            })
            .collect()
    })
    .with_fix(|db, v| {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.delete(&v.table, v.row_id)
        })
        .is_ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_core::locks::{KvSetNxLock, MemLock};
    use adhoc_kv::{Client, Store};
    use adhoc_sim::{LatencyModel, RealClock};
    use adhoc_storage::EngineProfile;

    fn fixture(mode: Mode) -> Mastodon {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        Mastodon::new(orm, kv, Arc::new(MemLock::new()), mode)
    }

    #[test]
    fn notifications_deduplicate_via_setnx() {
        let app = Arc::new(fixture(Mode::AdHoc));
        let delivered: usize = std::thread::scope(|s| {
            (0..6)
                .map(|_| {
                    let app = Arc::clone(&app);
                    s.spawn(move || app.notify_once(7, "mention:42").unwrap() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(delivered, 1, "exactly one winner delivers");
        assert!(app.notifications_unique(7).unwrap());
        // A different event for the same user still goes through.
        assert!(app.notify_once(7, "follow:9").unwrap());
        assert!(app.notifications_unique(7).unwrap());
    }

    #[test]
    fn unchecked_notifications_can_duplicate() {
        let mut duplicated = false;
        for _ in 0..200 {
            let app = Arc::new(fixture(Mode::AdHoc));
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        let _ = app.notify_unchecked(7, "mention:42").unwrap();
                    });
                }
            });
            if !app.notifications_unique(7).unwrap() {
                duplicated = true;
                break;
            }
        }
        assert!(
            duplicated,
            "the check-then-act window must admit duplicates"
        );
    }

    #[test]
    fn timeline_tracks_posts() {
        let app = fixture(Mode::AdHoc);
        app.create_post(7, 1, "hello").unwrap();
        app.create_post(7, 2, "world").unwrap();
        assert_eq!(app.timeline(7).unwrap(), vec![1, 2]);
        assert!(app.timeline_consistent(7).unwrap());
        app.delete_post(7, 1).unwrap();
        assert_eq!(app.timeline(7).unwrap(), vec![2]);
        assert!(app.timeline_consistent(7).unwrap());
    }

    #[test]
    fn concurrent_create_delete_with_correct_lock_stays_consistent() {
        let app = Arc::new(fixture(Mode::AdHoc));
        std::thread::scope(|s| {
            for t in 0..4 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for i in 0..10 {
                        let post_id = t * 100 + i;
                        app.create_post(7, post_id, "x").unwrap();
                        if i % 2 == 0 {
                            app.delete_post(7, post_id).unwrap();
                        }
                    }
                });
            }
        });
        assert!(app.timeline_consistent(7).unwrap());
    }

    #[test]
    fn invite_limit_holds_in_both_modes() {
        for mode in [Mode::AdHoc, Mode::DatabaseTxn] {
            let app = Arc::new(fixture(mode));
            app.seed_invite(1, 10).unwrap();
            let successes: usize = std::thread::scope(|s| {
                (0..6)
                    .map(|_| {
                        let app = Arc::clone(&app);
                        s.spawn(move || {
                            let mut ok = 0;
                            for _ in 0..5 {
                                if app.redeem_invite(1).unwrap() {
                                    ok += 1;
                                }
                            }
                            ok
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(successes, 10, "{mode:?}: exactly max redemptions");
            assert!(app.invite_within_limit(1).unwrap(), "{mode:?}");
            assert_eq!(
                app.orm
                    .find_required("invites", 1)
                    .unwrap()
                    .get_int("redeems")
                    .unwrap(),
                10,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn expired_lease_with_unchecked_expiry_overuses_invites() {
        // §4.1.1 [65]: the TTL is shorter than the critical section and
        // nobody checks `is_valid` — two redeemers read the same count.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        let lease = KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(5));
        let app = Arc::new(
            Mastodon::new(orm, kv, Arc::new(lease), Mode::AdHoc)
                .with_critical_section_delay(Duration::from_millis(12)),
        );
        app.seed_invite(1, 1).unwrap();
        let successes: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let app = Arc::clone(&app);
                    s.spawn(move || app.redeem_invite(1).unwrap() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(
            successes > 1,
            "expired leases must let multiple redeemers through (got {successes})"
        );
    }

    #[test]
    fn expired_lease_breaks_timeline_consistency() {
        // The Table 5b consequence: deleted posts shown in timelines.
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = setup(&db).unwrap();
        let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
        let lease = KvSetNxLock::new(kv.clone()).with_ttl(Duration::from_millis(4));
        let app = Arc::new(
            Mastodon::new(orm, kv, Arc::new(lease), Mode::AdHoc)
                .with_critical_section_delay(Duration::from_millis(10)),
        );
        let mut broken = false;
        for post_id in 0..20 {
            // create & delete race on the same post id: with the lease
            // expiring mid-create, delete interleaves between the DB insert
            // and the timeline add, leaving a dangling timeline entry.
            std::thread::scope(|s| {
                let a = Arc::clone(&app);
                s.spawn(move || {
                    a.create_post(7, post_id, "x").unwrap();
                });
                let b = Arc::clone(&app);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(6));
                    let _ = b.delete_post(7, post_id);
                });
            });
            if !app.timeline_consistent(7).unwrap() {
                broken = true;
                break;
            }
        }
        assert!(
            broken,
            "an expired lease must eventually dangle a timeline entry"
        );
    }

    #[test]
    fn poll_votes_are_never_lost() {
        let app = Arc::new(fixture(Mode::AdHoc));
        app.seed_poll(1).unwrap();
        std::thread::scope(|s| {
            for t in 0..6 {
                let app = Arc::clone(&app);
                s.spawn(move || {
                    for _ in 0..20 {
                        app.vote(1, if t % 2 == 0 { Choice::A } else { Choice::B })
                            .unwrap();
                    }
                });
            }
        });
        let (a, b) = app.poll_totals(1).unwrap();
        assert_eq!(a, 60);
        assert_eq!(b, 60);
        assert_eq!(
            app.orm
                .find_required("polls", 1)
                .unwrap()
                .get_int("ver")
                .unwrap(),
            120
        );
    }
    #[test]
    fn invite_row_footprints_are_localized_and_independent() {
        let app = fixture(Mode::AdHoc);
        let fps: Vec<_> = (1..=6)
            .map(|id| {
                app.seed_invite(id, 5).unwrap();
                crate::observed_footprint(&app.orm, |t| {
                    t.raw().update("invites", id, &[("redeems", 0.into())])?;
                    Ok(())
                })
                .unwrap()
                .1
            })
            .collect();
        crate::test_support::assert_localized_and_independent(&fps);
    }
}
