//! ORM error surface.

use adhoc_storage::DbError;
use std::fmt;

/// Every error the ORM can surface to application code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrmError {
    /// Underlying database error.
    Db(DbError),
    /// Optimistic-lock conflict: the row's `lock_version` moved underneath
    /// us (Active Record's `ActiveRecord::StaleObjectError`).
    StaleObject {
        /// Entity name.
        entity: String,
        /// Primary key of the stale object.
        id: i64,
    },
    /// An application-level `validates` rule failed.
    ValidationFailed {
        /// Entity name.
        entity: String,
        /// Column the rule applies to.
        column: String,
        /// The violated rule ("uniqueness", "presence", "non_negative").
        rule: &'static str,
    },
    /// Entity name not registered.
    UnknownEntity {
        /// The unknown name.
        entity: String,
    },
    /// `find` found nothing where a record was required.
    RecordNotFound {
        /// Entity name.
        entity: String,
        /// The missing primary key.
        id: i64,
    },
}

impl OrmError {
    /// Retryable in the database-driver sense (deadlock victim etc.).
    /// Stale objects are *application-level* conflicts: the caller decides
    /// whether to re-read and retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, OrmError::Db(e) if e.is_retryable())
    }
}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Db(e)
    }
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::Db(e) => write!(f, "database error: {e}"),
            OrmError::StaleObject { entity, id } => {
                write!(f, "stale object: {entity} #{id} was updated concurrently")
            }
            OrmError::ValidationFailed {
                entity,
                column,
                rule,
            } => write!(f, "validation failed: {entity}.{column} violates {rule}"),
            OrmError::UnknownEntity { entity } => write!(f, "unknown entity {entity:?}"),
            OrmError::RecordNotFound { entity, id } => {
                write!(f, "record not found: {entity} #{id}")
            }
        }
    }
}

impl std::error::Error for OrmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrmError::Db(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_db_errors() {
        assert!(OrmError::Db(DbError::Deadlock { txn: 1 }).is_retryable());
        assert!(!OrmError::StaleObject {
            entity: "post".into(),
            id: 1
        }
        .is_retryable());
        assert!(!OrmError::ValidationFailed {
            entity: "sku".into(),
            column: "quantity".into(),
            rule: "non_negative"
        }
        .is_retryable());
    }

    #[test]
    fn display_and_source() {
        let e = OrmError::Db(DbError::Deadlock { txn: 3 });
        assert!(e.to_string().contains("deadlock"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(
            std::error::Error::source(&OrmError::UnknownEntity { entity: "x".into() }).is_none()
        );
    }
}
