//! Request types: one endpoint per studied scenario.

use adhoc_core::resilience::Workload;
use std::time::Duration;

/// A named request type over one of the eight studied applications.
///
/// Each endpoint maps onto one of the catalog scenarios the apps model;
/// the mixed workload draws endpoints by weight so every application is
/// exercised in one open-loop run, the way a shared web tier would see
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Broadleaf: add an item to a cart (Fig. 1a read-modify-write).
    BroadleafAddToCart,
    /// Broadleaf: check out against SKU stock.
    BroadleafCheckout,
    /// Discourse: create a post (sequenced post numbers).
    DiscourseCreatePost,
    /// Discourse: like a post (counter RMW).
    DiscourseLikePost,
    /// JumpServer: grant a user access to an asset.
    JumpserverGrant,
    /// Mastodon: vote on a poll (Fig. 1c optimistic loop).
    MastodonVote,
    /// Mastodon: read a home timeline (the read endpoint degraded mode
    /// keeps serving).
    MastodonTimeline,
    /// Redmine: advance an issue's workflow.
    RedmineAdvanceIssue,
    /// Saleor: allocate an order item against warehouse stock.
    SaleorAllocate,
    /// SCM suite: transfer between two accounts.
    ScmTransfer,
    /// Spree: decrement SKU stock for an order.
    SpreeDecrementStock,
    /// Spree: attach a payment to an order.
    SpreeAddPayment,
}

impl Endpoint {
    /// Every endpoint, in a fixed order (workload weight tables index
    /// into this).
    pub const ALL: [Endpoint; 12] = [
        Endpoint::BroadleafAddToCart,
        Endpoint::BroadleafCheckout,
        Endpoint::DiscourseCreatePost,
        Endpoint::DiscourseLikePost,
        Endpoint::JumpserverGrant,
        Endpoint::MastodonVote,
        Endpoint::MastodonTimeline,
        Endpoint::RedmineAdvanceIssue,
        Endpoint::SaleorAllocate,
        Endpoint::ScmTransfer,
        Endpoint::SpreeDecrementStock,
        Endpoint::SpreeAddPayment,
    ];

    /// The studied application this endpoint belongs to (the front-door
    /// registry key in [`adhoc_apps::admission::APPS`]).
    pub fn app(self) -> &'static str {
        match self {
            Endpoint::BroadleafAddToCart | Endpoint::BroadleafCheckout => "broadleaf",
            Endpoint::DiscourseCreatePost | Endpoint::DiscourseLikePost => "discourse",
            Endpoint::JumpserverGrant => "jumpserver",
            Endpoint::MastodonVote | Endpoint::MastodonTimeline => "mastodon",
            Endpoint::RedmineAdvanceIssue => "redmine",
            Endpoint::SaleorAllocate => "saleor",
            Endpoint::ScmTransfer => "scm-suite",
            Endpoint::SpreeDecrementStock | Endpoint::SpreeAddPayment => "spree",
        }
    }

    /// Whether the endpoint mutates state (read-only degraded mode refuses
    /// writes and keeps serving reads).
    pub fn workload(self) -> Workload {
        match self {
            Endpoint::MastodonTimeline => Workload::Read,
            _ => Workload::Write,
        }
    }

    /// Service cost in capacity units (roughly: wire hops the handler's
    /// transaction performs, so a checkout costs more of a tick's budget
    /// than a like).
    pub fn cost(self) -> u32 {
        match self {
            Endpoint::MastodonTimeline => 1,
            Endpoint::DiscourseLikePost | Endpoint::MastodonVote => 2,
            Endpoint::BroadleafAddToCart
            | Endpoint::DiscourseCreatePost
            | Endpoint::JumpserverGrant
            | Endpoint::RedmineAdvanceIssue
            | Endpoint::SpreeDecrementStock => 3,
            Endpoint::BroadleafCheckout | Endpoint::SaleorAllocate | Endpoint::ScmTransfer => 4,
            Endpoint::SpreeAddPayment => 3,
        }
    }

    /// Default mixed-workload weight (reads dominate, like production).
    pub fn weight(self) -> u32 {
        match self {
            Endpoint::MastodonTimeline => 30,
            Endpoint::DiscourseLikePost => 15,
            Endpoint::MastodonVote => 10,
            Endpoint::BroadleafAddToCart => 10,
            Endpoint::DiscourseCreatePost => 8,
            Endpoint::SpreeDecrementStock => 7,
            Endpoint::BroadleafCheckout => 5,
            Endpoint::SaleorAllocate => 5,
            Endpoint::ScmTransfer => 4,
            Endpoint::RedmineAdvanceIssue => 3,
            Endpoint::SpreeAddPayment => 2,
            Endpoint::JumpserverGrant => 1,
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::BroadleafAddToCart => "broadleaf.add_to_cart",
            Endpoint::BroadleafCheckout => "broadleaf.check_out",
            Endpoint::DiscourseCreatePost => "discourse.create_post",
            Endpoint::DiscourseLikePost => "discourse.like_post",
            Endpoint::JumpserverGrant => "jumpserver.grant",
            Endpoint::MastodonVote => "mastodon.vote",
            Endpoint::MastodonTimeline => "mastodon.timeline",
            Endpoint::RedmineAdvanceIssue => "redmine.advance_issue",
            Endpoint::SaleorAllocate => "saleor.allocate",
            Endpoint::ScmTransfer => "scm.transfer",
            Endpoint::SpreeDecrementStock => "spree.decrement_stock",
            Endpoint::SpreeAddPayment => "spree.add_payment",
        }
    }
}

/// One open-loop request: a client from the (possibly million-strong)
/// population asking for one endpoint against one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Monotone request id (unique within a run).
    pub id: u64,
    /// Client identity, zipfian-drawn from the modeled population — the
    /// rate limiter keys on this.
    pub client: u64,
    /// Object key the handler targets, zipfian-drawn from the seeded
    /// object population (hot rows are hot for every client).
    pub key: u64,
    /// Which handler to run.
    pub endpoint: Endpoint,
    /// Arrival instant on the virtual-clock timeline (open loop: fixed by
    /// the arrival process, independent of completions).
    pub arrived: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_every_endpoint_and_sum_to_100() {
        let total: u32 = Endpoint::ALL.iter().map(|e| e.weight()).sum();
        assert_eq!(total, 100, "weights are percentages");
        for e in Endpoint::ALL {
            assert!(e.weight() > 0);
            assert!(e.cost() > 0);
        }
    }

    #[test]
    fn every_endpoint_maps_to_a_registered_app() {
        for e in Endpoint::ALL {
            assert!(
                adhoc_apps::admission::APPS.contains(&e.app()),
                "{} -> {}",
                e.label(),
                e.app()
            );
        }
    }

    #[test]
    fn only_the_timeline_is_a_read() {
        for e in Endpoint::ALL {
            let read = e == Endpoint::MastodonTimeline;
            assert_eq!(e.workload() == Workload::Read, read);
        }
    }
}
