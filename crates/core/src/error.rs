//! Toolkit-level error type.

use crate::locks::LockError;
use adhoc_orm::OrmError;
use adhoc_storage::DbError;
use std::fmt;

/// Any failure surfaced by the toolkit: database, ORM, or lock backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolkitError {
    /// Underlying database error.
    Db(DbError),
    /// Underlying ORM error.
    Orm(OrmError),
    /// Lock backend error.
    Lock(LockError),
    /// An optimistic transaction's continuation id was not found
    /// (expired or never saved).
    NoSuchContinuation {
        /// The unknown continuation id.
        id: u64,
    },
    /// A [`RetryPolicy`](crate::retry::RetryPolicy)-driven operation kept
    /// failing retryably until its attempt budget or deadline ran out.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl ToolkitError {
    /// True for engine errors a caller handles by retrying (§3.4).
    pub fn is_retryable(&self) -> bool {
        match self {
            ToolkitError::Db(e) => e.is_retryable(),
            ToolkitError::Orm(e) => e.is_retryable(),
            // A watchdog-aborted acquisition is the application-lock
            // analogue of an engine deadlock victim: retry.
            ToolkitError::Lock(LockError::Deadlock { .. }) => true,
            _ => false,
        }
    }
}

impl From<DbError> for ToolkitError {
    fn from(e: DbError) -> Self {
        ToolkitError::Db(e)
    }
}

impl From<OrmError> for ToolkitError {
    fn from(e: OrmError) -> Self {
        ToolkitError::Orm(e)
    }
}

impl From<LockError> for ToolkitError {
    fn from(e: LockError) -> Self {
        ToolkitError::Lock(e)
    }
}

impl fmt::Display for ToolkitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolkitError::Db(e) => write!(f, "{e}"),
            ToolkitError::Orm(e) => write!(f, "{e}"),
            ToolkitError::Lock(e) => write!(f, "{e}"),
            ToolkitError::NoSuchContinuation { id } => {
                write!(f, "no saved optimistic transaction with id {id}")
            }
            ToolkitError::RetriesExhausted { attempts } => {
                write!(f, "gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ToolkitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_retryability() {
        let e: ToolkitError = DbError::Deadlock { txn: 1 }.into();
        assert!(e.is_retryable());
        let e: ToolkitError = OrmError::StaleObject {
            entity: "p".into(),
            id: 1,
        }
        .into();
        assert!(!e.is_retryable());
        let e: ToolkitError = LockError::Timeout { key: "k".into() }.into();
        assert!(!e.is_retryable());
        let e: ToolkitError = LockError::Deadlock { key: "k".into() }.into();
        assert!(e.is_retryable());
        assert!(!ToolkitError::NoSuchContinuation { id: 7 }.is_retryable());
        // The budget is spent; retrying *more* is not the answer.
        assert!(!ToolkitError::RetriesExhausted { attempts: 3 }.is_retryable());
    }

    #[test]
    fn display_passthrough() {
        let e: ToolkitError = LockError::Backend("x".into()).into();
        assert!(e.to_string().contains('x'));
        assert!(ToolkitError::NoSuchContinuation { id: 7 }
            .to_string()
            .contains('7'));
    }
}
