//! Epoch-batched commit-timestamp spine.
//!
//! PR 3's sharded commit path still funneled every commit through two
//! global serialization points: one `fetch_add` on the timestamp counter
//! per commit, and — far worse — a `BinaryHeap` under a mutex plus a
//! condvar broadcast for every out-of-order completion of the `applied_ts`
//! watermark. This module replaces both:
//!
//! * **Per-thread timestamp blocks.** Threads draw *blocks* of commit
//!   timestamps from the global counter and retire them one commit at a
//!   time from a thread-local slot, so a thread committing back-to-back
//!   touches the shared counter once per block instead of once per commit.
//!   Blocks are *adaptive*: a slot only grows its block size while its
//!   completions keep hitting the in-order fast path (a mono-writer
//!   epoch), and collapses back to direct draws the moment commits
//!   interleave. That keeps the watermark dense exactly when threads
//!   interleave — the case where unclaimed block remainders would
//!   otherwise stall visibility.
//! * **Revocable remainders.** An unclaimed block remainder is published
//!   in the slot as a packed `(limit, remaining)` word. The watermark
//!   sweep *revokes* a remainder (one CAS) when it needs the timestamps to
//!   advance: revoked timestamps were never assigned to any commit, so the
//!   sweep treats them as holes and skips the whole range at once.
//! * **Completion ring.** Out-of-order completions publish into a
//!   fixed-size ring of atomics (`ring[ts % RING] = ts`) instead of a
//!   heap under a mutex. A single sweeper (mutex `try_lock`, never
//!   blocking) batch-advances `applied` over every consecutive published
//!   or revocable timestamp and then publishes the watermark with one
//!   store — the watermark advances *per epoch*, not per commit. In-order
//!   completions still advance with one CAS and touch neither the ring
//!   nor any lock.
//!
//! ## Contracts preserved
//!
//! * **Acked ⇒ visible**: [`EpochSpine::complete`] returns only once
//!   `applied >= ts`, so a committer's next begin (and everyone else's)
//!   sees its commit — unchanged from the heap design.
//! * **Deterministic schedules**: under the cooperative scheduler the
//!   sweep revokes remainders synchronously and never parks (there is no
//!   yield point between drawing a timestamp and retiring it, so every
//!   gap at a scheduling boundary is an unclaimed remainder). Parking
//!   under the scheduler would deadlock the run; it is asserted
//!   unreachable.
//! * **Monotonic watermark**: `applied` only moves via the in-order CAS
//!   or the sweeper's `fetch_max`, so concurrent advances never move the
//!   snapshot backwards.

use crate::table::CommitTs;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Completion-ring capacity. Publications are bounded to `RING` ahead of
/// the watermark (see [`EpochSpine::publish`]), so a slot can never hold
/// two live timestamps. Must be a power of two.
const RING: usize = 4096;

/// Per-thread block slots. Threads hash onto slots by a process-wide
/// counter; collisions are correct (the slot word is CAS-managed), just
/// less batched.
const TS_SLOTS: usize = 64;

/// Bits reserved in the slot word for the unclaimed-count field.
/// Block sizes must stay below `1 << BLOCK_BITS`.
const BLOCK_BITS: u32 = 6;

/// Largest adaptive block: one shared-counter touch per this many commits.
const BLOCK_MAX: u64 = 16;

/// In-order completion streak after which a slot is considered a
/// mono-writer epoch and starts drawing full blocks.
const GROW_STREAK: u32 = 8;

/// One per-thread timestamp slot: a packed `(limit << BLOCK_BITS) | rem`
/// word whose unclaimed range is `[limit - rem, limit)`, plus the
/// in-order-completion streak that drives the adaptive block size.
/// Padded so slots never share a cache line.
#[repr(align(128))]
#[derive(Default)]
struct TsSlot {
    block: AtomicU64,
    streak: AtomicU32,
}

#[inline]
fn pack(limit: u64, rem: u64) -> u64 {
    debug_assert!(rem < (1 << BLOCK_BITS));
    (limit << BLOCK_BITS) | rem
}

#[inline]
fn unpack(v: u64) -> (u64, u64) {
    (v >> BLOCK_BITS, v & ((1 << BLOCK_BITS) - 1))
}

/// Process-wide slot assignment: threads pick up a slot index once and
/// keep it for life. Indexes wrap, so long-running processes with many
/// short-lived threads share slots — handled by the CAS protocol.
fn slot_index() -> usize {
    static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % TS_SLOTS;
    }
    SLOT.with(|s| *s)
}

/// The commit-timestamp allocator and `applied` watermark, fused: both
/// sides must cooperate for revocation to be sound.
pub(crate) struct EpochSpine {
    /// Timestamp allocator frontier: every ts in `[1, next]` has been
    /// handed to a block or a direct draw.
    next: AtomicU64,
    /// Snapshot watermark: every commit with `ts <= applied` is fully
    /// installed (or its timestamp was revoked unused).
    applied: AtomicU64,
    /// Out-of-order completion ring: `ring[ts & (RING-1)] == ts` marks a
    /// published, not-yet-swept completion. Entries at or below `applied`
    /// are dead and simply overwritten by later publications.
    ring: Box<[AtomicU64]>,
    /// Per-thread block slots.
    slots: Box<[TsSlot]>,
    /// At most one sweeper at a time; only ever `try_lock`ed, so the
    /// sweep never blocks anyone — losers know the winner will observe
    /// their (already published) state.
    sweep: Mutex<()>,
    /// Parking lot for threads waiting on watermark coverage.
    park: Mutex<()>,
    cv: Condvar,
    /// Dekker pairing with `applied` (both SeqCst): a parker increments
    /// this before re-reading `applied`; an advancer reads it after
    /// publishing `applied`. Either the advancer sees the parker (and
    /// notifies under `park`) or the parker sees the advance.
    parked: AtomicUsize,
}

impl EpochSpine {
    pub(crate) fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            ring: (0..RING).map(|_| AtomicU64::new(0)).collect(),
            slots: (0..TS_SLOTS).map(|_| TsSlot::default()).collect(),
            sweep: Mutex::new(()),
            park: Mutex::new(()),
            cv: Condvar::new(),
            parked: AtomicUsize::new(0),
        }
    }

    /// The snapshot new begins read at.
    #[inline]
    pub(crate) fn snapshot(&self) -> CommitTs {
        self.applied.load(Ordering::Acquire)
    }

    /// The allocator frontier: no timestamp above this has been drawn.
    pub(crate) fn last_drawn(&self) -> CommitTs {
        self.next.load(Ordering::Acquire)
    }

    /// Draw one commit timestamp. Must be called with the write-set shard
    /// locks held so every shard log stays timestamp-ordered.
    pub(crate) fn draw(&self) -> CommitTs {
        let slot = &self.slots[slot_index()];
        loop {
            let v = slot.block.load(Ordering::Relaxed);
            let (limit, rem) = unpack(v);
            if rem > 0 {
                // Claim the bottom of the unclaimed range.
                let ts = limit - rem;
                if slot
                    .block
                    .compare_exchange_weak(
                        v,
                        pack(limit, rem - 1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return ts;
                }
                continue; // revoked or shared-slot contention: re-read
            }
            let size = if slot.streak.load(Ordering::Relaxed) >= GROW_STREAK {
                BLOCK_MAX
            } else {
                1
            };
            if size <= 1 {
                return self.next.fetch_add(1, Ordering::Relaxed) + 1;
            }
            let base = self.next.fetch_add(size, Ordering::Relaxed);
            let ts = base + 1;
            // Publish the remainder [base + 2, base + size + 1) so the
            // sweep can revoke it if we go idle.
            let installed = slot
                .block
                .compare_exchange(
                    v,
                    pack(base + size + 1, size - 1),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok();
            if !installed {
                // A thread sharing this slot refilled it first. Our
                // reserved remainder can never be revoked through the
                // slot, so retire it as holes right now — otherwise the
                // watermark could never pass it.
                for hole in (base + 2)..(base + size + 1) {
                    self.publish(hole);
                }
            }
            return ts;
        }
    }

    /// Retire a drawn timestamp and wait until the watermark covers it,
    /// so the committer's next begin (and everyone else's) sees the
    /// commit. Called *after* the shard guards are dropped.
    pub(crate) fn complete(&self, ts: CommitTs) {
        // In-order fast path: a consecutive completion advances the
        // watermark with one CAS and touches neither the ring nor a lock.
        if self
            .applied
            .compare_exchange(ts - 1, ts, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            let slot = &self.slots[slot_index()];
            let streak = slot.streak.load(Ordering::Relaxed);
            if streak < u32::MAX {
                slot.streak.store(streak + 1, Ordering::Relaxed);
            }
            if self.parked.load(Ordering::SeqCst) > 0 {
                // Successors may be parked on us: sweep what our advance
                // unblocked, then wake the parking lot (the sweep alone
                // is not enough — see `wait_covered`'s re-check).
                self.try_sweep();
                let _guard = self.park.lock();
                self.cv.notify_all();
            }
            return;
        }
        // Out of order: publish into the ring and wait for coverage.
        self.slots[slot_index()].streak.store(0, Ordering::Relaxed);
        self.publish(ts);
        self.wait_covered(ts);
    }

    /// Publish a completed (or revoked-as-hole) timestamp into the ring.
    /// Bounded to `RING` ahead of the watermark so a ring slot never
    /// holds two live timestamps.
    fn publish(&self, ts: CommitTs) {
        if ts > RING as u64 {
            self.wait_covered(ts - RING as u64);
        }
        self.ring[(ts as usize) & (RING - 1)].store(ts, Ordering::Release);
    }

    /// Block until `applied >= ts`, sweeping (and revoking unclaimed
    /// block remainders) on the way. Never parks under the deterministic
    /// scheduler: every gap at a scheduling boundary is a revocable
    /// remainder, so the synchronous sweep always closes it.
    pub(crate) fn wait_covered(&self, ts: CommitTs) {
        if self.applied.load(Ordering::Acquire) >= ts {
            return;
        }
        loop {
            // Order matters: advertise the park *before* sweeping, so an
            // advancer that publishes coverage is guaranteed to either see
            // us (and notify under `park`) or be seen by our re-check.
            self.parked.fetch_add(1, Ordering::SeqCst);
            let swept = self.try_sweep();
            if self.applied.load(Ordering::SeqCst) >= ts {
                self.parked.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            if !swept {
                // Lost the sweep race. The holder's walk may predate the
                // publications we need, and its notify can fire while it
                // still holds the sweep lock — so a park here could sleep
                // on information nobody will ever refresh (every other
                // thread may re-park the same way and the holder may then
                // exit). Never park on a sweep we didn't run: retry until
                // the lock frees and we observe the frontier ourselves.
                self.parked.fetch_sub(1, Ordering::SeqCst);
                std::thread::yield_now();
                continue;
            }
            // Our own sweep saw the gap claimed and in flight: its
            // completer must advance past it and will check `parked`
            // (which we set before sweeping) when it does.
            {
                let mut guard = self.park.lock();
                if self.applied.load(Ordering::SeqCst) < ts {
                    assert!(
                        !adhoc_sim::sched::under_scheduler(),
                        "watermark parked under the deterministic scheduler \
                         (ts {ts}): a commit is suspended mid-install, which \
                         no yield point should allow"
                    );
                    self.cv.wait(&mut guard);
                }
            }
            self.parked.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// One sweep attempt: batch-advance `applied` over every consecutive
    /// published or revocable timestamp, then publish the new watermark
    /// with a single `fetch_max`. Never blocks — returns `false` without
    /// sweeping if another sweeper holds the lock. Callers must not treat
    /// `false` as evidence about the frontier: the holder's walk may
    /// predate anything published since it started.
    fn try_sweep(&self) -> bool {
        let Some(_sweep) = self.sweep.try_lock() else {
            return false;
        };
        let start = self.applied.load(Ordering::Acquire);
        let mut applied = start;
        loop {
            let next = applied + 1;
            if self.ring[(next as usize) & (RING - 1)].load(Ordering::Acquire) == next {
                applied = next;
                continue;
            }
            match self.try_revoke_containing(next) {
                // The whole revoked range [next, limit) was never
                // assigned to any commit: skip it at once.
                Some(limit) => applied = limit - 1,
                // `next` is claimed and in flight; its completer will
                // advance past it.
                None => break,
            }
        }
        if applied != start {
            // fetch_max, not store: an in-order CAS may have advanced
            // `applied` past our batch while we swept.
            self.applied.fetch_max(applied, Ordering::SeqCst);
        }
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock();
            self.cv.notify_all();
        }
        true
    }

    /// Revoke the unclaimed block remainder containing `next`, if any
    /// slot holds one. Returns the (exclusive) end of the revoked range.
    fn try_revoke_containing(&self, next: CommitTs) -> Option<CommitTs> {
        'rescan: loop {
            for slot in self.slots.iter() {
                let v = slot.block.load(Ordering::Acquire);
                let (limit, rem) = unpack(v);
                if rem == 0 || !(limit - rem..limit).contains(&next) {
                    continue;
                }
                // `next` is the watermark gap, so everything below it is
                // applied — the unclaimed range cannot start below it.
                debug_assert_eq!(limit - rem, next);
                if slot
                    .block
                    .compare_exchange(v, pack(limit, 0), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    slot.streak.store(0, Ordering::Relaxed);
                    return Some(limit);
                }
                // The owner claimed from (or refilled) the slot while we
                // looked: start over with fresh state.
                continue 'rescan;
            }
            return None;
        }
    }

    /// Advance both frontiers to cover a recovered commit (boot-time WAL
    /// replay) and invalidate every cached block: a slot refilled before
    /// recovery could otherwise hand out timestamps at or below the
    /// recovered watermark. Dropped remainders above the watermark are
    /// retired as holes so the sweep never waits on them.
    pub(crate) fn note_recovered(&self, ts: CommitTs) {
        self.next.fetch_max(ts, Ordering::SeqCst);
        self.applied.fetch_max(ts, Ordering::SeqCst);
        for slot in self.slots.iter() {
            loop {
                let v = slot.block.load(Ordering::Acquire);
                let (limit, rem) = unpack(v);
                if rem == 0 {
                    break;
                }
                if slot
                    .block
                    .compare_exchange(v, pack(limit, 0), Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                for hole in (limit - rem)..limit {
                    if hole > self.applied.load(Ordering::Acquire) {
                        self.publish(hole);
                    }
                }
                break;
            }
            slot.streak.store(0, Ordering::Relaxed);
        }
        self.try_sweep();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_order_draws_advance_without_parking() {
        let spine = EpochSpine::new();
        for _ in 0..100 {
            let ts = spine.draw();
            spine.complete(ts);
            assert_eq!(spine.snapshot(), ts);
        }
    }

    #[test]
    fn blocks_grow_after_a_streak_and_timestamps_stay_unique() {
        let spine = EpochSpine::new();
        let mut seen = std::collections::HashSet::new();
        // 205 commits: past the growth streak and not a multiple of the
        // block size, so the last block has a live unclaimed remainder.
        for _ in 0..205 {
            let ts = spine.draw();
            assert!(seen.insert(ts), "timestamp {ts} drawn twice");
            spine.complete(ts);
        }
        // After GROW_STREAK in-order completions the slot draws blocks,
        // so the allocator frontier outruns the number of commits.
        assert!(spine.last_drawn() > 205);
        // Every drawn-but-unclaimed timestamp is revocable: the watermark
        // covers everything the moment we ask it to.
        spine.wait_covered(spine.last_drawn());
        assert_eq!(spine.snapshot(), spine.last_drawn());
    }

    #[test]
    fn out_of_order_completion_waits_for_the_gap() {
        let spine = Arc::new(EpochSpine::new());
        let a = spine.draw();
        let b = spine.draw();
        assert!(b > a);
        let spine2 = Arc::clone(&spine);
        let waiter = std::thread::spawn(move || {
            // Completes out of order; must block until `a` retires.
            spine2.complete(b);
            spine2.snapshot()
        });
        while spine.parked.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert!(spine.snapshot() < b);
        spine.complete(a);
        assert!(waiter.join().unwrap() >= b);
    }

    #[test]
    fn revocation_skips_abandoned_remainders() {
        let spine = EpochSpine::new();
        // Grow the block...
        for _ in 0..=GROW_STREAK {
            let ts = spine.draw();
            spine.complete(ts);
        }
        let ts = spine.draw();
        spine.complete(ts);
        // ...then demand coverage of the whole drawn range: the sweep
        // must revoke the unclaimed remainder rather than stall.
        let frontier = spine.last_drawn();
        assert!(frontier > ts);
        spine.wait_covered(frontier);
        assert!(spine.snapshot() >= frontier);
    }

    #[test]
    fn note_recovered_invalidates_cached_blocks() {
        let spine = EpochSpine::new();
        for _ in 0..=GROW_STREAK {
            let ts = spine.draw();
            spine.complete(ts);
        }
        let _block_head = spine.draw(); // leaves a cached remainder
        let far = spine.last_drawn() + 1000;
        spine.note_recovered(far);
        // Post-recovery draws must land above the recovered frontier.
        let ts = spine.draw();
        assert!(ts > far, "stale block timestamp {ts} <= recovered {far}");
    }

    #[test]
    fn concurrent_commit_stress_keeps_the_watermark_exact() {
        let spine = Arc::new(EpochSpine::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let spine = Arc::clone(&spine);
                std::thread::spawn(move || {
                    let mut max = 0;
                    for _ in 0..2000 {
                        let ts = spine.draw();
                        spine.complete(ts);
                        // Acked ⇒ visible, immediately.
                        assert!(spine.snapshot() >= ts);
                        max = max.max(ts);
                    }
                    max
                })
            })
            .collect();
        let max = threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .max()
            .unwrap();
        assert!(spine.snapshot() >= max);
        // Whatever remainders are still cached must be revocable.
        spine.wait_covered(spine.last_drawn());
        assert_eq!(spine.snapshot(), spine.last_drawn());
    }
}
