//! Commit-time fault points: `CommitFailed` (honest rollback) vs
//! `CrashAfterDurable` (commit survives, acknowledgement doesn't). Both
//! surface the same `DbError::ConnectionLost`, so a client cannot tell the
//! two cases apart — the §3.4.2 ambiguity the paper's crash-handling
//! strategies all wrestle with.

use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
use adhoc_storage::{Column, ColumnType, Database, DbError, EngineProfile, Schema, Value};

fn db_with_table() -> Database {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn insert_row(db: &Database, id: i64) -> Result<(), DbError> {
    let mut txn = db.begin();
    txn.insert("t", &[("id", Value::Int(id)), ("v", Value::Int(1))])?;
    txn.commit()
}

#[test]
fn commit_failed_rolls_back_and_reports_connection_lost() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CommitFailed, &[0])],
    ));
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::ConnectionLost { .. }));
    assert_eq!(
        db.latest_committed("t", 1).unwrap(),
        None,
        "nothing became durable"
    );
    assert_eq!(db.stats().commits, 0);
    assert_eq!(db.stats().aborts, 1);
    // The engine rolled back cleanly, so re-submitting is safe.
    insert_row(&db, 1).unwrap();
    assert!(db.latest_committed("t", 1).unwrap().is_some());
}

#[test]
fn crash_after_durable_commits_but_reports_connection_lost() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    ));
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::ConnectionLost { .. }));
    assert!(
        db.latest_committed("t", 1).unwrap().is_some(),
        "the commit actually happened"
    );
    assert_eq!(db.stats().commits, 1);
    // Blind re-submission — what a naive retry-on-error wrapper would do —
    // now collides with the ghost of the acknowledged-but-unreported commit.
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::UniqueViolation { .. }));
}

#[test]
fn connection_lost_is_not_blindly_retried_by_the_dbt_wrapper() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    ));
    // run_with_retries only retries honest transient errors; an ambiguous
    // ConnectionLost is surfaced to the caller on the first attempt.
    let result = db.run_with_retries(db.default_isolation(), 5, |txn| {
        txn.insert("t", &[("id", Value::Int(9)), ("v", Value::Int(1))])
    });
    assert!(matches!(result, Err(DbError::ConnectionLost { .. })));
    assert_eq!(db.stats().commits, 1, "exactly one (unacknowledged) commit");
}

#[test]
fn fault_free_plan_changes_nothing() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(1, vec![]));
    insert_row(&db, 1).unwrap();
    assert_eq!(db.stats().commits, 1);
}

// --- Partition, deadline, and circuit-breaker resilience ------------------

use adhoc_sim::{CircuitBreaker, Deadline, LatencyModel, OpClass, VirtualClock};
use adhoc_storage::DbConfig;
use std::sync::Arc;
use std::time::Duration;

fn networked_db_with_table(clock: adhoc_sim::SharedClock) -> Database {
    let db = Database::new(DbConfig::networked(
        EngineProfile::PostgresLike,
        clock,
        LatencyModel::zero(),
    ));
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db
}

#[test]
fn statement_partition_is_unambiguous_and_retryable() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::DbPartitioned, &[0])],
    ));
    let err = insert_row(&db, 1).unwrap_err();
    // The statement never reached the engine, so unlike ConnectionLost the
    // failure is unambiguous and the classification allows a retry.
    assert!(matches!(err, DbError::Partitioned { .. }));
    assert!(err.is_retryable());
    assert_eq!(db.latest_committed("t", 1).unwrap(), None);
    insert_row(&db, 1).unwrap();
    assert_eq!(db.stats().commits, 1, "the retry applied exactly once");
}

#[test]
fn run_with_retries_rides_out_a_statement_partition() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::DbPartitioned, &[0, 1])],
    ));
    db.run_with_retries(db.default_isolation(), 5, |txn| {
        txn.insert("t", &[("id", Value::Int(9)), ("v", Value::Int(1))])
    })
    .unwrap();
    assert_eq!(db.stats().commits, 1);
}

#[test]
fn transaction_deadline_fails_fast_before_any_statement() {
    let clock = Arc::new(VirtualClock::new());
    let db = networked_db_with_table(clock.clone());
    let deadline = Deadline::at(Duration::from_millis(50));
    clock.advance(Duration::from_millis(100));
    let mut txn = db.begin().with_deadline(deadline);
    let err = txn
        .insert("t", &[("id", Value::Int(1)), ("v", Value::Int(1))])
        .unwrap_err();
    assert!(matches!(err, DbError::DeadlineExceeded { .. }));
    // Fail-fast rejections must not feed back into retry loops.
    assert!(!err.is_retryable());
    txn.abort();
    assert_eq!(db.latest_committed("t", 1).unwrap(), None);
}

#[test]
fn deadline_caps_lock_waits_below_the_engine_timeout() {
    let clock = adhoc_sim::RealClock::shared();
    let mut config = DbConfig::networked(
        EngineProfile::PostgresLike,
        clock.clone(),
        LatencyModel::zero(),
    );
    config.lock_wait_timeout = Duration::from_secs(30);
    let db = Database::new(config);
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    insert_row(&db, 1).unwrap();

    // Holder: an uncommitted exclusive record lock.
    let mut holder = db.begin();
    holder.update("t", 1, &[("v", Value::Int(2))]).unwrap();

    // Waiter: a 50 ms deadline caps the wait far below the 30 s engine
    // timeout, so the overload can't pile requests up behind a dead one.
    let mut waiter = db
        .begin()
        .with_deadline(Deadline::after(&*clock, Duration::from_millis(50)));
    let started = std::time::Instant::now();
    let err = waiter.update("t", 1, &[("v", Value::Int(3))]).unwrap_err();
    assert!(matches!(err, DbError::LockWaitTimeout { .. }));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "wait was capped by the deadline, not the engine timeout"
    );
    waiter.abort();
    holder.commit().unwrap();
}

#[test]
fn db_breaker_opens_after_partition_failures_and_recovers() {
    let clock = Arc::new(VirtualClock::new());
    let db = networked_db_with_table(clock.clone());
    let plan = FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::DbPartitioned, &[0, 1])],
    );
    db.inject_faults(plan.clone());
    let breaker = Arc::new(CircuitBreaker::new(2, Duration::from_secs(10)));
    db.install_breaker(breaker.clone());

    for id in 1..=2 {
        let err = insert_row(&db, id).unwrap_err();
        assert!(matches!(err, DbError::Partitioned { .. }));
    }
    // Two consecutive losses tripped the breaker: the next statement is
    // rejected locally without consuming a wire operation.
    let err = insert_row(&db, 3).unwrap_err();
    assert!(matches!(err, DbError::CircuitOpen { .. }));
    assert_eq!(
        plan.ops_seen(OpClass::DbStatement),
        2,
        "the rejected statement never reached the fault plan"
    );

    // After the cooldown a single probe is admitted; its success closes
    // the breaker and traffic resumes.
    clock.advance(Duration::from_secs(11));
    insert_row(&db, 3).unwrap();
    insert_row(&db, 4).unwrap();
    assert_eq!(breaker.times_opened(), 1);
    assert_eq!(db.stats().commits, 2);
}

#[test]
fn commit_faults_feed_the_db_breaker() {
    let clock = Arc::new(VirtualClock::new());
    let db = networked_db_with_table(clock.clone());
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CommitFailed, &[0])],
    ));
    let breaker = Arc::new(CircuitBreaker::new(1, Duration::from_secs(10)));
    db.install_breaker(breaker.clone());

    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::ConnectionLost { .. }));
    // The failed commit tripped the one-strike breaker: statements are now
    // rejected at the front door.
    let err = insert_row(&db, 2).unwrap_err();
    assert!(matches!(err, DbError::CircuitOpen { .. }));
    assert_eq!(breaker.times_opened(), 1);
}
