#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test pass.
# Run from the repository root: ./tools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> CI green"
