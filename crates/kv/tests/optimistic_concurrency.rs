//! Concurrency tests for the WATCH/MULTI/EXEC machinery — the primitive
//! Discourse's lock is built on (§3.2.1).

use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RealClock};
use std::sync::Arc;

fn client() -> Client {
    Client::new(Store::new(), RealClock::shared(), LatencyModel::zero())
}

/// A WATCH/GET/MULTI/SET/EXEC compare-and-swap loop never loses an
/// increment under contention.
#[test]
fn watch_exec_cas_loop_is_lossless() {
    let c = client();
    c.set("counter", "0").unwrap();
    let threads = 8;
    let per = 50;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..per {
                    loop {
                        let mut session = c.session();
                        session.watch("counter");
                        let current: i64 =
                            session.get("counter").unwrap().unwrap().parse().unwrap();
                        std::thread::yield_now(); // widen the race window
                        session.multi();
                        session.set("counter", &(current + 1).to_string());
                        if session.exec().unwrap() {
                            break;
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        c.get("counter").unwrap().unwrap(),
        (threads * per).to_string()
    );
}

/// The same loop WITHOUT the watch (blind read-then-set) loses increments —
/// the control demonstrating what EXEC's validation buys.
#[test]
fn blind_read_then_set_loses_increments() {
    let mut lost = false;
    for _ in 0..20 {
        let c = client();
        c.set("counter", "0").unwrap();
        let threads = 8;
        let per = 50;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        let current: i64 = c.get("counter").unwrap().unwrap().parse().unwrap();
                        std::thread::yield_now();
                        c.set("counter", &(current + 1).to_string()).unwrap();
                    }
                });
            }
        });
        let total: i64 = c.get("counter").unwrap().unwrap().parse().unwrap();
        if total < (threads * per) as i64 {
            lost = true;
            break;
        }
    }
    assert!(lost, "blind read-modify-write must lose increments");
}

/// INCR is atomic server-side: no CAS loop needed.
#[test]
fn incr_is_atomic() {
    let c = client();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    c.incr("n").unwrap();
                }
            });
        }
    });
    assert_eq!(c.get("n").unwrap().unwrap(), "800");
}

/// Concurrent SETNX + DEL churn never grants two holders simultaneously.
#[test]
fn setnx_del_churn_maintains_exclusion() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let c = client();
    let inside = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for t in 0..8 {
            let c = c.clone();
            let inside = Arc::clone(&inside);
            let max_seen = Arc::clone(&max_seen);
            s.spawn(move || {
                for i in 0..100 {
                    if c.set_nx("mutex", &format!("t{t}-{i}")).unwrap() {
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        c.del("mutex").unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(max_seen.load(Ordering::SeqCst), 1, "never two holders");
}
