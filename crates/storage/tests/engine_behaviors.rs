//! Behavioural tests: the engine must exhibit exactly the concurrency
//! anomalies and protections the paper's arguments rest on, per profile and
//! isolation level. Each test names the paper section it reproduces.

use adhoc_storage::{
    Column, ColumnType, Database, DbError, EngineProfile, IsolationLevel, Predicate, Schema,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn skus_db(profile: EngineProfile) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        Schema::new(
            "skus",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("quantity", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    let mut t = db.begin();
    t.insert("skus", &[("id", 1.into()), ("quantity", 10.into())])
        .unwrap();
    t.commit().unwrap();
    db
}

fn payments_db(profile: EngineProfile) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        Schema::new(
            "payments",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("order_id", ColumnType::Int),
            ],
            "id",
        )
        .unwrap()
        .with_index("order_id")
        .unwrap(),
    )
    .unwrap();
    // Committed order_ids {9, 12} — the §3.3.2 running example.
    let mut t = db.begin();
    t.insert("payments", &[("order_id", 9.into())]).unwrap();
    t.insert("payments", &[("order_id", 12.into())]).unwrap();
    t.commit().unwrap();
    db
}

/// §3.1.1 footnote: MySQL's non-Serializable levels permit lost updates on
/// application-level read–modify–writes (snapshot read, blind write).
#[test]
fn mysql_repeatable_read_loses_updates_on_rmw() {
    let db = skus_db(EngineProfile::MySqlLike);
    let mut t1 = db.begin_with(IsolationLevel::RepeatableRead);
    let mut t2 = db.begin_with(IsolationLevel::RepeatableRead);
    let q1 = t1.get("skus", 1).unwrap().unwrap().values[1].as_int();
    let q2 = t2.get("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!((q1, q2), (10, 10));
    // Both decrement "their" copy by 4 and write back the computed value.
    t1.update("skus", 1, &[("quantity", (q1 - 4).into())])
        .unwrap();
    t1.commit().unwrap();
    t2.update("skus", 1, &[("quantity", (q2 - 4).into())])
        .unwrap();
    t2.commit().unwrap();
    // 10 - 4 - 4 should be 2; the lost update leaves 6.
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 6, "MySQL-like RR must lose one of the two decrements");
}

/// §3.3.1: under MySQL Serializable, two concurrent RMWs deadlock on the
/// shared→exclusive upgrade; one is chosen as victim.
#[test]
fn mysql_serializable_rmw_deadlocks() {
    let db = skus_db(EngineProfile::MySqlLike);
    let mut t1 = db.begin_with(IsolationLevel::Serializable);
    let mut t2 = db.begin_with(IsolationLevel::Serializable);
    // Both read (S lock).
    t1.get("skus", 1).unwrap().unwrap();
    t2.get("skus", 1).unwrap().unwrap();
    // t1 tries to upgrade in a helper thread; it blocks on t2's S lock.
    let db2 = db.clone();
    let h = thread::spawn(move || {
        let r = t1.update("skus", 1, &[("quantity", 6.into())]);
        match r {
            Ok(()) => t1.commit(),
            Err(e) => {
                drop(t1);
                Err(e)
            }
        }
    });
    thread::sleep(Duration::from_millis(60));
    // t2 upgrades too, closing the cycle: t2 is the victim.
    let err = t2.update("skus", 1, &[("quantity", 6.into())]).unwrap_err();
    assert!(matches!(err, DbError::Deadlock { .. }));
    drop(t2); // release victim's locks
    h.join().unwrap().unwrap();
    assert!(db2.stats().lock_stats.deadlocks >= 1);
}

/// §3.1.1: PostgreSQL Repeatable Read (Snapshot Isolation) aborts the
/// second writer of a write–write conflict (first-committer-wins), instead
/// of losing the update.
#[test]
fn postgres_repeatable_read_aborts_second_writer() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut t1 = db.begin_with(IsolationLevel::RepeatableRead);
    let mut t2 = db.begin_with(IsolationLevel::RepeatableRead);
    let q1 = t1.get("skus", 1).unwrap().unwrap().values[1].as_int();
    t2.get("skus", 1).unwrap().unwrap();
    t1.update("skus", 1, &[("quantity", (q1 - 4).into())])
        .unwrap();
    t1.commit().unwrap();
    let err = t2.update("skus", 1, &[("quantity", 6.into())]).unwrap_err();
    assert!(matches!(err, DbError::SerializationFailure { .. }));
}

/// PostgreSQL Read Committed: the same interleaving succeeds (per-statement
/// snapshots; the blind write applies) — which is why ad hoc transactions
/// run their statements at the default level without engine pushback.
#[test]
fn postgres_read_committed_allows_blind_overwrite() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut t1 = db.begin_with(IsolationLevel::ReadCommitted);
    let mut t2 = db.begin_with(IsolationLevel::ReadCommitted);
    t1.get("skus", 1).unwrap().unwrap();
    t2.get("skus", 1).unwrap().unwrap();
    t1.update("skus", 1, &[("quantity", 6.into())]).unwrap();
    t1.commit().unwrap();
    t2.update("skus", 1, &[("quantity", 3.into())]).unwrap();
    t2.commit().unwrap();
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 3);
}

/// Read Committed sees data committed mid-transaction; Repeatable Read
/// keeps the begin snapshot.
#[test]
fn statement_vs_transaction_snapshots() {
    for profile in [EngineProfile::MySqlLike, EngineProfile::PostgresLike] {
        let db = skus_db(profile);
        let mut rc = db.begin_with(IsolationLevel::ReadCommitted);
        let mut rr = db.begin_with(IsolationLevel::RepeatableRead);
        assert_eq!(rc.get("skus", 1).unwrap().unwrap().values[1].as_int(), 10);
        assert_eq!(rr.get("skus", 1).unwrap().unwrap().values[1].as_int(), 10);
        let mut w = db.begin();
        w.update("skus", 1, &[("quantity", 99.into())]).unwrap();
        w.commit().unwrap();
        assert_eq!(
            rc.get("skus", 1).unwrap().unwrap().values[1].as_int(),
            99,
            "{profile:?} RC must see the new commit"
        );
        assert_eq!(
            rr.get("skus", 1).unwrap().unwrap().values[1].as_int(),
            10,
            "{profile:?} RR must keep its snapshot"
        );
        rc.commit().unwrap();
        rr.commit().unwrap();
    }
}

/// §3.3.2: a locking scan for `order_id = 10` over a non-unique index with
/// committed neighbours {9, 12} gap-locks (9, 12); an unrelated insert of
/// order_id = 11 blocks until the scanner finishes (MySQL-like, RR+).
#[test]
fn mysql_gap_lock_blocks_unrelated_insert() {
    let db = payments_db(EngineProfile::MySqlLike);
    let mut scanner = db.begin_with(IsolationLevel::RepeatableRead);
    let found = scanner
        .select_for_update("payments", &Predicate::eq("order_id", 10))
        .unwrap();
    assert!(found.is_empty());

    let inserted = Arc::new(AtomicBool::new(false));
    let db2 = db.clone();
    let flag = Arc::clone(&inserted);
    let h = thread::spawn(move || {
        let mut t = db2.begin_with(IsolationLevel::ReadCommitted);
        t.insert("payments", &[("order_id", 11.into())]).unwrap();
        flag.store(true, Ordering::SeqCst);
        t.commit().unwrap();
    });
    thread::sleep(Duration::from_millis(80));
    assert!(
        !inserted.load(Ordering::SeqCst),
        "insert into the locked gap must block"
    );
    scanner.commit().unwrap();
    h.join().unwrap();
    assert!(inserted.load(Ordering::SeqCst));
}

/// The same scan at Read Committed takes no gap lock; the insert proceeds.
#[test]
fn mysql_read_committed_scan_takes_no_gap_lock() {
    let db = payments_db(EngineProfile::MySqlLike);
    let mut scanner = db.begin_with(IsolationLevel::ReadCommitted);
    scanner
        .select_for_update("payments", &Predicate::eq("order_id", 10))
        .unwrap();
    let mut t = db.begin_with(IsolationLevel::ReadCommitted);
    t.insert("payments", &[("order_id", 11.into())]).unwrap();
    t.commit().unwrap();
    scanner.commit().unwrap();
}

/// PostgreSQL-like profile never blocks inserts on gaps…
#[test]
fn postgres_has_no_gap_blocking() {
    let db = payments_db(EngineProfile::PostgresLike);
    let mut scanner = db.begin_with(IsolationLevel::Serializable);
    scanner
        .scan("payments", &Predicate::eq("order_id", 10))
        .unwrap();
    let mut t = db.begin_with(IsolationLevel::ReadCommitted);
    t.insert("payments", &[("order_id", 11.into())]).unwrap();
    t.commit().unwrap();
}

/// …but its Serializable level aborts the reader at commit when a
/// concurrent insert landed inside the scanned index gap (SSI-style
/// rw-antidependency at gap granularity — the §5.2 PBC false conflict).
#[test]
fn postgres_serializable_certification_catches_gap_insert() {
    let db = payments_db(EngineProfile::PostgresLike);
    let mut reader = db.begin_with(IsolationLevel::Serializable);
    let found = reader
        .scan("payments", &Predicate::eq("order_id", 10))
        .unwrap();
    assert!(found.is_empty());
    // Writer inserts order_id = 11 (a *different* order) and commits.
    let mut writer = db.begin_with(IsolationLevel::ReadCommitted);
    writer
        .insert("payments", &[("order_id", 11.into())])
        .unwrap();
    writer.commit().unwrap();
    // The reader writes something (making it a pivot) and tries to commit.
    reader
        .insert("payments", &[("order_id", 10.into())])
        .unwrap();
    let err = reader.commit().unwrap_err();
    assert!(matches!(err, DbError::SerializationFailure { .. }));
}

/// Classic write skew: allowed under Snapshot Isolation (PG Repeatable
/// Read), refused under PG Serializable.
#[test]
fn postgres_write_skew_matrix() {
    let run = |iso: IsolationLevel| -> Result<(), DbError> {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "oncall",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("on_duty", ColumnType::Bool),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let mut t = db.begin();
        t.insert("oncall", &[("id", 1.into()), ("on_duty", true.into())])
            .unwrap();
        t.insert("oncall", &[("id", 2.into()), ("on_duty", true.into())])
            .unwrap();
        t.commit().unwrap();

        // Each doctor checks the other is on duty, then goes off duty.
        let mut t1 = db.begin_with(iso);
        let mut t2 = db.begin_with(iso);
        assert!(t1.get("oncall", 2).unwrap().unwrap().values[1].as_bool());
        assert!(t2.get("oncall", 1).unwrap().unwrap().values[1].as_bool());
        t1.update("oncall", 1, &[("on_duty", false.into())])?;
        t2.update("oncall", 2, &[("on_duty", false.into())])?;
        t1.commit()?;
        t2.commit()?;
        Ok(())
    };
    // Snapshot isolation: both commit — write skew.
    run(IsolationLevel::RepeatableRead).expect("SI must allow write skew");
    // Serializable: certification aborts one.
    let err = run(IsolationLevel::Serializable).unwrap_err();
    assert!(matches!(err, DbError::SerializationFailure { .. }));
}

/// SELECT FOR UPDATE blocks a concurrent FOR UPDATE until commit — the
/// Saleor stock-allocation pattern (§3.2.1).
#[test]
fn select_for_update_serializes_rmw() {
    for profile in [EngineProfile::MySqlLike, EngineProfile::PostgresLike] {
        let db = skus_db(profile);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let db = db.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                // Read Committed is enough when the lock does the work.
                db.run(IsolationLevel::ReadCommitted, |t| {
                    let row = t.get_for_update("skus", 1)?.expect("sku exists");
                    let q = row.values[1].as_int();
                    t.update("skus", 1, &[("quantity", (q - 4).into())])
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
        assert_eq!(q, 2, "{profile:?}: FOR UPDATE must serialize the RMW");
    }
}

/// §4.1.1 (Spree): a SELECT FOR UPDATE in its own auto-commit transaction
/// releases the lock immediately — the RMW race returns.
#[test]
fn select_for_update_outside_transaction_is_useless() {
    let db = skus_db(EngineProfile::PostgresLike);
    // "Auto-commit": the locking read commits (and unlocks) before the
    // update runs in a second transaction.
    let read = db
        .run(IsolationLevel::ReadCommitted, |t| {
            Ok(t.get_for_update("skus", 1)?.unwrap())
        })
        .unwrap();
    let q = read.values[1].as_int();
    // A concurrent writer slips in between the two statements.
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("skus", 1, &[("quantity", 1.into())])
    })
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("skus", 1, &[("quantity", (q - 4).into())])
    })
    .unwrap();
    let final_q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(final_q, 6, "the concurrent write was silently lost");
}

/// The OCC idiom of Figure 1c: UPDATE … WHERE id AND ver atomically
/// validates-and-commits; a racing version bump yields 0 affected rows.
#[test]
fn update_where_version_check_is_atomic() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "polls",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("tallies", ColumnType::Int),
                Column::new("ver", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert(
            "polls",
            &[("id", 1.into()), ("tallies", 0.into()), ("ver", 0.into())],
        )
        .map(|_| ())
    })
    .unwrap();

    let vote = |db: &Database| {
        db.run(IsolationLevel::ReadCommitted, |t| {
            let poll = t.get("polls", 1)?.unwrap();
            let (tallies, ver) = (poll.values[1].as_int(), poll.values[2].as_int());
            let pred = Predicate::And(vec![Predicate::eq("id", 1), Predicate::eq("ver", ver)]);
            t.update_where(
                "polls",
                &pred,
                &[("tallies", (tallies + 1).into()), ("ver", (ver + 1).into())],
            )
        })
    };
    assert_eq!(vote(&db).unwrap(), 1);
    assert_eq!(vote(&db).unwrap(), 1);
    // Concurrent interleave: read, then someone else bumps ver, then write.
    let stale = db
        .run(IsolationLevel::ReadCommitted, |t| {
            let poll = t.get("polls", 1)?.unwrap();
            Ok(poll.values[2].as_int())
        })
        .unwrap();
    assert_eq!(vote(&db).unwrap(), 1); // someone else votes
    let affected = db
        .run(IsolationLevel::ReadCommitted, |t| {
            let pred = Predicate::And(vec![Predicate::eq("id", 1), Predicate::eq("ver", stale)]);
            t.update_where("polls", &pred, &[("tallies", 999.into())])
        })
        .unwrap();
    assert_eq!(affected, 0, "stale version must match nothing");
    let tallies = db.latest_committed("polls", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(tallies, 3);
}

/// Stress: 8 threads vote concurrently with the Figure 1c retry loop; no
/// vote is lost.
#[test]
fn occ_retry_loop_under_contention() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "polls",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("tallies", ColumnType::Int),
                Column::new("ver", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert(
            "polls",
            &[("id", 1.into()), ("tallies", 0.into()), ("ver", 0.into())],
        )
        .map(|_| ())
    })
    .unwrap();

    let votes_per_thread = 25;
    thread::scope(|s| {
        for _ in 0..8 {
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..votes_per_thread {
                    loop {
                        let done = db
                            .run(IsolationLevel::ReadCommitted, |t| {
                                let poll = t.get("polls", 1)?.unwrap();
                                let (tallies, ver) =
                                    (poll.values[1].as_int(), poll.values[2].as_int());
                                let pred = Predicate::And(vec![
                                    Predicate::eq("id", 1),
                                    Predicate::eq("ver", ver),
                                ]);
                                t.update_where(
                                    "polls",
                                    &pred,
                                    &[("tallies", (tallies + 1).into()), ("ver", (ver + 1).into())],
                                )
                            })
                            .unwrap();
                        if done == 1 {
                            break;
                        }
                    }
                }
            });
        }
    });
    let tallies = db.latest_committed("polls", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(tallies, 8 * votes_per_thread);
}

/// Savepoints discard later writes but keep earlier ones (§3.1.2's
/// alternative to multi-request ad hoc transactions).
#[test]
fn savepoints_partial_rollback() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut t = db.begin();
    t.update("skus", 1, &[("quantity", 8.into())]).unwrap();
    t.savepoint("after_first");
    t.update("skus", 1, &[("quantity", 4.into())]).unwrap();
    assert_eq!(t.get("skus", 1).unwrap().unwrap().values[1].as_int(), 4);
    t.rollback_to("after_first").unwrap();
    assert_eq!(t.get("skus", 1).unwrap().unwrap().values[1].as_int(), 8);
    assert!(matches!(
        t.rollback_to("nope"),
        Err(DbError::NoSuchSavepoint { .. })
    ));
    t.commit().unwrap();
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 8);
}

/// Advisory (user) locks: blocking, reentrant, session-scoped (§6).
#[test]
fn advisory_locks_are_session_scoped() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let s1 = db.new_session();
    let s2 = db.new_session();
    db.advisory_lock(s1, 42).unwrap();
    assert!(!db.try_advisory_lock(s2, 42));
    // Reentrant.
    db.advisory_lock(s1, 42).unwrap();
    assert!(db.advisory_unlock(s1, 42));
    assert!(!db.try_advisory_lock(s2, 42));
    db.end_session(s1);
    assert!(db.try_advisory_lock(s2, 42));
}

/// After a simulated server crash, in-flight transactions cannot commit
/// (connection lost), and committed state survives (§3.4.2).
#[test]
fn crash_kills_in_flight_transactions() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut t = db.begin();
    t.update("skus", 1, &[("quantity", 0.into())]).unwrap();
    db.simulate_crash();
    let err = t.commit().unwrap_err();
    assert!(matches!(err, DbError::TxnNotActive { .. }));
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 10, "pre-crash committed state survives");
}

/// Unique secondary indexes reject duplicates, including racing inserts.
#[test]
fn unique_index_rejects_duplicates_across_transactions() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "users",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("email", ColumnType::Str),
            ],
            "id",
        )
        .unwrap()
        .with_unique_index("email")
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert("users", &[("email", "a@example.com".into())])
            .map(|_| ())
    })
    .unwrap();
    let err = db
        .run(IsolationLevel::ReadCommitted, |t| {
            t.insert("users", &[("email", "a@example.com".into())])
                .map(|_| ())
        })
        .unwrap_err();
    assert!(matches!(err, DbError::UniqueViolation { .. }));

    // 8 racing inserts of the same fresh email: exactly one wins.
    let wins: usize = thread::scope(|s| {
        (0..8)
            .map(|_| {
                let db = db.clone();
                s.spawn(move || {
                    db.run(IsolationLevel::ReadCommitted, |t| {
                        t.insert("users", &[("email", "race@example.com".into())])
                            .map(|_| ())
                    })
                    .is_ok()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum()
    });
    assert_eq!(wins, 1);
}

/// Scans see the transaction's own pending writes (read-your-writes).
#[test]
fn scans_overlay_own_writes() {
    let db = payments_db(EngineProfile::PostgresLike);
    let mut t = db.begin();
    t.insert("payments", &[("order_id", 10.into())]).unwrap();
    let mine = t.scan("payments", &Predicate::eq("order_id", 10)).unwrap();
    assert_eq!(mine.len(), 1);
    // Another transaction does not see it.
    let mut other = db.begin();
    let theirs = other
        .scan("payments", &Predicate::eq("order_id", 10))
        .unwrap();
    assert!(theirs.is_empty());
    // Deleting within the transaction hides it again.
    let id = mine[0].0;
    assert!(t.delete("payments", id).unwrap());
    assert!(t
        .scan("payments", &Predicate::eq("order_id", 10))
        .unwrap()
        .is_empty());
    t.commit().unwrap();
}

/// Dropping an active transaction aborts it and releases its locks.
#[test]
fn drop_aborts_and_releases() {
    let db = skus_db(EngineProfile::MySqlLike);
    {
        let mut t = db.begin();
        t.update("skus", 1, &[("quantity", 0.into())]).unwrap();
        // dropped without commit
    }
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 10);
    // Lock is free for the next writer.
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("skus", 1, &[("quantity", 7.into())])
    })
    .unwrap();
}

/// run_with_retries retries deadlock victims to completion.
#[test]
fn run_with_retries_recovers_from_deadlocks() {
    let db = skus_db(EngineProfile::MySqlLike);
    let total = 6;
    thread::scope(|s| {
        for _ in 0..total {
            let db = db.clone();
            s.spawn(move || {
                db.run_with_retries(IsolationLevel::Serializable, 50, |t| {
                    let row = t.get("skus", 1)?.unwrap();
                    let q = row.values[1].as_int();
                    t.update("skus", 1, &[("quantity", (q - 1).into())])
                })
                .unwrap();
            });
        }
    });
    let q = db.latest_committed("skus", 1).unwrap().unwrap().values[1].as_int();
    assert_eq!(q, 10 - total);
}

/// Full scans fall back gracefully (no index on the predicate column).
#[test]
fn full_scan_predicates_work() {
    let db = skus_db(EngineProfile::PostgresLike);
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.insert("skus", &[("id", 2.into()), ("quantity", 0.into())])
            .map(|_| ())
    })
    .unwrap();
    let rows = db
        .run(IsolationLevel::ReadCommitted, |t| {
            t.scan("skus", &Predicate::ge("quantity", 1))
        })
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, 1);
    let all = db
        .run(IsolationLevel::ReadCommitted, |t| {
            t.scan("skus", &Predicate::All)
        })
        .unwrap();
    assert_eq!(all.len(), 2);
}

/// Value-typed errors for missing tables/rows.
#[test]
fn missing_table_and_row_errors() {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let mut t = db.begin();
    assert!(matches!(
        t.get("ghosts", 1),
        Err(DbError::NoSuchTable { .. })
    ));
    drop(t);
    let db = skus_db(EngineProfile::PostgresLike);
    let err = db
        .run(IsolationLevel::ReadCommitted, |t| {
            t.update("skus", 99, &[("quantity", 0.into())])
        })
        .unwrap_err();
    assert!(matches!(err, DbError::NoSuchRow { .. }));
}

/// PG Serializable point reads participate in certification: read a row,
/// concurrent writer updates it and commits, reader's write-commit aborts.
#[test]
fn postgres_serializable_read_row_certification() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut reader = db.begin_with(IsolationLevel::Serializable);
    reader.get("skus", 1).unwrap().unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("skus", 1, &[("quantity", 5.into())])
    })
    .unwrap();
    // Reader writes elsewhere, so it is not read-only.
    reader
        .insert("skus", &[("id", 2.into()), ("quantity", 1.into())])
        .unwrap();
    let err = reader.commit().unwrap_err();
    assert!(matches!(err, DbError::SerializationFailure { .. }));
}

/// Per-operation isolation (Table 7a): a Read-Committed-hinted read inside
/// a Repeatable Read transaction sees the latest committed version while
/// the transaction's plain reads keep their snapshot.
#[test]
fn per_operation_isolation_hint() {
    for profile in [EngineProfile::MySqlLike, EngineProfile::PostgresLike] {
        let db = skus_db(profile);
        let mut rr = db.begin_with(IsolationLevel::RepeatableRead);
        assert_eq!(rr.get("skus", 1).unwrap().unwrap().values[1].as_int(), 10);
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.update("skus", 1, &[("quantity", 42.into())])
        })
        .unwrap();
        // Snapshot read: unchanged. Hinted read: latest.
        assert_eq!(rr.get("skus", 1).unwrap().unwrap().values[1].as_int(), 10);
        assert_eq!(
            rr.get_read_committed("skus", 1).unwrap().unwrap().values[1].as_int(),
            42,
            "{profile:?}"
        );
        rr.commit().unwrap();
    }
}

/// The hinted read does not poison PG Serializable certification: reading a
/// concurrently-updated row through the hint opts it out of the read set.
#[test]
fn per_op_isolation_read_is_outside_ssi_read_set() {
    let db = skus_db(EngineProfile::PostgresLike);
    let mut reader = db.begin_with(IsolationLevel::Serializable);
    reader.get_read_committed("skus", 1).unwrap().unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("skus", 1, &[("quantity", 5.into())])
    })
    .unwrap();
    reader
        .insert("skus", &[("id", 2.into()), ("quantity", 1.into())])
        .unwrap();
    reader.commit().expect("hinted reads must not certify");
}

/// Table locks: an exclusive explicit table lock blocks a concurrent
/// explicit lock until commit (Table 7a's "explicit table locks").
#[test]
fn explicit_table_locks() {
    let db = skus_db(EngineProfile::MySqlLike);
    let mut t1 = db.begin();
    t1.lock_table("skus", adhoc_storage::LockMode::Exclusive)
        .unwrap();
    let locked = Arc::new(AtomicBool::new(false));
    let db2 = db.clone();
    let flag = Arc::clone(&locked);
    let h = thread::spawn(move || {
        let mut t2 = db2.begin();
        t2.lock_table("skus", adhoc_storage::LockMode::Shared)
            .unwrap();
        flag.store(true, Ordering::SeqCst);
        t2.commit().unwrap();
    });
    thread::sleep(Duration::from_millis(60));
    assert!(!locked.load(Ordering::SeqCst));
    t1.commit().unwrap();
    h.join().unwrap();
    assert!(locked.load(Ordering::SeqCst));
}
