//! Simulation substrate shared by every other crate in the workspace.
//!
//! The paper's evaluation (§5) attributes the order-of-magnitude latency
//! differences between lock implementations to two physical costs: network
//! round trips and durable disk flushes. This crate makes those costs
//! explicit and injectable:
//!
//! * [`Clock`] — a time source that can either be the wall clock
//!   ([`RealClock`], used by the multi-threaded throughput benchmarks) or a
//!   deterministic virtual counter ([`VirtualClock`], used by unit tests and
//!   the single-client latency benchmarks so they finish instantly).
//! * [`LatencyModel`] — named cost constants (KV round trip, SQL round trip,
//!   durable flush) charged by the substrates at the points where the real
//!   systems would pay them.
//! * [`stats`] — summary statistics used by the evaluation harness.
//! * [`rng`] — seeded RNG construction so experiments are reproducible.
//! * [`faults`] — a deterministic, seeded fault schedule ([`FaultPlan`])
//!   the substrates consult per operation, so the §3.4 failure-handling
//!   paths can be exercised and replayed bit-for-bit.
//! * [`retry`] — the single [`RetryPolicy`] (bounded attempts, deadline,
//!   deterministic backoff jitter) shared by every coordination path.
//! * [`sched`] — a cooperative deterministic scheduler plus an interleaving
//!   explorer, so the paper's races are found and replayed by *schedule*
//!   (compact `SCHED=` witness strings), not by wall-clock luck.
//! * [`resilience`] — absolute [`Deadline`]s, token-bucket
//!   [`RetryBudget`]s and a deterministic [`CircuitBreaker`], the
//!   primitives that keep a fault storm from becoming a metastable
//!   retry storm.
//! * [`transport`] — the shared simulated-wire shim ([`Transport`]):
//!   admission (deadline + breaker), the wire hop (yield + count + latency
//!   charge), and outcome bookkeeping, extracted once for the KV client and
//!   the service front door.

#![warn(missing_docs)]

pub mod clock;
pub mod faults;
pub mod latency;
pub mod resilience;
pub mod retry;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod transport;

pub use clock::{Clock, RealClock, SharedClock, VirtualClock};
pub use faults::{FaultKind, FaultPlan, FaultRecord, FaultRule, InjectedFault, OpClass};
pub use latency::LatencyModel;
pub use resilience::{BreakerState, CircuitBreaker, Deadline, RetryBudget};
pub use retry::{BackoffPolicy, GiveUp, RetryObserver, RetryPolicy, RetryTimer};
pub use sched::{
    record, replay, yield_point, CounterExample, Exploration, Explorer, SchedPoint, Trial,
};
pub use stats::{Histogram, Summary};
pub use transport::{Transport, TransportError};
