//! Boot-time crash recovery: replay a write-ahead log image into a fresh
//! database.
//!
//! The restart story the oracle harness exercises (§3.4.2 of the paper —
//! what actually happens to an application's state when the process dies
//! mid-commit):
//!
//! 1. The old process dies. Everything volatile — version chains, the lock
//!    table, the acked-but-unsynced WAL tail — is gone. What survives is
//!    the WAL's durable prefix ([`Wal::durable_bytes`](crate::wal::Wal)).
//! 2. A new process boots, re-creates its schema (application setup code),
//!    and calls [`recover`] with the surviving bytes.
//! 3. Recovery decodes the stream, truncating at the first torn or corrupt
//!    frame, and installs each intact record's writes in log order. A
//!    commit is therefore all-or-nothing: its record either passed its CRC
//!    (every write replays) or it didn't (none do).
//! 4. The application then runs its domain-level boot checker
//!    (`recover_on_boot`) to repair states that are *transactionally*
//!    consistent but semantically stuck — a payment acknowledged as
//!    `processing`, a counter behind its rows. The engine cannot see those;
//!    only the app's invariants can.
//!
//! Replay bypasses the statement path entirely (no yield points, no
//! latency charges, no observers) — boot work is not workload, and adding
//! scheduler points here would shift every pinned interleaving witness.

use crate::db::Database;
use crate::error::DbError;
use crate::schema::Row;
use crate::table::CommitTs;
use crate::wal::{decode_stream, WalTail};
use crate::Result;

/// What one recovery pass did, for assertions and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact commit records replayed.
    pub records_applied: u64,
    /// Individual row writes installed (a record may carry several).
    pub writes_applied: u64,
    /// Highest commit timestamp restored (0 when the log was empty).
    pub max_commit_ts: CommitTs,
    /// How the byte stream ended.
    pub tail: WalTail,
    /// Bytes discarded after the last intact frame (torn-tail rule).
    pub bytes_truncated: usize,
}

impl RecoveryReport {
    /// Whether the log ended on a frame boundary (nothing truncated).
    pub fn clean(&self) -> bool {
        matches!(self.tail, WalTail::Clean)
    }
}

/// Replay a WAL image into `db`, which must already hold the schema the
/// log's writes refer to (tables are identified by name) and should hold
/// no committed row state — recovery is a boot activity, not a merge.
///
/// Errors only when the log names a table the database does not have:
/// that is a harness bug (setup ran a different schema), not a torn tail,
/// and silently skipping it would fake durability.
pub fn recover(db: &Database, bytes: &[u8]) -> Result<RecoveryReport> {
    let image = decode_stream(bytes);
    let truncated_at = match image.tail {
        WalTail::Clean => bytes.len(),
        WalTail::Torn { at } | WalTail::Corrupt { at } => at,
    };
    let mut report = RecoveryReport {
        records_applied: 0,
        writes_applied: 0,
        max_commit_ts: 0,
        tail: image.tail,
        bytes_truncated: bytes.len() - truncated_at,
    };
    for record in image.records {
        for write in record.writes {
            let table = db
                .resolve_table(&write.table)
                .map_err(|_| DbError::RecoveryFailed {
                    table: write.table.clone(),
                })?;
            db.install_recovered(&table, write.id, record.commit_ts, write.row.map(Row::new));
            report.writes_applied += 1;
        }
        report.max_commit_ts = report.max_commit_ts.max(record.commit_ts);
        report.records_applied += 1;
    }
    if report.max_commit_ts > 0 {
        db.note_recovered_ts(report.max_commit_ts);
    }
    Ok(report)
}

/// Restart shorthand for harnesses: read the durable prefix of `crashed`'s
/// WAL and replay it into `reborn` (a fresh database whose application
/// setup already re-created the schema). Panics if `crashed` has no WAL —
/// a crash-recovery harness on a WAL-less database is testing nothing.
pub fn restart_from(crashed: &Database, reborn: &Database) -> Result<RecoveryReport> {
    let wal = crashed
        .wal()
        .expect("restart_from requires the crashed database to have a WAL");
    recover(reborn, &wal.durable_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DbConfig, EngineProfile};
    use crate::schema::{Column, ColumnType, Schema};
    use crate::IsolationLevel;

    fn wal_db() -> Database {
        let db = Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal());
        db.create_table(
            Schema::new(
                "accounts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("balance", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn set_balance(db: &Database, id: i64, balance: i64) {
        db.run(IsolationLevel::ReadCommitted, |t| {
            if t.get("accounts", id)?.is_some() {
                t.update("accounts", id, &[("balance", balance.into())])
            } else {
                t.insert(
                    "accounts",
                    &[("id", id.into()), ("balance", balance.into())],
                )
                .map(|_| ())
            }
        })
        .unwrap();
    }

    fn balance(db: &Database, id: i64) -> Option<i64> {
        db.latest_committed("accounts", id)
            .unwrap()
            .map(|r| r.values[1].as_int())
    }

    #[test]
    fn replay_restores_committed_state_bit_for_bit() {
        let db = wal_db();
        set_balance(&db, 1, 100);
        set_balance(&db, 2, 250);
        set_balance(&db, 1, 75); // overwrite: replay must keep the latest

        let reborn = wal_db();
        let report = restart_from(&db, &reborn).unwrap();
        assert!(report.clean());
        assert_eq!(report.records_applied, 3);
        assert_eq!(balance(&reborn, 1), Some(75));
        assert_eq!(balance(&reborn, 2), Some(250));
    }

    #[test]
    fn deletes_replay_as_tombstones() {
        let db = wal_db();
        set_balance(&db, 1, 100);
        db.run(IsolationLevel::ReadCommitted, |t| t.delete("accounts", 1))
            .unwrap();

        let reborn = wal_db();
        restart_from(&db, &reborn).unwrap();
        assert_eq!(balance(&reborn, 1), None);
        // The id is also out of the index: a full scan sees no rows.
        assert!(reborn.dump_table("accounts").unwrap().is_empty());
    }

    #[test]
    fn recovered_database_accepts_new_commits_after_replay() {
        let db = wal_db();
        set_balance(&db, 1, 100);

        let reborn = wal_db();
        restart_from(&db, &reborn).unwrap();
        // Timestamp counters advanced past the recovered history: new
        // commits and snapshots layer on top of it.
        set_balance(&reborn, 1, 42);
        assert_eq!(balance(&reborn, 1), Some(42));
        // Auto-increment cursor also recovered (insert draws a fresh id).
        let id = reborn
            .run(IsolationLevel::ReadCommitted, |t| {
                t.insert("accounts", &[("balance", 5.into())])
            })
            .unwrap();
        assert_eq!(id, 2, "auto-id continues past recovered rows");
    }

    #[test]
    fn unknown_table_in_log_is_a_hard_error() {
        let db = wal_db();
        set_balance(&db, 1, 100);
        let reborn = Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal());
        let err = restart_from(&db, &reborn).unwrap_err();
        assert!(matches!(err, DbError::RecoveryFailed { .. }));
    }
}
