//! Invariant-confluence classification of the 91-case corpus.
//!
//! Coordination is only *necessary* when an application invariant is not
//! invariant-confluent (Bailis et al., "Coordination Avoidance in Database
//! Systems", VLDB 2015): if every pair of invariant-preserving executions
//! merges into an invariant-preserving state, the operation can commit
//! with no coordination at all. Each corpus case names the invariant its
//! ad hoc transaction actually defends and lands in one of three buckets:
//!
//! * [`Confluence::Confluent`] — the invariant is preserved under merge
//!   (commutative counter bumps, idempotent set inserts, monotonic
//!   markers, derived-data recomputes). The engine's commutative delta
//!   columns commit these with **no** validation footprint and zero
//!   aborts.
//! * [`Confluence::Escrow`] — a budget invariant (`x >= 0`, `uses <=
//!   max`). Not confluent — concurrent debits can jointly overdraw — but
//!   the bound splits: escrow reservations grant units off a per-row
//!   ledger with one lock-free atomic, coordinating only near exhaustion.
//! * [`Confluence::Coordinated`] — genuinely order-sensitive (uniqueness,
//!   state machines, dense sequences, cross-row conservation,
//!   last-writer-wins with conflict detection). These inherit the §7
//!   cured path unchanged.
//!
//! The per-case labels are this reconstruction's analysis (the paper does
//! not classify confluence); the tests pin the classification to the
//! corpus one-to-one so the split stays auditable.

/// How much coordination a case's invariant actually requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Confluence {
    /// Invariant-confluent: merges preserve the invariant, so the
    /// operation commits as a commutative delta with no validation.
    Confluent,
    /// A budget invariant: splittable via escrow reservations, which
    /// coordinate only near exhaustion.
    Escrow,
    /// Not confluent and not a budget: requires real coordination
    /// (the cured OCC/façade path).
    Coordinated,
}

impl Confluence {
    /// All three buckets, from least to most coordination.
    pub fn all() -> [Confluence; 3] {
        [
            Confluence::Confluent,
            Confluence::Escrow,
            Confluence::Coordinated,
        ]
    }

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            Confluence::Confluent => "CONF",
            Confluence::Escrow => "ESCR",
            Confluence::Coordinated => "COORD",
        }
    }

    /// Human name used in prose and the report legend.
    pub fn name(self) -> &'static str {
        match self {
            Confluence::Confluent => "confluent",
            Confluence::Escrow => "escrow",
            Confluence::Coordinated => "coordinated",
        }
    }
}

impl std::fmt::Display for Confluence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One case's classification: the invariant its ad hoc transaction
/// defends and the least coordination that invariant admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Case id, matching [`crate::corpus_data::CASES`].
    pub id: &'static str,
    /// The confluence bucket.
    pub class: Confluence,
    /// The invariant, named.
    pub invariant: &'static str,
}

/// The classification table: exactly one entry per corpus case, in
/// corpus order (the tests assert the bijection).
pub static CLASSIFICATION: &[Classification] = &[
    // ── Discourse ──────────────────────────────────────────────────
    c(
        "discourse/create-post",
        Confluence::Coordinated,
        "post numbers are dense and ordered per topic",
    ),
    c(
        "discourse/toggle-answer",
        Confluence::Coordinated,
        "at most one accepted answer per topic",
    ),
    c(
        "discourse/like-post",
        Confluence::Confluent,
        "topics.total_likes equals the sum of posts.like_cnt (bumps commute)",
    ),
    c(
        "discourse/edit-post",
        Confluence::Coordinated,
        "no lost content update across concurrent edits",
    ),
    c(
        "discourse/rebake-post",
        Confluence::Confluent,
        "cooked HTML is a pure function of raw content (idempotent recompute)",
    ),
    c(
        "discourse/image-upload",
        Confluence::Coordinated,
        "upload side effects and post rows appear atomically",
    ),
    c(
        "discourse/notification-fanout",
        Confluence::Confluent,
        "each follower is notified at most once (idempotent set insert)",
    ),
    c(
        "discourse/badge-grant",
        Confluence::Coordinated,
        "a badge is granted to a user at most once",
    ),
    c(
        "discourse/topic-view-track",
        Confluence::Confluent,
        "view count equals the number of views (bumps commute)",
    ),
    c(
        "discourse/user-avatar-refresh",
        Confluence::Confluent,
        "avatar derivatives are a pure function of the source (idempotent refresh)",
    ),
    c(
        "discourse/shrink-image",
        Confluence::Coordinated,
        "image rewrite and every referencing post change together",
    ),
    c(
        "discourse/reviewable-claim",
        Confluence::Coordinated,
        "a reviewable is claimed by at most one reviewer",
    ),
    c(
        "discourse/draft-save",
        Confluence::Coordinated,
        "draft saves apply in sequence order (stale writers refused)",
    ),
    // ── Mastodon ───────────────────────────────────────────────────
    c(
        "mastodon/timeline-insert",
        Confluence::Confluent,
        "timeline membership is a set keyed by status id (idempotent insert)",
    ),
    c(
        "mastodon/timeline-remove",
        Confluence::Confluent,
        "removing one status id commutes with inserting others",
    ),
    c(
        "mastodon/invite-redeem",
        Confluence::Escrow,
        "invites.redeems <= invites.max_redeems",
    ),
    c(
        "mastodon/status-delete",
        Confluence::Coordinated,
        "a deleted status leaves no dangling fan-out rows",
    ),
    c(
        "mastodon/follow-request",
        Confluence::Coordinated,
        "at most one follow edge per (follower, followee), state-machine advanced",
    ),
    c(
        "mastodon/media-attach",
        Confluence::Coordinated,
        "media rows attach to exactly one status before publish",
    ),
    c(
        "mastodon/conversation-read",
        Confluence::Confluent,
        "last-read marker is monotonic (max-merge)",
    ),
    c(
        "mastodon/notification-dedupe",
        Confluence::Confluent,
        "notifications are a set keyed by activity (idempotent insert)",
    ),
    c(
        "mastodon/account-migrate",
        Confluence::Coordinated,
        "migration moves followers exactly once, in one direction",
    ),
    c(
        "mastodon/list-membership",
        Confluence::Confluent,
        "list membership is a set keyed by (list, account)",
    ),
    c(
        "mastodon/relationship-sync",
        Confluence::Confluent,
        "relationship rows mirror follow edges (idempotent reconciliation)",
    ),
    c(
        "mastodon/poll-vote",
        Confluence::Confluent,
        "option tallies equal the number of recorded votes (bumps commute)",
    ),
    c(
        "mastodon/status-edit",
        Confluence::Coordinated,
        "no lost update across concurrent status edits",
    ),
    c(
        "mastodon/pin-status",
        Confluence::Escrow,
        "pinned statuses per account <= pin limit",
    ),
    c(
        "mastodon/filter-update",
        Confluence::Coordinated,
        "filter read-modify-write applies against the latest version",
    ),
    c(
        "mastodon/bookmark-sync",
        Confluence::Confluent,
        "bookmarks are a set keyed by (account, status)",
    ),
    // ── Spree ──────────────────────────────────────────────────────
    c(
        "spree/order-stock-decrement",
        Confluence::Escrow,
        "skus.quantity >= 0",
    ),
    c(
        "spree/order-payment-state",
        Confluence::Coordinated,
        "order payment state advances through the state machine once",
    ),
    c(
        "spree/order-shipment-sync",
        Confluence::Coordinated,
        "shipment rows agree with the order's line items",
    ),
    c(
        "spree/order-promotion-apply",
        Confluence::Coordinated,
        "promotion eligibility is re-checked atomically with application",
    ),
    c(
        "spree/payment-capture-check",
        Confluence::Coordinated,
        "capture happens at most once per authorized payment",
    ),
    c(
        "spree/refund-reconcile",
        Confluence::Escrow,
        "refunded total <= captured total",
    ),
    c(
        "spree/payment-process",
        Confluence::Coordinated,
        "payment state advances exactly once (no stuck 'processing')",
    ),
    c(
        "spree/payment-void",
        Confluence::Coordinated,
        "void only transitions from a voidable state",
    ),
    c(
        "spree/coupon-apply",
        Confluence::Escrow,
        "coupon redemptions <= usage limit",
    ),
    c(
        "spree/payment-json-handler",
        Confluence::Coordinated,
        "at most one payment per order (uniqueness)",
    ),
    // ── Redmine ────────────────────────────────────────────────────
    c(
        "redmine/issue-assign",
        Confluence::Coordinated,
        "progress updates apply against the latest issue state",
    ),
    c(
        "redmine/issue-status",
        Confluence::Coordinated,
        "issue status follows the allowed transition graph",
    ),
    c(
        "redmine/attachment-add",
        Confluence::Confluent,
        "attachments_count equals the number of attachment rows (insert+bump commute)",
    ),
    c(
        "redmine/category-reorder",
        Confluence::Coordinated,
        "category positions stay a dense permutation",
    ),
    c(
        "redmine/version-close",
        Confluence::Coordinated,
        "no open issue targets a closed version (cross-row check-then-act)",
    ),
    c(
        "redmine/news-comment",
        Confluence::Confluent,
        "comments_count equals the number of comment rows (insert+bump commute)",
    ),
    c(
        "redmine/wiki-edit",
        Confluence::Coordinated,
        "wiki versions advance by one; stale edits are refused",
    ),
    c(
        "redmine/issue-journal",
        Confluence::Coordinated,
        "journal entries form a single total order per issue",
    ),
    c(
        "redmine/settings-save",
        Confluence::Coordinated,
        "settings read-modify-write applies against the latest values",
    ),
    // ── Broadleaf ──────────────────────────────────────────────────
    c(
        "broadleaf/cart-session-lock",
        Confluence::Coordinated,
        "one request mutates a cart session at a time",
    ),
    c(
        "broadleaf/cart-total-update",
        Confluence::Coordinated,
        "cart total equals the sum of its items, recomputed atomically",
    ),
    c(
        "broadleaf/offer-audit",
        Confluence::Coordinated,
        "at most one audit row per (offer, order)",
    ),
    c(
        "broadleaf/checkout-workflow",
        Confluence::Coordinated,
        "checkout activities run exactly once, in workflow order",
    ),
    c(
        "broadleaf/inventory-db-lock",
        Confluence::Escrow,
        "inventory quantity >= 0",
    ),
    c(
        "broadleaf/sku-availability",
        Confluence::Escrow,
        "sku available quantity >= 0",
    ),
    c(
        "broadleaf/promotion-uses",
        Confluence::Escrow,
        "promotion uses <= max uses",
    ),
    c(
        "broadleaf/order-total-verify",
        Confluence::Coordinated,
        "verified order total matches the priced line items",
    ),
    c(
        "broadleaf/fulfillment-price",
        Confluence::Coordinated,
        "fulfillment price agrees with the order snapshot it priced",
    ),
    c(
        "broadleaf/payment-confirm",
        Confluence::Coordinated,
        "payment confirmation transitions a pending payment exactly once",
    ),
    c(
        "broadleaf/price-list-sync",
        Confluence::Coordinated,
        "derived price rows reflect one consistent price-list version",
    ),
    // ── SCM Suite ──────────────────────────────────────────────────
    c(
        "scm-suite/account-balance",
        Confluence::Escrow,
        "accounts.balance >= 0",
    ),
    c(
        "scm-suite/account-credit",
        Confluence::Confluent,
        "credits commute (balance has no upper bound)",
    ),
    c(
        "scm-suite/merchandise-receive",
        Confluence::Confluent,
        "receives commute (stock has no upper bound)",
    ),
    c(
        "scm-suite/merchandise-ship",
        Confluence::Escrow,
        "merchandise.stock >= 0",
    ),
    c(
        "scm-suite/warehouse-transfer",
        Confluence::Coordinated,
        "total stock is conserved across warehouses (two-row atomicity)",
    ),
    c(
        "scm-suite/settlement-run",
        Confluence::Coordinated,
        "a settlement totals one consistent snapshot of its accounts",
    ),
    c(
        "scm-suite/supplier-update",
        Confluence::Coordinated,
        "supplier read-modify-write applies against the latest record",
    ),
    c(
        "scm-suite/member-points",
        Confluence::Confluent,
        "points accrual commutes (no bound enforced)",
    ),
    c(
        "scm-suite/stock-version-track",
        Confluence::Confluent,
        "recorded stock movements commute (tracking enforces no bound)",
    ),
    c(
        "scm-suite/price-version-track",
        Confluence::Coordinated,
        "price updates are last-writer-wins guarded by version",
    ),
    c(
        "scm-suite/order-version-track",
        Confluence::Coordinated,
        "order updates are last-writer-wins guarded by version",
    ),
    // ── JumpServer ─────────────────────────────────────────────────
    c(
        "jumpserver/grant-privilege",
        Confluence::Coordinated,
        "at most one grant per (user, asset)",
    ),
    c(
        "jumpserver/asset-update",
        Confluence::Coordinated,
        "asset read-modify-write applies against the latest record",
    ),
    c(
        "jumpserver/session-limit",
        Confluence::Escrow,
        "concurrent sessions per user <= limit",
    ),
    c(
        "jumpserver/node-move",
        Confluence::Coordinated,
        "the asset tree stays acyclic and connected",
    ),
    c(
        "jumpserver/credential-rotate",
        Confluence::Coordinated,
        "one rotation at a time per credential",
    ),
    // ── Saleor ─────────────────────────────────────────────────────
    c(
        "saleor/checkout-complete",
        Confluence::Coordinated,
        "a checkout completes into exactly one order",
    ),
    c(
        "saleor/payment-capture",
        Confluence::Coordinated,
        "capture happens at most once per authorization",
    ),
    c(
        "saleor/payment-refund",
        Confluence::Escrow,
        "refunded total <= captured total",
    ),
    c(
        "saleor/stock-allocate",
        Confluence::Escrow,
        "stocks.quantity covers every open allocation (stock >= 0)",
    ),
    c(
        "saleor/stock-deallocate",
        Confluence::Confluent,
        "deallocation credits commute (returns have no bound)",
    ),
    c(
        "saleor/stock-adjust",
        Confluence::Escrow,
        "stocks.quantity >= 0 under negative adjustments",
    ),
    c(
        "saleor/order-fulfill",
        Confluence::Coordinated,
        "fulfillment consumes each allocation exactly once",
    ),
    c(
        "saleor/order-cancel",
        Confluence::Coordinated,
        "cancellation releases allocations and advances state once",
    ),
    c(
        "saleor/gift-card-redeem",
        Confluence::Escrow,
        "gift-card balance >= 0",
    ),
    c(
        "saleor/voucher-apply",
        Confluence::Escrow,
        "voucher uses <= usage limit",
    ),
    c(
        "saleor/checkout-shipping",
        Confluence::Coordinated,
        "shipping method matches the address it was quoted for",
    ),
    c(
        "saleor/checkout-billing",
        Confluence::Coordinated,
        "billing updates apply against the latest checkout state",
    ),
    c(
        "saleor/payment-void",
        Confluence::Coordinated,
        "void only transitions from a voidable state",
    ),
    c(
        "saleor/warehouse-assign",
        Confluence::Coordinated,
        "each order line is sourced from exactly one warehouse",
    ),
    c(
        "saleor/digital-download",
        Confluence::Escrow,
        "downloads <= max downloads per purchase",
    ),
    c(
        "saleor/checkout-lines",
        Confluence::Confluent,
        "line quantities accumulate commutatively per variant",
    ),
];

/// Const constructor keeping the table readable.
const fn c(id: &'static str, class: Confluence, invariant: &'static str) -> Classification {
    Classification {
        id,
        class,
        invariant,
    }
}

/// Look up a case's classification by id.
pub fn classify(id: &str) -> Option<&'static Classification> {
    CLASSIFICATION.iter().find(|c| c.id == id)
}

/// Number of corpus cases in each bucket, in [`Confluence::all`] order.
pub fn counts() -> [(Confluence, usize); 3] {
    Confluence::all().map(|class| {
        (
            class,
            CLASSIFICATION.iter().filter(|c| c.class == class).count(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus_data::CASES;

    #[test]
    fn classification_is_a_bijection_with_the_corpus() {
        assert_eq!(CLASSIFICATION.len(), CASES.len());
        for (case, class) in CASES.iter().zip(CLASSIFICATION) {
            assert_eq!(case.id, class.id, "classification must follow corpus order");
        }
    }

    #[test]
    fn every_bucket_is_populated_and_totals_add_up() {
        let counts = counts();
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, CASES.len());
        for (class, n) in counts {
            assert!(n > 0, "{class} bucket must not be empty");
        }
        // Most ad hoc transactions defend genuinely order-sensitive
        // invariants; coordination-avoidance is the minority sport.
        let coordinated = counts[2].1;
        assert!(coordinated > counts[0].1 && coordinated > counts[1].1);
    }

    #[test]
    fn escrow_cases_name_a_budget_bound() {
        for class in CLASSIFICATION
            .iter()
            .filter(|c| c.class == Confluence::Escrow)
        {
            assert!(
                class.invariant.contains("<=") || class.invariant.contains(">="),
                "escrow invariant must state its bound: {}",
                class.id
            );
        }
    }

    #[test]
    fn lookup_matches_the_executable_rebasing() {
        // The apps layer specializes exactly these hot paths; keep the
        // classification honest about them.
        assert_eq!(
            classify("discourse/like-post").unwrap().class,
            Confluence::Confluent
        );
        assert_eq!(
            classify("mastodon/notification-dedupe").unwrap().class,
            Confluence::Confluent
        );
        assert_eq!(
            classify("mastodon/invite-redeem").unwrap().class,
            Confluence::Escrow
        );
        assert_eq!(
            classify("saleor/stock-allocate").unwrap().class,
            Confluence::Escrow
        );
        assert_eq!(
            classify("spree/order-stock-decrement").unwrap().class,
            Confluence::Escrow
        );
        assert_eq!(
            classify("scm-suite/account-balance").unwrap().class,
            Confluence::Escrow
        );
        assert_eq!(
            classify("discourse/create-post").unwrap().class,
            Confluence::Coordinated
        );
        assert!(classify("nonexistent/case").is_none());
    }
}
