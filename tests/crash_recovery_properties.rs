//! Crash-point fuzzing for the §4.3 payment flow (issue \[60\]): random
//! sequences of payment creation, processing (with crashes injected at the
//! paper's crash point), and boot recovery must always agree with a
//! per-order state-machine model — and recovery must always restore
//! serviceability.

use adhoc_transactions::apps::{spree, Mode};
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::sim::{FaultKind, FaultPlan, FaultRule};
use adhoc_transactions::storage::{
    restart_from, Column, ColumnType, Database, DbConfig, EngineProfile, IsolationLevel, Schema,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const ORDERS: i64 = 3;

/// The model's view of one order's payment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PayState {
    None,
    New,
    Processing,
    Completed,
}

#[derive(Debug, Clone, Copy)]
enum CrashOp {
    AddPayment { order: i64 },
    Process { order: i64, crash: bool },
    BootRecovery,
}

fn crash_op() -> impl Strategy<Value = CrashOp> {
    prop_oneof![
        (1..=ORDERS).prop_map(|order| CrashOp::AddPayment { order }),
        (1..=ORDERS, any::<bool>()).prop_map(|(order, crash)| CrashOp::Process { order, crash }),
        Just(CrashOp::BootRecovery),
    ]
}

/// Group-commit durability, fuzzed: a random interleaving of acked
/// commits and commits that die *before* the fsync boundary
/// (`CrashBeforeDurable`), on a database whose WAL runs under
/// `WalSyncPolicy::GroupCommit`. After the crash and a WAL replay into a
/// fresh database:
///
/// * the durable history is a **prefix** of commit order — recovery never
///   skips a middle commit or invents one;
/// * every **acked** commit is inside that prefix (acked ⇒ durable even
///   though group commit defers the fsync to a shared leader sync);
/// * an **unacked tail** (crashed commits with no later acked commit
///   behind them) vanishes atomically — all of its records, or none.
fn group_commit_prefix_property(commits: &[(i64, bool)]) {
    const SEED: u64 = 0x6a5f;
    let db =
        Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal_group_commit());
    db.create_table(
        Schema::new(
            "accounts",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("balance", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        for id in 1..=4 {
            t.insert("accounts", &[("id", id.into()), ("balance", 0.into())])?;
        }
        Ok(())
    })
    .unwrap();

    // Replay the schedule: each commit writes `val = position + 1` to its
    // row. A crashing commit gets a one-shot plan armed at its own commit.
    let mut history: Vec<(i64, i64)> = Vec::new(); // (id, val) in commit order
    let mut last_acked: Option<usize> = None;
    for (pos, &(id, crash)) in commits.iter().enumerate() {
        let val = pos as i64 + 1;
        if crash {
            let plan = FaultPlan::new(
                SEED,
                vec![FaultRule::at_ops(FaultKind::CrashBeforeDurable, &[0])],
            );
            db.inject_faults(plan);
            let err = db.run(IsolationLevel::ReadCommitted, |t| {
                t.update("accounts", id, &[("balance", val.into())])
            });
            assert!(err.is_err(), "CrashBeforeDurable must not ack");
            db.inject_faults(FaultPlan::new(SEED, vec![]));
        } else {
            db.run(IsolationLevel::ReadCommitted, |t| {
                t.update("accounts", id, &[("balance", val.into())])
            })
            .unwrap();
            last_acked = Some(pos);
        }
        history.push((id, val));
    }

    // Crash: only the WAL's durable prefix survives into the new process.
    let reborn =
        Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal_group_commit());
    reborn
        .create_table(
            Schema::new(
                "accounts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("balance", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
    let report = restart_from(&db, &reborn).unwrap();
    assert!(report.clean(), "group frames never tear in a clean crash");

    // records_applied counts the seed commit too when it became durable.
    let seeded = report.records_applied > 0;
    let replayed = report.records_applied.saturating_sub(1) as usize;
    assert!(replayed <= history.len());
    if let Some(acked) = last_acked {
        assert!(seeded, "an acked commit implies the seed is durable too");
        assert!(
            replayed > acked,
            "acked commit at position {acked} lost: only {replayed} replayed"
        );
    }
    // Prefix check: each row's recovered balance is exactly the last value
    // the first `replayed` commits wrote to it (0 if none and the seed
    // survived; absent entirely if nothing was durable).
    for id in 1..=4 {
        let expected = if seeded {
            history[..replayed]
                .iter()
                .rev()
                .find(|(h, _)| *h == id)
                .map_or(Some(0), |(_, v)| Some(*v))
        } else {
            None
        };
        let got = reborn
            .latest_committed("accounts", id)
            .unwrap()
            .map(|r| r.values[1].as_int());
        assert_eq!(got, expected, "row {id} diverges from the durable prefix");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// See [`group_commit_prefix_property`].
    #[test]
    fn group_commit_acked_survives_and_unacked_tail_vanishes(
        commits in proptest::collection::vec((1i64..=4, any::<bool>()), 1..24),
    ) {
        group_commit_prefix_property(&commits);
    }

    /// Every return value matches the state machine, completed payments
    /// never regress, and a final boot recovery always makes every order
    /// with a payment completable — the paper's fix, fuzzed.
    #[test]
    fn payment_crashes_recover_to_a_serviceable_state(
        ops in proptest::collection::vec(crash_op(), 1..30),
    ) {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        let orm = spree::setup(&db).unwrap();
        let app = spree::Spree::new(orm, Arc::new(MemLock::new()), Mode::AdHoc);
        for order in 1..=ORDERS {
            app.seed_order(order).unwrap();
        }
        let mut model: HashMap<i64, PayState> =
            (1..=ORDERS).map(|o| (o, PayState::None)).collect();

        for op in &ops {
            match *op {
                CrashOp::AddPayment { order } => {
                    let created = app.add_payment(order).unwrap();
                    let state = model.get_mut(&order).unwrap();
                    prop_assert_eq!(created, *state == PayState::None);
                    if created {
                        *state = PayState::New;
                    }
                }
                CrashOp::Process { order, crash } => {
                    let done = app.process_payment(order, crash).unwrap();
                    let state = model.get_mut(&order).unwrap();
                    match *state {
                        PayState::New => {
                            if crash {
                                prop_assert!(!done, "crashed processing reports failure");
                                *state = PayState::Processing;
                            } else {
                                prop_assert!(done);
                                *state = PayState::Completed;
                            }
                        }
                        // Stuck, absent, or already-finished payments all
                        // refuse — the §4.3 symptom.
                        PayState::None | PayState::Processing | PayState::Completed => {
                            prop_assert!(!done, "{:?} must refuse", *state);
                        }
                    }
                }
                CrashOp::BootRecovery => {
                    let stuck = model.values().filter(|s| **s == PayState::Processing).count();
                    prop_assert_eq!(app.boot_recovery().unwrap(), stuck);
                    for state in model.values_mut() {
                        if *state == PayState::Processing {
                            *state = PayState::New;
                        }
                    }
                }
            }
            for order in 1..=ORDERS {
                prop_assert!(app.one_payment_per_order(order).unwrap());
            }
        }

        // The fix's promise: after one boot recovery, every order that has
        // a payment can finish it.
        app.boot_recovery().unwrap();
        for (order, state) in &model {
            match state {
                PayState::None => prop_assert!(!app.process_payment(*order, false).unwrap()),
                PayState::Completed => {
                    prop_assert!(!app.process_payment(*order, false).unwrap());
                }
                PayState::New | PayState::Processing => {
                    prop_assert!(
                        app.process_payment(*order, false).unwrap(),
                        "order {} unserviceable after recovery", order
                    );
                }
            }
        }
    }
}
