//! `paper-eval`: regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! paper-eval [table1|table2|table3|table4|table5a|table5b|table6|table7a|table7b]
//! paper-eval [findings|fig2|fig3|fig4|tables|all]
//! paper-eval bench-json [outdir]
//! ```
//! With no arguments, prints everything (`all`).
//!
//! `bench-json` runs the engine-scaling sweeps and writes machine-readable
//! `BENCH_fig2.json` (storage commit scaling), `BENCH_fig3.json` (KV
//! command scaling), `BENCH_wal.json` (WAL overhead),
//! `BENCH_occ.json` (cured `orm::occ` vs hand-rolled AHT),
//! `BENCH_resilience.json` (metastability ablation), and
//! `BENCH_traffic.json` (open-loop traffic SLO ablation) into `outdir`
//! (default `.`). Set `BENCH_SCALE=smoke`
//! for a tiny CI duty cycle. If `tools/baselines/fig2_pre_shard.json` /
//! `fig3_pre_shard.json` exist relative to the current directory, they are
//! embedded under `"baseline"` so one file records before/after.

use adhoc_apps::Mode;
use adhoc_bench::{fig2, fig3, fig4, isolation_ablation, resilience, scaling, ttl_ablation};
use adhoc_sim::stats::{fmt_duration, geometric_mean};
use adhoc_sim::LatencyModel;
use adhoc_study::report;

fn print_table6() {
    println!("Table 6: APIs and setups for evaluating coordination granularities.");
    println!(
        "  {:<5} {:<28} {:<12} {:<16} {:<16}",
        "Gran.", "API(s)", "Application", "RDBMS", "DBT isolation"
    );
    for s in fig3::SETUPS {
        println!(
            "  {:<5} {:<28} {:<12} {:<16} {:<16}",
            s.granularity.label(),
            s.api,
            s.application,
            s.rdbms.name(),
            s.dbt_isolation.name()
        );
        println!(
            "        workload w/ contention: {}",
            s.workload_with_contention
        );
    }
    println!();
}

fn run_fig2() {
    println!("Figure 2: Latencies of different lock implementations.");
    println!("  (latency model: paper deployment — KV RTT 250 us, SQL RTT 300 us, flush 10 ms)");
    println!("  {:<10} {:>14} {:>14}", "impl", "lock()", "unlock()");
    for row in fig2::lock_latencies(LatencyModel::paper(), 200) {
        println!(
            "  {:<10} {:>14} {:>14}",
            row.implementation.label(),
            fmt_duration(row.lock),
            fmt_duration(row.unlock)
        );
    }
    println!();
}

fn run_fig3() {
    println!("Figure 3: API throughputs using different coordination granularities.");
    for contention in [true, false] {
        println!(
            "  ({}) {} contention:",
            if contention { "a" } else { "b" },
            if contention { "with" } else { "without" }
        );
        let mut ratios = Vec::new();
        for setup in fig3::SETUPS {
            let cfg = fig3::Fig3Config {
                contention,
                ..fig3::Fig3Config::default()
            };
            let aht = fig3::run_granularity(setup.granularity, Mode::AdHoc, &cfg);
            let dbt = fig3::run_granularity(setup.granularity, Mode::DatabaseTxn, &cfg);
            let ratio = aht.throughput_rps / dbt.throughput_rps;
            ratios.push(ratio);
            println!(
                "    {:<4} AHT {:>8.0} req/s   DBT {:>8.0} req/s   (AHT/DBT = {:.2}; DBT deadlocks {}, serialization failures {})",
                setup.granularity.label(),
                aht.throughput_rps,
                dbt.throughput_rps,
                ratio,
                dbt.deadlocks,
                dbt.serialization_failures
            );
        }
        if let Some(geo) = geometric_mean(&ratios) {
            println!("    geometric-mean AHT/DBT = {geo:.2}");
        }
    }
    println!();
}

fn run_fig4() {
    println!("Figure 4: API latencies using different rollback methods (shrink-image).");
    for conflicts in [true, false] {
        println!(
            "  ({}) {} conflicting edit-post load:",
            if conflicts { "a" } else { "b" },
            if conflicts { "with" } else { "without" }
        );
        let cfg = fig4::Fig4Config {
            conflicts,
            ..fig4::Fig4Config::default()
        };
        for strategy in fig4::strategies() {
            let row = fig4::run_rollback(strategy, &cfg);
            println!(
                "    {:<7} mean latency {:>12}   (image-processing restarts: {})",
                fig4::strategy_label(strategy),
                fmt_duration(row.mean_latency),
                row.restarts
            );
        }
    }
    println!();
}

fn print_tables() {
    for render in [
        report::render_table1(),
        report::render_table2(),
        report::render_table3(),
        report::render_table4(),
        report::render_table5a(),
        report::render_table5b(),
    ] {
        println!("{render}");
    }
    print_table6();
    println!("{}", report::render_table7a());
    println!("{}", report::render_table7b());
    println!("{}", report::render_confluence());
}

fn run_ttl_ablation() {
    println!("Ablation: lease TTL vs critical-section length (Mastodon, issue [65]).");
    println!("  4 redeemers race a 1-use invitation; overuse = more than one succeeds.");
    println!("  {:<14} {:>16}", "cs / ttl", "overuse trials");
    for row in ttl_ablation::run_ttl_ablation(&[0.25, 0.5, 1.0, 2.0, 4.0], 20) {
        println!(
            "  {:<14} {:>9} / {}",
            format!("{:.2}x", row.cs_over_ttl),
            row.overuse_trials,
            row.trials
        );
    }
    println!();
}

fn run_isolation_ablation() {
    println!("Ablation: per-operation isolation hints (Table 7b / §3.1.1 flexibility).");
    println!("  Serializable workers mix a hot-counter RMW with 4 dashboard reads");
    println!("  while a background writer churns the dashboard rows.");
    println!(
        "  {:<34} {:>12} {:>22}",
        "configuration", "txn/s", "serialization aborts"
    );
    for row in isolation_ablation::run_isolation_ablation() {
        println!(
            "  {:<34} {:>12.0} {:>22}",
            row.label, row.throughput_rps, row.serialization_failures
        );
    }
    println!();
}

fn run_resilience_ablation() {
    println!("Ablation: metastability under a 30-tick partition storm.");
    println!("  Goodput per tick by phase; 'full' must return to baseline,");
    println!("  'naive' stays pinned by its own backlog on a healthy backend.");
    println!(
        "  {:<14} {:>9} {:>7} {:>9} {:>6} {:>10} {:>8} {:>7}",
        "configuration", "baseline", "storm", "recovery", "tail", "end_queue", "wasted", "opened"
    );
    for r in resilience::resilience_sweep() {
        println!(
            "  {:<14} {:>9.2} {:>7.2} {:>9.2} {:>6.2} {:>10} {:>8} {:>7}",
            r.config,
            r.baseline,
            r.storm,
            r.recovery,
            r.tail,
            r.end_queue,
            r.wasted,
            r.times_opened
        );
    }
    println!();
}

fn run_traffic_ablation() {
    println!("Ablation: open-loop traffic against the service front door.");
    println!(
        "  Goodput = completions within the {}ms SLO. Past saturation the",
        adhoc_traffic::SLO.as_millis()
    );
    println!("  full stack refuses/sheds at the edge and plateaus; naive serves");
    println!("  everything late, so its goodput collapses on a healthy backend.");
    let scale = adhoc_traffic::TrafficScale::from_env();
    println!("  saturation: {:.0} req/s", scale.saturation_rps());
    println!(
        "  {:<14} {:>6} {:>8} {:>11} {:>11} {:>8} {:>8} {:>9} {:>10} {:>6}",
        "configuration",
        "load_x",
        "arrivals",
        "offered/s",
        "goodput/s",
        "p50_ms",
        "p99_ms",
        "limited",
        "queue_full",
        "shed"
    );
    for r in adhoc_traffic::traffic_sweep(&scale) {
        println!(
            "  {:<14} {:>6.2} {:>8} {:>11.1} {:>11.1} {:>8.2} {:>8.2} {:>9} {:>10} {:>6}",
            r.config,
            r.load_x,
            r.arrivals,
            r.offered_rps,
            r.goodput_rps,
            r.p50_ms,
            r.p99_ms,
            r.rate_limited,
            r.queue_full,
            r.shed
        );
    }
    println!();
}

fn run_bench_json(outdir: &str) {
    let baseline2 = std::fs::read_to_string("tools/baselines/fig2_pre_shard.json").ok();
    let baseline3 = std::fs::read_to_string("tools/baselines/fig3_pre_shard.json").ok();
    let (fig2_json, fig3_json) = scaling::bench_json(baseline2.as_deref(), baseline3.as_deref());
    std::fs::create_dir_all(outdir).expect("create outdir");
    let wal_json = scaling::wal_bench_json();
    let baseline_occ = std::fs::read_to_string("tools/baselines/occ_pre_cure.json").ok();
    let occ_json = scaling::occ_bench_json(baseline_occ.as_deref());
    let baseline_conf = std::fs::read_to_string("tools/baselines/confluence.json").ok();
    let confluence_json = scaling::confluence_bench_json(baseline_conf.as_deref());
    let resilience_json = resilience::resilience_bench_json();
    let traffic_json = adhoc_traffic::traffic_bench_json();
    let fig2_path = format!("{outdir}/BENCH_fig2.json");
    let fig3_path = format!("{outdir}/BENCH_fig3.json");
    let wal_path = format!("{outdir}/BENCH_wal.json");
    let occ_path = format!("{outdir}/BENCH_occ.json");
    let confluence_path = format!("{outdir}/BENCH_confluence.json");
    let resilience_path = format!("{outdir}/BENCH_resilience.json");
    let traffic_path = format!("{outdir}/BENCH_traffic.json");
    std::fs::write(&fig2_path, &fig2_json).expect("write BENCH_fig2.json");
    std::fs::write(&fig3_path, &fig3_json).expect("write BENCH_fig3.json");
    std::fs::write(&wal_path, &wal_json).expect("write BENCH_wal.json");
    std::fs::write(&occ_path, &occ_json).expect("write BENCH_occ.json");
    std::fs::write(&confluence_path, &confluence_json).expect("write BENCH_confluence.json");
    std::fs::write(&resilience_path, &resilience_json).expect("write BENCH_resilience.json");
    std::fs::write(&traffic_path, &traffic_json).expect("write BENCH_traffic.json");
    println!("wrote {fig2_path}");
    print!("{fig2_json}");
    println!("wrote {fig3_path}");
    print!("{fig3_json}");
    println!("wrote {wal_path}");
    print!("{wal_json}");
    println!("wrote {occ_path}");
    print!("{occ_json}");
    println!("wrote {confluence_path}");
    print!("{confluence_json}");
    println!("wrote {resilience_path}");
    print!("{resilience_json}");
    println!("wrote {traffic_path}");
    print!("{traffic_json}");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => print!("{}", report::render_table1()),
        "table2" => print!("{}", report::render_table2()),
        "table3" => print!("{}", report::render_table3()),
        "table4" => print!("{}", report::render_table4()),
        "table5a" => print!("{}", report::render_table5a()),
        "table5b" => print!("{}", report::render_table5b()),
        "table6" => print_table6(),
        "table7a" => print!("{}", report::render_table7a()),
        "table7b" => print!("{}", report::render_table7b()),
        "confluence" => print!("{}", report::render_confluence()),
        "findings" => print!("{}", report::render_findings()),
        "extension" => print!("{}", adhoc_study::render_extension()),
        "playbook" => print!("{}", report::render_playbook()),
        "fig2" => run_fig2(),
        "fig3" => run_fig3(),
        "fig4" => run_fig4(),
        "ablation-ttl" => run_ttl_ablation(),
        "ablation-isolation" => run_isolation_ablation(),
        "ablation-resilience" => run_resilience_ablation(),
        "ablation-traffic" => run_traffic_ablation(),
        "bench-json" => {
            let outdir = std::env::args().nth(2).unwrap_or_else(|| ".".to_string());
            run_bench_json(&outdir);
        }
        "tables" => print_tables(),
        "all" => {
            print_tables();
            println!("{}", report::render_findings());
            println!("{}", report::render_playbook());
            println!("{}", adhoc_study::render_extension());
            run_fig2();
            run_fig3();
            run_fig4();
            run_ttl_ablation();
            run_isolation_ablation();
            run_resilience_ablation();
            run_traffic_ablation();
        }
        other => {
            eprintln!("unknown target {other:?}");
            eprintln!(
                "usage: paper-eval [table1|table2|table3|table4|table5a|table5b|table6|table7a|table7b|confluence|findings|extension|playbook|fig2|fig3|fig4|ablation-ttl|ablation-isolation|ablation-resilience|ablation-traffic|bench-json|tables|all]"
            );
            std::process::exit(2);
        }
    }
}
