//! The lock manager: record, gap, table and advisory locks with wait-for
//! graph deadlock detection.
//!
//! Behavioural targets, all taken from the paper:
//!
//! * shared→exclusive upgrades are possible and two concurrent upgraders
//!   deadlock (the MySQL RMW deadlock of §3.3.1 — "if they both have
//!   successfully acquired reader locks, then their updates block each
//!   other");
//! * gap locks don't conflict with one another but block *inserts* into the
//!   covered interval by other transactions (InnoDB insert-intention
//!   semantics, §3.3.2);
//! * deadlocks are detected immediately via a wait-for graph and the
//!   *requester* that closes the cycle is the victim (matching the paper's
//!   observation that both RMW users "fail" without external intervention
//!   being modelled as one aborting);
//! * advisory locks model PostgreSQL's explicit user locks (§6, Table 7a),
//!   the machinery behind the coordination-hints proxy in `adhoc-core`.

use crate::error::{DbError, TxnId};
use crate::fasthash::{FastMap, FastSet};
use crate::predicate::ValueInterval;
use crate::shard::{shard_of, ShardSet};
use crate::value::Value;
use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared or exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (reader) mode: compatible with other shared holders.
    Shared,
    /// Exclusive (writer) mode: excludes every other holder.
    Exclusive,
}

/// Identifies a lockable resource.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ResourceId {
    /// A row of a table: (table, primary key).
    Record(usize, i64),
    /// A whole table (explicit table lock hint).
    Table(usize),
    /// A user/advisory lock key.
    Advisory(i64),
    /// A unique-index key: (table, column, value). Held exclusively for the
    /// duration of an insert/update transaction so concurrent duplicate
    /// inserts serialize before the uniqueness check.
    UniqueKey(usize, usize, Value),
}

#[derive(Debug, Default)]
struct LockState {
    /// `(holder, mode, reentrancy count)`. Holder lists are almost always
    /// a single entry, so a flat vector beats per-resource hash maps on
    /// every path. Reentrancy is counted for advisory locks; everything
    /// else holds at 1.
    holders: Vec<(TxnId, LockMode, u32)>,
}

impl LockState {
    /// Can `txn` acquire `mode` right now?
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m, _)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.iter().all(|(t, _, _)| *t == txn),
        }
    }

    /// Holders that block `txn` from acquiring `mode`.
    fn conflicting(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|(t, m, _)| {
                *t != txn
                    && match mode {
                        LockMode::Shared => *m == LockMode::Exclusive,
                        LockMode::Exclusive => true,
                    }
            })
            .map(|(t, _, _)| *t)
            .collect()
    }

    /// Grant `mode`; returns true when this is `txn`'s first hold of the
    /// resource (the caller then records it in the held-resource index).
    fn grant(&mut self, txn: TxnId, mode: LockMode) -> bool {
        if let Some(h) = self.holders.iter_mut().find(|(t, _, _)| *t == txn) {
            // Upgrades stick; downgrades are ignored (2PL never downgrades).
            if mode == LockMode::Exclusive {
                h.1 = LockMode::Exclusive;
            }
            h.2 += 1;
            false
        } else {
            self.holders.push((txn, mode, 1));
            true
        }
    }
}

/// A registered gap lock over an index interval.
#[derive(Debug, Clone)]
struct GapLock {
    txn: TxnId,
    interval: ValueInterval,
}

#[derive(Debug, Default)]
struct Inner {
    locks: FastMap<ResourceId, LockState>,
    /// txn → the resources it holds, so release visits only those instead
    /// of sweeping the whole lock table.
    held: FastMap<TxnId, Vec<ResourceId>>,
    /// Gap locks per (table, column-index).
    gaps: FastMap<(usize, usize), Vec<GapLock>>,
    /// txn → number of gap locks it has registered (lets release skip the
    /// gap sweep entirely for the common gap-free transaction).
    gap_counts: FastMap<TxnId, u32>,
    /// waiter → the holders it is currently blocked on.
    waits_for: FastMap<TxnId, FastSet<TxnId>>,
    deadlocks: u64,
    timeouts: u64,
}

impl Inner {
    /// Is `start` part of a wait cycle? DFS over `waits_for`.
    fn in_cycle(&self, start: TxnId) -> bool {
        let mut stack: Vec<TxnId> = self
            .waits_for
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen = FastSet::default();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Lock-manager statistics (diagnostics for benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Deadlock victims chosen so far.
    pub deadlocks: u64,
    /// Lock waits that exceeded the timeout.
    pub timeouts: u64,
    /// Total blocking waits entered.
    pub waits: u64,
}

/// The lock manager. One per [`Database`](crate::Database).
pub struct LockManager {
    inner: Mutex<Inner>,
    cv: Condvar,
    timeout: Duration,
    waits: AtomicU64,
}

impl LockManager {
    /// A lock manager whose waits give up after `timeout`.
    pub fn new(timeout: Duration) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            timeout,
            waits: AtomicU64::new(0),
        }
    }

    /// Acquire a record lock, blocking until granted, deadlock, or timeout.
    pub fn lock_record(&self, txn: TxnId, table: usize, row: i64, mode: LockMode) -> Result<()> {
        self.lock_record_within(txn, table, row, mode, None)
    }

    /// [`lock_record`](Self::lock_record) with the wait additionally
    /// capped by `cap` (a transaction deadline's remaining time): the
    /// effective timeout is the smaller of the engine-wide limit and the
    /// cap.
    pub fn lock_record_within(
        &self,
        txn: TxnId,
        table: usize,
        row: i64,
        mode: LockMode,
        cap: Option<Duration>,
    ) -> Result<()> {
        self.lock_resource(txn, ResourceId::Record(table, row), mode, cap)
    }

    /// Acquire an explicit table lock.
    pub fn lock_table(&self, txn: TxnId, table: usize, mode: LockMode) -> Result<()> {
        self.lock_table_within(txn, table, mode, None)
    }

    /// [`lock_table`](Self::lock_table) with a deadline-derived wait cap.
    pub fn lock_table_within(
        &self,
        txn: TxnId,
        table: usize,
        mode: LockMode,
        cap: Option<Duration>,
    ) -> Result<()> {
        self.lock_resource(txn, ResourceId::Table(table), mode, cap)
    }

    /// Acquire an advisory (user) lock. Reentrant per transaction.
    pub fn lock_advisory(&self, txn: TxnId, key: i64) -> Result<()> {
        self.lock_advisory_within(txn, key, None)
    }

    /// [`lock_advisory`](Self::lock_advisory) with a deadline-derived wait
    /// cap.
    pub fn lock_advisory_within(&self, txn: TxnId, key: i64, cap: Option<Duration>) -> Result<()> {
        self.lock_resource(txn, ResourceId::Advisory(key), LockMode::Exclusive, cap)
    }

    /// Exclusively lock a unique-index key prior to the uniqueness check.
    pub fn lock_unique_key(
        &self,
        txn: TxnId,
        table: usize,
        column: usize,
        value: Value,
    ) -> Result<()> {
        self.lock_unique_key_within(txn, table, column, value, None)
    }

    /// [`lock_unique_key`](Self::lock_unique_key) with a deadline-derived
    /// wait cap.
    pub fn lock_unique_key_within(
        &self,
        txn: TxnId,
        table: usize,
        column: usize,
        value: Value,
        cap: Option<Duration>,
    ) -> Result<()> {
        self.lock_resource(
            txn,
            ResourceId::UniqueKey(table, column, value),
            LockMode::Exclusive,
            cap,
        )
    }

    /// The row-state shards covered by the locks `txn` currently holds:
    /// the [`shard_of`] each record lock, every shard for a table lock.
    /// Advisory and unique-key locks guard namespaces orthogonal to the
    /// shard map and contribute nothing. Upper layers use this to compare
    /// a transaction's lock footprint against its commit
    /// [`Footprint`](crate::Footprint) without touching engine-global
    /// state.
    pub fn held_shards(&self, txn: TxnId) -> ShardSet {
        let inner = self.inner.lock();
        let mut set = ShardSet::empty();
        if let Some(ids) = inner.held.get(&txn) {
            for id in ids {
                match id {
                    ResourceId::Record(table, row) => set.insert(shard_of(*table, *row)),
                    ResourceId::Table(_) => return ShardSet::all(),
                    ResourceId::Advisory(_) | ResourceId::UniqueKey(..) => {}
                }
            }
        }
        set
    }

    /// Try to acquire an advisory lock without blocking.
    pub fn try_lock_advisory(&self, txn: TxnId, key: i64) -> bool {
        let mut inner = self.inner.lock();
        let id = ResourceId::Advisory(key);
        let state = inner.locks.entry(id.clone()).or_default();
        if state.grantable(txn, LockMode::Exclusive) {
            if state.grant(txn, LockMode::Exclusive) {
                inner.held.entry(txn).or_default().push(id);
            }
            true
        } else {
            false
        }
    }

    /// Release one reentrancy level of an advisory lock. Returns false when
    /// the transaction did not hold it.
    pub fn unlock_advisory(&self, txn: TxnId, key: i64) -> bool {
        let mut inner = self.inner.lock();
        let id = ResourceId::Advisory(key);
        let Some(state) = inner.locks.get_mut(&id) else {
            return false;
        };
        let Some(pos) = state.holders.iter().position(|(t, _, _)| *t == txn) else {
            return false;
        };
        state.holders[pos].2 -= 1;
        if state.holders[pos].2 == 0 {
            state.holders.swap_remove(pos);
            if state.holders.is_empty() {
                inner.locks.remove(&id);
            }
            if let Some(held) = inner.held.get_mut(&txn) {
                if let Some(hp) = held.iter().position(|r| *r == id) {
                    held.swap_remove(hp);
                }
            }
            self.cv.notify_all();
        }
        true
    }

    fn lock_resource(
        &self,
        txn: TxnId,
        id: ResourceId,
        mode: LockMode,
        cap: Option<Duration>,
    ) -> Result<()> {
        let mut deadline = None;
        loop {
            {
                let mut inner = self.inner.lock();
                let state = inner.locks.entry(id.clone()).or_default();
                if state.grantable(txn, mode) {
                    if state.grant(txn, mode) {
                        inner.held.entry(txn).or_default().push(id);
                    }
                    if !inner.waits_for.is_empty() {
                        inner.waits_for.remove(&txn);
                    }
                    return Ok(());
                }
                let blockers = state.conflicting(txn, mode);
                if !self.block_on(&mut inner, txn, blockers, &mut deadline, cap)? {
                    continue;
                }
            }
            self.cooperative_wait(txn, deadline.expect("deadline set before waiting"))?;
        }
    }

    /// Register a gap lock over an index interval. Gap locks are mutually
    /// compatible, so this never blocks.
    pub fn lock_gap(&self, txn: TxnId, table: usize, column: usize, interval: ValueInterval) {
        let mut inner = self.inner.lock();
        inner
            .gaps
            .entry((table, column))
            .or_default()
            .push(GapLock { txn, interval });
        *inner.gap_counts.entry(txn).or_insert(0) += 1;
    }

    /// Insert-intention check: wait while any *other* transaction holds a
    /// gap lock covering `key` on this index.
    pub fn check_insert(&self, txn: TxnId, table: usize, column: usize, key: &Value) -> Result<()> {
        self.check_insert_within(txn, table, column, key, None)
    }

    /// [`check_insert`](Self::check_insert) with a deadline-derived wait
    /// cap on the gap-holder wait.
    pub fn check_insert_within(
        &self,
        txn: TxnId,
        table: usize,
        column: usize,
        key: &Value,
        cap: Option<Duration>,
    ) -> Result<()> {
        let mut deadline = None;
        loop {
            {
                let mut inner = self.inner.lock();
                let blockers: Vec<TxnId> = inner
                    .gaps
                    .get(&(table, column))
                    .map(|gaps| {
                        gaps.iter()
                            .filter(|g| g.txn != txn && g.interval.contains(key))
                            .map(|g| g.txn)
                            .collect()
                    })
                    .unwrap_or_default();
                if blockers.is_empty() {
                    inner.waits_for.remove(&txn);
                    return Ok(());
                }
                if !self.block_on(&mut inner, txn, blockers, &mut deadline, cap)? {
                    continue;
                }
            }
            self.cooperative_wait(txn, deadline.expect("deadline set before waiting"))?;
        }
    }

    /// Non-blocking query: which other transactions hold gaps covering `key`?
    pub fn gap_holders(&self, txn: TxnId, table: usize, column: usize, key: &Value) -> Vec<TxnId> {
        let inner = self.inner.lock();
        inner
            .gaps
            .get(&(table, column))
            .map(|gaps| {
                gaps.iter()
                    .filter(|g| g.txn != txn && g.interval.contains(key))
                    .map(|g| g.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// One round of blocking: record wait edges, detect deadlock, sleep.
    ///
    /// Returns `Ok(true)` when the calling thread is a deterministically
    /// scheduled task: the wait edges are recorded but no condvar wait
    /// happens — the caller must drop the manager mutex and call
    /// [`cooperative_wait`](Self::cooperative_wait) instead, so the
    /// scheduler (not the OS) decides when the blockers run.
    fn block_on(
        &self,
        inner: &mut parking_lot::MutexGuard<'_, Inner>,
        txn: TxnId,
        blockers: Vec<TxnId>,
        deadline: &mut Option<Instant>,
        cap: Option<Duration>,
    ) -> Result<bool> {
        debug_assert!(!blockers.is_empty());
        self.waits.fetch_add(1, Ordering::Relaxed);
        inner.waits_for.insert(txn, blockers.into_iter().collect());
        if inner.in_cycle(txn) {
            inner.waits_for.remove(&txn);
            inner.deadlocks += 1;
            self.cv.notify_all();
            return Err(DbError::Deadlock { txn });
        }
        // The timeout clock starts at the first real wait, not at lock
        // entry: the granted-without-waiting path never reads the clock.
        // A transaction deadline caps the wait below the engine-wide
        // limit — an out-of-time request must not camp in the wait queue.
        let wait = cap.map_or(self.timeout, |c| c.min(self.timeout));
        let deadline = *deadline.get_or_insert_with(|| Instant::now() + wait);
        if adhoc_sim::sched::under_scheduler() {
            return Ok(true);
        }
        if self.cv.wait_until(inner, deadline).timed_out() {
            inner.waits_for.remove(&txn);
            inner.timeouts += 1;
            return Err(DbError::LockWaitTimeout { txn });
        }
        Ok(false)
    }

    /// The scheduled-task half of a blocking wait: yield (without holding
    /// the manager mutex) until rescheduled, then enforce the deadline.
    fn cooperative_wait(&self, txn: TxnId, deadline: Instant) -> Result<()> {
        adhoc_sim::sched::yield_point(adhoc_sim::sched::SchedPoint::LockWait);
        if Instant::now() >= deadline {
            let mut inner = self.inner.lock();
            inner.waits_for.remove(&txn);
            inner.timeouts += 1;
            return Err(DbError::LockWaitTimeout { txn });
        }
        Ok(())
    }

    /// Release every lock held by `txn` (commit/abort). Visits only the
    /// resources the held index records for `txn` — O(held), not O(lock
    /// table).
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        // Waiters only ever block on lock or gap *holders*, so a release
        // that surrendered neither cannot unblock anyone — skip the
        // notify_all broadcast (the common case for read-only and
        // lock-free commits).
        let mut notify = false;
        if let Some(ids) = inner.held.remove(&txn) {
            notify = !ids.is_empty();
            for id in ids {
                if let Some(state) = inner.locks.get_mut(&id) {
                    state.holders.retain(|(t, _, _)| *t != txn);
                    if state.holders.is_empty() {
                        inner.locks.remove(&id);
                    }
                }
            }
        }
        if inner.gap_counts.remove(&txn).is_some() {
            notify = true;
            inner.gaps.retain(|_, gaps| {
                gaps.retain(|g| g.txn != txn);
                !gaps.is_empty()
            });
        }
        if !inner.waits_for.is_empty() {
            inner.waits_for.remove(&txn);
            for blocked_on in inner.waits_for.values_mut() {
                blocked_on.remove(&txn);
            }
        }
        drop(inner);
        if notify {
            self.cv.notify_all();
        }
    }

    /// Drop the *entire* lock table: every holder, every gap lock, every
    /// wait edge — restart semantics. Engine locks and session advisory
    /// locks live in server memory only, so a server restart
    /// ([`Database::reset`](crate::Database::reset)) forgets all of them,
    /// including locks held by sessions the restart did not drain (the
    /// pre-PR-5 behaviour left those dangling). Parked waiters are woken
    /// and re-acquire against the empty table.
    pub fn clear_all(&self) {
        let mut inner = self.inner.lock();
        inner.locks.clear();
        inner.held.clear();
        inner.gaps.clear();
        inner.gap_counts.clear();
        inner.waits_for.clear();
        drop(inner);
        self.cv.notify_all();
    }

    /// Mode currently held by `txn` on a record, if any (test helper).
    pub fn held_record_mode(&self, txn: TxnId, table: usize, row: i64) -> Option<LockMode> {
        let inner = self.inner.lock();
        inner
            .locks
            .get(&ResourceId::Record(table, row))
            .and_then(|s| s.holders.iter().find(|(t, _, _)| *t == txn))
            .map(|(_, m, _)| *m)
    }

    /// Counters.
    pub fn stats(&self) -> LockStats {
        let inner = self.inner.lock();
        LockStats {
            deadlocks: inner.deadlocks,
            timeouts: inner.timeouts,
            waits: self.waits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_secs(5)))
    }

    #[test]
    fn held_shards_tracks_row_locks_only() {
        let m = mgr();
        assert!(m.held_shards(1).is_empty());
        m.lock_record(1, 0, 42, LockMode::Exclusive).unwrap();
        m.lock_advisory(1, 7).unwrap();
        let shards = m.held_shards(1);
        assert_eq!(shards.len(), 1);
        assert!(shards.contains(crate::shard::shard_of(0, 42)));
        // A table lock covers every shard of the table's rows.
        m.lock_table(1, 3, LockMode::Shared).unwrap();
        assert_eq!(m.held_shards(1).len(), crate::shard::SHARD_COUNT);
        m.release_all(1);
        assert!(m.held_shards(1).is_empty());
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(2, 0, 10, LockMode::Shared).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Shared));
        assert_eq!(m.held_record_mode(2, 0, 10), Some(LockMode::Shared));

        // An exclusive request by txn 3 must block; use a short-timeout
        // manager to observe it.
        let short = Arc::new(LockManager::new(Duration::from_millis(30)));
        short.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        let err = short
            .lock_record(2, 0, 10, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, DbError::LockWaitTimeout { txn: 2 }));
    }

    #[test]
    fn reacquisition_is_idempotent() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_succeeds_when_sole_holder() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        assert_eq!(m.held_record_mode(1, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_unblocks_waiters() {
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(2, 0, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
        assert_eq!(m.held_record_mode(2, 0, 10), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_deadlock_is_detected() {
        // The paper's §3.3.1 MySQL RMW scenario: both transactions hold S,
        // both request X. The second upgrader closes the cycle and aborts.
        let m = mgr();
        m.lock_record(1, 0, 10, LockMode::Shared).unwrap();
        m.lock_record(2, 0, 10, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(1, 0, 10, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        let err = m.lock_record(2, 0, 10, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { txn: 2 }));
        // Victim releases; the first upgrader proceeds.
        m.release_all(2);
        h.join().unwrap().unwrap();
        assert_eq!(m.stats().deadlocks, 1);
    }

    #[test]
    fn two_resource_deadlock_is_detected() {
        let m = mgr();
        m.lock_record(1, 0, 1, LockMode::Exclusive).unwrap();
        m.lock_record(2, 0, 2, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let r = m2.lock_record(1, 0, 2, LockMode::Exclusive);
            if r.is_ok() {
                m2.release_all(1);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(50));
        let err = m.lock_record(2, 0, 1, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, DbError::Deadlock { .. }));
        m.release_all(2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn gap_locks_are_compatible_but_block_inserts() {
        let m = mgr();
        // Txn 1 and 2 both gap-lock (9, 12): no conflict.
        let gap = ValueInterval::point(Value::Int(10))
            .widen_to_gap(Some(Value::Int(9)), Some(Value::Int(12)));
        m.lock_gap(1, 0, 1, gap.clone());
        m.lock_gap(2, 0, 1, gap);
        // Txn 1 inserting key 10 is fine (it holds the gap; txn 2's gap
        // covers it though!): InnoDB would block here too — the insert
        // waits on txn 2's gap.
        assert_eq!(m.gap_holders(1, 0, 1, &Value::Int(11)), vec![2]);
        // Txn 3 inserting 11 blocks on both.
        let mut holders = m.gap_holders(3, 0, 1, &Value::Int(11));
        holders.sort_unstable();
        assert_eq!(holders, vec![1, 2]);
        // Outside the gap: free.
        assert!(m.gap_holders(3, 0, 1, &Value::Int(12)).is_empty());
        // After release, inserts proceed.
        m.release_all(1);
        m.release_all(2);
        m.check_insert(3, 0, 1, &Value::Int(11)).unwrap();
    }

    #[test]
    fn insert_intention_waits_for_gap_release() {
        let m = mgr();
        let gap = ValueInterval::all();
        m.lock_gap(1, 0, 1, gap);
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.check_insert(2, 0, 1, &Value::Int(5)));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn advisory_locks_are_reentrant_and_exclusive() {
        let m = mgr();
        m.lock_advisory(1, 42).unwrap();
        m.lock_advisory(1, 42).unwrap(); // reentrant
        assert!(!m.try_lock_advisory(2, 42));
        assert!(m.unlock_advisory(1, 42));
        // Still held once.
        assert!(!m.try_lock_advisory(2, 42));
        assert!(m.unlock_advisory(1, 42));
        assert!(m.try_lock_advisory(2, 42));
        assert!(!m.unlock_advisory(1, 42));
    }

    #[test]
    fn table_lock_excludes_other_table_locks() {
        let short = LockManager::new(Duration::from_millis(30));
        short.lock_table(1, 0, LockMode::Exclusive).unwrap();
        let err = short.lock_table(2, 0, LockMode::Shared).unwrap_err();
        assert!(matches!(err, DbError::LockWaitTimeout { .. }));
        short.release_all(1);
        short.lock_table(2, 0, LockMode::Shared).unwrap();
        short.lock_table(3, 0, LockMode::Shared).unwrap();
    }

    #[test]
    fn release_all_clears_wait_edges() {
        let m = mgr();
        m.lock_record(1, 0, 1, LockMode::Exclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || m2.lock_record(2, 0, 1, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        m.release_all(1);
        h.join().unwrap().unwrap();
        m.release_all(2);
        assert_eq!(m.held_record_mode(2, 0, 1), None);
    }

    #[test]
    fn stress_many_threads_single_record() {
        let m = mgr();
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..16u64 {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..50 {
                        m.lock_record(t + 1, 0, 7, LockMode::Exclusive).unwrap();
                        // Critical section: non-atomic RMW protected by lock.
                        let v = counter.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        counter.store(v + 1, Ordering::Relaxed);
                        m.release_all(t + 1);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16 * 50);
    }
}
