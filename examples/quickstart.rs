//! Quickstart: the three Figure 1 ad hoc transactions, end to end.
//!
//! Builds an in-memory PostgreSQL-like database plus a Redis-like KV store,
//! then runs the paper's three opening examples concurrently:
//!
//! * Figure 1a — Broadleaf keeps cart totals consistent with a map lock;
//! * Figure 1b — Mastodon bounds invitation redemptions with a SETNX lock;
//! * Figure 1c — Mastodon tallies poll votes with an optimistic retry loop.
//!
//! Run with `cargo run --example quickstart`.

use adhoc_transactions::apps::{broadleaf, mastodon, Mode};
use adhoc_transactions::core::locks::{KvSetNxLock, MemLock};
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{LatencyModel, RealClock};
use adhoc_transactions::storage::{Database, EngineProfile};
use std::sync::Arc;

fn main() {
    // ---- Figure 1a: consistent cart totals under an app-side map lock ----
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = broadleaf::setup(&db).expect("schema");
    let cart_lock = Arc::new(MemLock::new());
    let shop = Arc::new(broadleaf::Broadleaf::new(orm, cart_lock, Mode::AdHoc));
    shop.seed_cart(1).expect("seed");

    std::thread::scope(|s| {
        for customer in 0..4 {
            let shop = Arc::clone(&shop);
            s.spawn(move || {
                for i in 0..5 {
                    shop.add_to_cart(1, 100 + customer * 10 + i, 1)
                        .expect("add");
                }
            });
        }
    });
    let consistent = shop.cart_total_consistent(1).expect("check");
    println!("Figure 1a  cart total consistent after 20 concurrent adds: {consistent}");
    assert!(consistent);

    // ---- Figures 1b & 1c: invites and polls on Mastodon ----
    let db = Database::in_memory(EngineProfile::PostgresLike);
    let orm = mastodon::setup(&db).expect("schema");
    let kv = Client::new(Store::new(), RealClock::shared(), LatencyModel::zero());
    let invite_lock = Arc::new(KvSetNxLock::new(kv.clone()));
    let social = Arc::new(mastodon::Mastodon::new(orm, kv, invite_lock, Mode::AdHoc));
    social.seed_invite(1, 3).expect("seed invite");
    social.seed_poll(1).expect("seed poll");

    let redemptions: usize = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let social = Arc::clone(&social);
                s.spawn(move || social.redeem_invite(1).expect("redeem") as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("join"))
            .sum()
    });
    println!("Figure 1b  8 users raced a 3-use invitation; {redemptions} succeeded");
    assert_eq!(redemptions, 3);

    std::thread::scope(|s| {
        for voter in 0..6 {
            let social = Arc::clone(&social);
            s.spawn(move || {
                let choice = if voter % 2 == 0 {
                    mastodon::Choice::A
                } else {
                    mastodon::Choice::B
                };
                for _ in 0..10 {
                    social.vote(1, choice).expect("vote");
                }
            });
        }
    });
    let (a, b) = social.poll_totals(1).expect("totals");
    println!("Figure 1c  60 concurrent optimistic votes tallied exactly: A={a} B={b}");
    assert_eq!((a, b), (30, 30));

    println!("\nAll three Figure 1 scenarios behaved correctly under contention.");
}
