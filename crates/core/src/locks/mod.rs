//! The seven ad hoc lock implementations (§3.2.1, Figure 2) behind one
//! trait.
//!
//! Every implementation is correct by default. The specific defects the
//! paper found in the wild (§4.1.1) are reproduced behind explicit
//! fault-injection switches on each type, so tests and the bug gallery can
//! demonstrate both the failure and the fix:
//!
//! | Switch | Paper bug |
//! |---|---|
//! | [`sync::SyncLock::synchronize_on_thread_local`] | SCM Suite synchronizes on thread-local ORM objects — no mutual exclusion |
//! | [`mem::MemLruLock`] capacity | Broadleaf's LRU-evicting lock table drops held locks |
//! | [`kv::KvSetNxLock::with_ttl`] + not checking [`Guard::is_valid`] | Mastodon's lease expires mid-critical-section, unchecked |
//! | [`db::SfuLock::outside_transaction`] | Spree's `SELECT FOR UPDATE` without an enclosing transaction releases immediately |
//! | [`db::DbTableLock::ignore_boot_uuid`] | Without the boot-UUID check, pre-crash locks deadlock the reboot |

//! # Example
//!
//! ```
//! use adhoc_core::locks::{AdHocLock, MemLock};
//!
//! let lock = MemLock::new();
//! let guard = lock.lock("cart:1")?;
//! // ... the Figure 1a critical section ...
//! assert!(guard.is_valid());
//! guard.unlock()?;
//! # Ok::<(), adhoc_core::locks::LockError>(())
//! ```

pub mod db;
pub mod kv;
pub mod mem;
pub mod sync;
pub mod watchdog;

use adhoc_sim::{BackoffPolicy, RetryPolicy};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use db::{DbTableLock, SfuLock};
pub use kv::{KvMultiLock, KvSetNxLock};
pub use mem::{MemLock, MemLruLock};
pub use sync::SyncLock;
pub use watchdog::WatchdogLock;

/// Errors from lock operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Could not acquire within the configured timeout.
    Timeout {
        /// The contended lock key.
        key: String,
    },
    /// The backing system failed (database/KV error text).
    Backend(String),
    /// Unlock of a lock this guard no longer holds.
    NotHeld {
        /// The lock key that was no longer held.
        key: String,
    },
    /// Granting the lock would complete a wait cycle; the requester is the
    /// victim and should retry ([`WatchdogLock`]).
    Deadlock {
        /// The lock key whose acquisition closed the cycle.
        key: String,
    },
    /// An [`AcquireConfig`] that could never acquire under contention
    /// (e.g. a retry interval at or beyond the timeout).
    InvalidConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout { key } => write!(f, "timed out acquiring lock {key:?}"),
            LockError::Backend(msg) => write!(f, "lock backend error: {msg}"),
            LockError::NotHeld { key } => write!(f, "lock {key:?} is not held by this guard"),
            LockError::Deadlock { key } => {
                write!(
                    f,
                    "acquiring lock {key:?} would deadlock; requester aborted"
                )
            }
            LockError::InvalidConfig { reason } => {
                write!(f, "invalid acquire configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Acquisition policy shared by the blocking implementations that poll
/// (KV and table-based locks have no wait queue to park on).
#[derive(Debug, Clone, Copy)]
pub struct AcquireConfig {
    /// Delay between acquisition attempts.
    pub retry_interval: Duration,
    /// Give up (with [`LockError::Timeout`]) after this long.
    pub timeout: Duration,
}

impl AcquireConfig {
    /// A validated configuration. Rejects a retry interval at or beyond
    /// the timeout: such a config times out on its *first* contended
    /// retry, a silent misconfiguration several studied applications
    /// shipped variants of.
    pub fn new(retry_interval: Duration, timeout: Duration) -> Result<Self, LockError> {
        if timeout.is_zero() {
            return Err(LockError::InvalidConfig {
                reason: "timeout must be non-zero".into(),
            });
        }
        if retry_interval >= timeout {
            return Err(LockError::InvalidConfig {
                reason: format!(
                    "retry interval ({retry_interval:?}) must be shorter than the \
                     timeout ({timeout:?})"
                ),
            });
        }
        Ok(Self {
            retry_interval,
            timeout,
        })
    }

    /// The equivalent [`RetryPolicy`]: fixed-interval polling until the
    /// timeout, with ±25% deterministic jitter so contending acquirers
    /// don't re-collide in lockstep.
    pub fn policy(&self) -> RetryPolicy {
        RetryPolicy::fixed(self.retry_interval, self.timeout).with_backoff(
            BackoffPolicy::fixed(self.retry_interval)
                .with_jitter(0.25)
                .with_seed(adhoc_sim::rng::DEFAULT_SEED),
        )
    }
}

impl Default for AcquireConfig {
    fn default() -> Self {
        Self {
            retry_interval: Duration::from_millis(5),
            timeout: Duration::from_secs(10),
        }
    }
}

/// What a held lock can do. Implementations are driven through
/// [`Guard`], which owns the boxed state.
pub trait LockGuard: Send {
    /// Release the lock. Idempotent: a second call is a no-op `Ok`.
    fn unlock(&mut self) -> Result<(), LockError>;

    /// Is the lock still held by this guard? Lease-based locks (TTL'd
    /// Redis entries, LRU-evictable tables) can answer `false` — the check
    /// Mastodon forgot to make (§4.1.1).
    fn is_valid(&self) -> bool;

    /// Stop releasing on drop — simulates the holder crashing while inside
    /// the critical section (§3.4.2 crash handling).
    fn leak(&mut self);

    /// The monotonic fencing token granted with this hold, when the
    /// implementation supports fencing (see
    /// [`KvSetNxLock::with_fencing`](kv::KvSetNxLock::with_fencing)).
    /// Guarded writes carry it so the storage side can reject a zombie
    /// holder whose lease was silently re-granted — the robust fix for the
    /// TTL-steal bug, stronger than the advisory `is_valid` check.
    fn fencing_token(&self) -> Option<u64> {
        None
    }
}

/// An owned, droppable lock guard. Dropping releases the lock unless
/// [`Guard::leak`] was called.
pub struct Guard(Box<dyn LockGuard>);

impl Guard {
    /// Wrap an implementation-specific guard.
    pub fn new(inner: Box<dyn LockGuard>) -> Self {
        Self(inner)
    }

    /// Explicit release (the `unlock()` of the paper's listings).
    pub fn unlock(mut self) -> Result<(), LockError> {
        self.0.unlock()
    }

    /// Whether the lease is still held (correct lease users check this
    /// before committing their critical section's writes).
    pub fn is_valid(&self) -> bool {
        self.0.is_valid()
    }

    /// Simulate the holder crashing: the lock is never released by us.
    pub fn leak(mut self) {
        self.0.leak();
    }

    /// The fencing token granted with this hold, when the implementation
    /// supports fencing (`None` otherwise).
    pub fn fencing_token(&self) -> Option<u64> {
        self.0.fencing_token()
    }
}

/// Unlock errors swallowed by [`Guard`]'s `Drop` impl, process-wide.
static DROPPED_UNLOCK_ERRORS: AtomicU64 = AtomicU64::new(0);

/// How many unlock errors `Drop` has silently discarded so far.
///
/// A drop cannot propagate an error, but losing one silently is exactly
/// the failure-handling blind spot §3.4 documents (an expired lease's
/// owner-checked release failing with [`LockError::NotHeld`], a lock
/// table unreachable at release). Tests and the harness watch this
/// counter to prove the path is at least observed.
pub fn dropped_unlock_errors() -> u64 {
    DROPPED_UNLOCK_ERRORS.load(Ordering::Relaxed)
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.0.unlock().is_err() {
            DROPPED_UNLOCK_ERRORS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("valid", &self.is_valid())
            .finish()
    }
}

/// An ad hoc lock implementation: string-keyed, exclusive.
pub trait AdHocLock: Send + Sync {
    /// Block until the lock on `key` is acquired (or the policy times out).
    fn lock(&self, key: &str) -> Result<Guard, LockError>;

    /// Figure 2 label of this implementation.
    fn label(&self) -> &'static str;
}

/// Exercise any implementation with `threads × iterations` increments of an
/// unsynchronized counter. Returns the final count; equal to
/// `threads * iterations` iff the lock provided mutual exclusion. Shared by
/// the per-implementation test suites and the bug gallery.
pub fn mutual_exclusion_trial(
    lock: &dyn AdHocLock,
    key: &str,
    threads: usize,
    iterations: usize,
) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counter = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..iterations {
                    let guard = lock.lock(key).expect("acquire");
                    // Deliberately racy read-modify-write with a widened
                    // window: only mutual exclusion makes it add up.
                    let v = counter.load(Ordering::Relaxed);
                    std::thread::yield_now();
                    counter.store(v + 1, Ordering::Relaxed);
                    guard.unlock().expect("release");
                }
            });
        }
    });
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_config_defaults_are_sane() {
        let c = AcquireConfig::default();
        assert!(c.retry_interval < c.timeout);
    }

    #[test]
    fn lock_error_display() {
        assert!(LockError::Timeout { key: "k".into() }
            .to_string()
            .contains("k"));
        assert!(LockError::Backend("boom".into())
            .to_string()
            .contains("boom"));
        assert!(LockError::NotHeld { key: "k".into() }
            .to_string()
            .contains("not held"));
        assert!(LockError::Deadlock { key: "k".into() }
            .to_string()
            .contains("deadlock"));
    }
}
