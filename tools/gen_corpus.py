#!/usr/bin/env python3
"""Construct the 91-case corpus satisfying every aggregate the paper reports,
verify all constraints, and emit crates/study/src/corpus_data.rs."""

from dataclasses import dataclass, field

@dataclass
class Case:
    id: str
    app: str
    api: str
    cc: str                      # Pessimistic | Optimistic
    lock_impl: str = None        # LockImpl variant
    validation_impl: str = None  # OrmAssisted | HandCrafted
    critical: bool = False
    partial: bool = False        # partial coordination (F2)
    multi_request: bool = False
    non_db: bool = False
    single_lock: bool = True     # pessimistic only; False = ordered multiple
    rmw: bool = False
    aa: bool = False
    cbc: bool = False
    pbc: bool = False
    failure: str = None          # optimistic only: ErrorReturn/DbtRollback/ManualRollback/Repair
    issues: tuple = ()
    severe: str = None
    report: str = None           # report id
    acked: bool = False

C = []

def add(**kw):
    C.append(Case(**kw))

LP="IncorrectLockPrimitive"; NA="NonAtomicValidateCommit"; OC="OmittedCriticalOperations"
FT="ForgottenTransaction"; IR="IncompleteRepair"; CR="NoRollbackAfterCrash"

# ---------------- Discourse: 13 (10 pess KvMulti, 3 opt HandCrafted), all buggy
# d1..d10 pess LP; d1 also FT. 8 critical of 13. 6 severe.
disc_pess = [
    # (api-id, api text, critical, rmw, aa, cbc, pbc, partial, multi_req, non_db, extra issues, severe, report, acked)
    ("create-post",        "Allocate next post number and insert post",          True,  True, False, True,  False, False, False, False, (FT,), "Page rendering failure from duplicate post numbers", "discourse-create-post-race", False),
    ("toggle-answer",      "Mark a post as the topic's accepted answer",         True,  False,False, True,  False, False, False, False, (),    None, "discourse-toggle-answer-race", False),
    ("like-post",          "Increment post and topic like counters",             True,  True, True,  False, False, False, False, False, (),    None, "discourse-like-count-race", False),
    ("edit-post",          "Two-request post editing with version check",        True,  True, False, True,  False, False, True,  False, (),    "Overwritten post contents", "discourse-edit-overwrite", True),
    ("rebake-post",        "Re-render cooked post HTML after edits",             False, True, False, False, False, True,  False, False, (),    "Overwritten post contents after rebake", "discourse-edit-overwrite", True),
    ("image-upload",       "Deduplicate uploaded images by hash",                True,  True, False, False, True,  False, True,  True,  (),    None, "discourse-upload-dedupe", False),
    ("notification-fanout","Fan out notifications to topic watchers",            True,  True, True,  False, False, True,  False, True,  (),    "Excessive notifications", "discourse-notification-dup", False),
    ("badge-grant",        "Grant a badge at most once per user",                False, True, False, False, True,  False, False, False, (),    None, "discourse-badge-dup", False),
    ("topic-view-track",   "Batch topic view counters",                          False, True, True,  False, False, True,  False, False, (),    None, "discourse-view-track", False),
    ("user-avatar-refresh","Refresh or rebuild user avatar records",             False, True, True,  False, False, False, False, False, (),    "Missing avatars until fsck repair", None, False),
]
for (a,t,cr,rmw,aa,cbc,pbc,pa,mr,nd,extra,sv,rep,ack) in disc_pess:
    add(id=f"discourse/{a}", app="Discourse", api=t, cc="Pessimistic", lock_impl="KvMulti",
        critical=cr, rmw=rmw, aa=aa, cbc=cbc, pbc=pbc, partial=pa, multi_request=mr, non_db=nd,
        issues=(LP,)+extra, severe=sv, report=rep, acked=ack)
# d11 shrink-image: opt HandCrafted, Repair, NA+IR+FT (triple)
add(id="discourse/shrink-image", app="Discourse", api="Rewrite posts after image downsizing",
    cc="Optimistic", validation_impl="HandCrafted", failure="Repair",
    critical=False, rmw=True, partial=True,
    issues=(NA, IR, FT), severe="Broken image links in posts",
    report="discourse-downsize-race", acked=True)
# d12 reviewables (MiniSql): opt NA
add(id="discourse/reviewable-claim", app="Discourse", api="Claim reviewable items for moderators",
    cc="Optimistic", validation_impl="HandCrafted", failure="ErrorReturn",
    critical=True, rmw=True, issues=(NA,), severe="Conflicting moderator actions both applied",
    report="discourse-minisql-atomicity", acked=True)
# d13 draft save
add(id="discourse/draft-save", app="Discourse", api="Save composer drafts with sequence checks",
    cc="Optimistic", validation_impl="HandCrafted", failure="ErrorReturn",
    critical=True, rmw=True, multi_request=True, issues=(NA,), severe=None,
    report="discourse-minisql-atomicity", acked=True)

# ---------------- Mastodon: 16 (11 pess KvSetNx all LP buggy; 5 opt OrmAssisted clean)
mast_pess = [
    ("timeline-insert",  "Insert post row and add to Redis home timelines",  True,  False,True, False,False, False,False,True,  "Deleted posts shown in timelines", "mastodon-ttl-lease", True, (LP, LP)),
    ("timeline-remove",  "Remove post row and purge Redis timelines",        True,  False,True, False,False, False,False,True,  "Deleted posts shown in timelines", "mastodon-ttl-lease", True, (LP, LP)),
    ("invite-redeem",    "Redeem an invitation within its usage limit",      True,  True, False,False,False, False,False,False, "Invitations redeemed past their limit", "mastodon-ttl-lease", True, (LP,)),
    ("status-delete",    "Delete a status and its side effects",             True,  True, True, False,False, True, False,True,  "Corrupted account counters", "mastodon-ttl-lease", True, (LP,)),
    ("follow-request",   "Accept follow requests exactly once",              True,  True, False,False,False, False,False,False, None, "mastodon-ttl-lease", True, (LP,)),
    ("media-attach",     "Attach media to a status being composed",          False, True, True, False,False, False,True, True,  None, "mastodon-ttl-lease", True, (LP,)),
    ("conversation-read","Mark conversations read and update counters",     False, True, True, False,False, True, False,False, None, "mastodon-ttl-lease", True, (LP,)),
    ("notification-dedupe","Deduplicate grouped notifications",              False, True, False,False,True,  False,False,False, None, "mastodon-ttl-lease", True, (LP,)),
    ("account-migrate",  "Move followers during account migration",          True,  True, True, False,False, True, True, True,  "Corrupted account info", "mastodon-ttl-lease", True, (LP,)),
    ("list-membership",  "Maintain list membership sets",                    False, True, True, False,False, False,False,True,  None, "mastodon-ttl-lease", True, (LP,)),
    ("relationship-sync","Synchronize cached relationship flags",            True,  True, False,False,False, True, False,True,  None, "mastodon-ttl-lease", True, (LP,)),
]
for (a,t,cr,rmw,aa,cbc,pbc,pa,mr,nd,sv,rep,ack,iss) in mast_pess:
    add(id=f"mastodon/{a}", app="Mastodon", api=t, cc="Pessimistic", lock_impl="KvSetNx",
        critical=cr, rmw=rmw, aa=aa, cbc=cbc, pbc=pbc, partial=pa, multi_request=mr, non_db=nd,
        issues=iss, severe=sv, report=rep, acked=ack)
mast_opt = [
    ("poll-vote",    "Tally poll votes with a version column",        True,  True),
    ("status-edit",  "Apply status edits with lock_version",          True,  True),
    ("pin-status",   "Pin statuses with bounded pin counts",          False, True),
    ("filter-update","Update keyword filters with lock_version",      False, True),
    ("bookmark-sync","Reconcile bookmark collections",                False, True),
]
for (a,t,cr,rmw) in mast_opt:
    add(id=f"mastodon/{a}", app="Mastodon", api=t, cc="Optimistic", validation_impl="OrmAssisted",
        failure="ErrorReturn", critical=cr, rmw=rmw)

# ---------------- Spree: 10 (4 pess Sfu, 6 opt: 2 OrmAssisted + 4 HandCrafted), all buggy
# p1: LP+OC+CR triple; p2: LP+OC+CR triple; p3,p4: LP singles
add(id="spree/order-stock-decrement", app="Spree", api="Check and decrement SKU stock at checkout",
    cc="Pessimistic", lock_impl="Sfu", critical=True, rmw=True, aa=True, partial=True,
    issues=(LP, OC, CR), severe="Inconsistent stock levels", report="spree-order-lock", acked=True)
add(id="spree/order-payment-state", app="Spree", api="Advance order payment state machine",
    cc="Pessimistic", lock_impl="Sfu", critical=True, rmw=True, aa=True, partial=True,
    issues=(LP, OC, CR), severe="Inconsistent order status", report="spree-order-lock", acked=True)
add(id="spree/order-shipment-sync", app="Spree", api="Synchronize shipments with order contents",
    cc="Pessimistic", lock_impl="Sfu", critical=True, rmw=True, aa=True, single_lock=False,
    issues=(LP,), severe="Overcharging on duplicated shipments", report="spree-order-lock", acked=True)
add(id="spree/order-promotion-apply", app="Spree", api="Apply promotions within usage limits",
    cc="Pessimistic", lock_impl="Sfu", critical=True, rmw=True, aa=True, single_lock=False,
    issues=(LP,), severe="Selling discontinued products", report="spree-order-lock", acked=True)
# o1,o2 NA (HandCrafted); o3 CR; o4,o5 OC; o6 FT
add(id="spree/payment-capture-check", app="Spree", api="Validate payment state before capture",
    cc="Optimistic", validation_impl="HandCrafted", failure="ErrorReturn", critical=True, rmw=True,
    issues=(NA,), severe="Overcharging customers", report="spree-payment-capture", acked=False)
add(id="spree/refund-reconcile", app="Spree", api="Reconcile refunds against captured amounts",
    cc="Optimistic", validation_impl="HandCrafted", failure="ErrorReturn", critical=True, rmw=True,
    issues=(NA,), severe="Overcharging customers on refunds", report="spree-refund-check", acked=False)
add(id="spree/payment-process", app="Spree", api="Process pending payments at checkout",
    cc="Optimistic", validation_impl="HandCrafted", failure="DbtRollback", critical=True, rmw=True,
    multi_request=True,
    issues=(CR,), severe="Check-out permanently blocked after crash", report="spree-crash-payments", acked=True)
add(id="spree/payment-void", app="Spree", api="Void authorized payments",
    cc="Optimistic", validation_impl="HandCrafted", failure="ErrorReturn", critical=True, rmw=True,
    issues=(OC,), severe="Inconsistent order status after void", report="spree-order-lock", acked=True)
add(id="spree/coupon-apply", app="Spree", api="Apply coupon codes within usage limits",
    cc="Optimistic", validation_impl="OrmAssisted", failure="ErrorReturn", critical=True, rmw=True,
    issues=(OC,), severe="Coupon overuse", report="spree-order-lock", acked=True)
add(id="spree/payment-json-handler", app="Spree", api="JSON API payment submission",
    cc="Optimistic", validation_impl="OrmAssisted", failure="ErrorReturn", critical=True, rmw=True, pbc=True,
    issues=(FT,), severe="Duplicate payments from JSON handlers", report="spree-json-handlers", acked=True)

# ---------------- Redmine: 9 (6 pess Sfu, 3 opt OrmAssisted), 1 buggy (OC), 6 critical
redm = [
    ("issue-assign",   "Assign issues and update progress",       True,  True, False, True, ()),
    ("issue-status",   "Advance issue status workflows",          True,  True, False, True, (OC,)),
    ("attachment-add", "Attach files to issues",                  True,  True, True,  False,()),
    ("category-reorder","Reorder issue categories",               False, True, False, True, ()),
    ("version-close",  "Close project versions with open checks", True,  True, True,  False,()),
    ("news-comment",   "Add comments with counters",              False, True, False, True, ()),
]
for (a,t,cr,rmw,aa,single,iss) in redm:
    add(id=f"redmine/{a}", app="Redmine", api=t, cc="Pessimistic", lock_impl="Sfu",
        critical=cr, rmw=rmw, aa=aa, single_lock=single, issues=iss,
        report="redmine-status-race" if iss else None, acked=False)
# fix: the buggy one must be reported? our budget says Redmine's case is UNREPORTED.
for c in C:
    if c.id == "redmine/issue-status":
        c.report = None
redm_opt = [
    ("wiki-edit",     "Edit wiki pages with lock_version",        True),
    ("issue-journal", "Append issue journals with lock_version",  True),
    ("settings-save", "Save project settings with lock_version",  False),
]
for (a,t,cr) in redm_opt:
    add(id=f"redmine/{a}", app="Redmine", api=t, cc="Optimistic", validation_impl="OrmAssisted",
        failure="ErrorReturn", critical=cr, rmw=True)

# ---------------- Broadleaf: 11 (5 pess mixed impls, 6 opt HandCrafted), 7 buggy
# pess: b1 (MemLru) LP+OC+FT triple buggy; 4 pess clean: Mem, Mem, Sync, DbTable
add(id="broadleaf/cart-session-lock", app="Broadleaf", api="Guard cart mutations with the LRU-evicting session lock table",
    cc="Pessimistic", lock_impl="MemLru", critical=True, rmw=True, aa=True, partial=True,
    issues=(LP, OC, FT), severe="Users not paying for concurrently added items",
    report="broadleaf-lru-eviction", acked=False)
add(id="broadleaf/cart-total-update", app="Broadleaf", api="Keep cart totals consistent with items",
    cc="Pessimistic", lock_impl="Mem", critical=True, rmw=True, aa=True)
add(id="broadleaf/offer-audit", app="Broadleaf", api="Audit offer usage under a map lock",
    cc="Pessimistic", lock_impl="Mem", critical=False, rmw=True, aa=False)
add(id="broadleaf/checkout-workflow", app="Broadleaf", api="Serialize checkout workflow steps",
    cc="Pessimistic", lock_impl="Sync", critical=True, rmw=True, aa=True, single_lock=False, partial=True)
add(id="broadleaf/inventory-db-lock", app="Broadleaf", api="Cluster-wide inventory operations via the lock table",
    cc="Pessimistic", lock_impl="DbTable", critical=False, rmw=True, multi_request=True)
# opt b2..b7 HandCrafted: all NA; b2: +OC+FT triple; b3,b4,b5: +OC; b6,b7 singles
blopt = [
    ("sku-availability", "Validate SKU availability before order submit", True,  (NA,OC,FT), "Overselling out-of-stock items", "broadleaf-sku-checkout", False, "ErrorReturn"),
    ("promotion-uses",   "Bound promotion usage counts",                  True,  (NA,OC), "Promotion overuse", "broadleaf-promotion-overuse", False, "ErrorReturn"),
    ("order-total-verify","Verify order totals before payment",           True,  (NA,OC), "Inconsistent order status", "broadleaf-order-total", False, "Repair"),
    ("fulfillment-price", "Recompute fulfillment pricing",                False, (NA,OC), "Inconsistent stock levels", "broadleaf-fulfillment-price", False, "Repair"),
    ("payment-confirm",  "Confirm payments against order state",          True,  (NA,), "Overcharging on double confirmation", "broadleaf-payment-confirm", False, "ManualRollback"),
    ("price-list-sync",  "Synchronize price list snapshots",              False, (NA,), None, None, False, "ErrorReturn"),
]
for (a,t,cr,iss,sv,rep,ack,fh) in blopt:
    add(id=f"broadleaf/{a}", app="Broadleaf", api=t, cc="Optimistic", validation_impl="HandCrafted",
        failure=fh, critical=cr, rmw=True, issues=iss, severe=sv, report=rep, acked=ack)

# ---------------- SCM Suite: 11 (8 pess Sync all LP buggy; 3 opt HandCrafted clean)
scm_pess = [
    ("account-balance",   "Adjust member account balances",        True, True, False, True),
    ("account-credit",    "Grant credit lines within limits",      True, True, False, True),
    ("merchandise-receive","Receive merchandise into warehouses",  True, True, True,  True),
    ("merchandise-ship",  "Ship merchandise and decrement stock",  True, True, True,  True),
    ("warehouse-transfer","Transfer stock between warehouses",     True, True, False, False),
    ("settlement-run",    "Run periodic supplier settlements",     True, True, True,  False),
    ("supplier-update",   "Update supplier master records",        True, True, False, True),
    ("member-points",     "Accrue member loyalty points",          True, True, False, True),
]
for (a,t,cr,rmw,aa,single) in scm_pess:
    add(id=f"scm-suite/{a}", app="ScmSuite", api=t, cc="Pessimistic", lock_impl="Sync",
        critical=cr, rmw=rmw, aa=aa, single_lock=single, issues=(LP,),
        severe=None, report="scm-synchronized-thread-local", acked=True)
scm_opt = [
    ("stock-version-track", "Track stock levels with manual versions",  True, "Repair"),
    ("price-version-track", "Track price changes with manual versions", True, "ManualRollback"),
    ("order-version-track", "Track order edits with manual versions",   True, "ErrorReturn"),
]
for (a,t,cr,fh) in scm_opt:
    add(id=f"scm-suite/{a}", app="ScmSuite", api=t, cc="Optimistic", validation_impl="HandCrafted",
        failure=fh, critical=cr, rmw=True)

# ---------------- JumpServer: 5 pess KvSetNx, clean, all critical
js = [
    ("grant-privilege", "Grant asset privileges idempotently", True, False, True),
    ("asset-update",    "Update asset state with connection accounting", True, False, True),
    ("session-limit",   "Enforce concurrent session limits", True, False, True),
    ("node-move",       "Move assets between organization nodes", True, True, False),
    ("credential-rotate","Rotate credentials exactly once", True, False, True),
]
for (a,t,rmw,aa,single) in js:
    add(id=f"jumpserver/{a}", app="JumpServer", api=t, cc="Pessimistic", lock_impl="KvSetNx",
        critical=True, rmw=True, aa=aa, single_lock=single)

# ---------------- Saleor: 16 pess KvSetNx (re-entrant), 3 buggy, 15 critical
sal = [
    # (api, text, critical, buggy issues, severe, report, acked, rmw, aa, pbc, partial, multi, nondb, single)
    ("checkout-complete", "Complete checkout exactly once",            True, (LP,), "Overcharging customers", "saleor-checkout-double", False, True, True, False, False, False, False, True),
    ("payment-capture",   "Capture authorized payments",               True, (LP,), "Overcharging customers", "saleor-capture-double", False, True, False, False, False, False, False, True),
    ("payment-refund",    "Issue refunds bounded by captures",         True, (OC,), "Overcharging by refunding stale amounts", None, False, True, False, False, True, False, False, True),
    ("stock-allocate",    "Allocate stock to order lines",             True, (), None, None, False, True, True, False, False, False, False, False),
    ("stock-deallocate",  "Release allocations on cancellation",       True, (), None, None, False, True, True, False, False, False, False, False),
    ("stock-adjust",      "Apply manual stock adjustments",            True, (), None, None, False, True, False, False, False, False, False, True),
    ("order-fulfill",     "Create fulfillments from allocations",      True, (), None, None, False, True, True, False, False, False, False, False),
    ("order-cancel",      "Cancel orders and release resources",       True, (), None, None, False, True, True, False, False, False, False, True),
    ("gift-card-redeem",  "Redeem gift cards within balances",         True, (), None, None, False, True, False, False, False, False, False, True),
    ("voucher-apply",     "Apply vouchers within usage limits",        True, (), None, None, False, True, False, True, False, False, False, True),
    ("checkout-shipping", "Set shipping method on active checkout",    True, (), None, None, False, True, True, False, False, True, False, True),
    ("checkout-billing",  "Set billing address on active checkout",    True, (), None, None, False, True, True, False, False, True, False, True),
    ("payment-void",      "Void authorizations exactly once",          True, (), None, None, False, True, False, False, False, False, False, True),
    ("warehouse-assign",  "Assign warehouses to shipping zones",       False,(), None, None, False, True, False, False, False, False, False, True),
    ("digital-download",  "Issue digital download grants",             True, (), None, None, False, True, False, True, False, False, True, True),
    ("checkout-lines",    "Mutate checkout lines under the checkout lock", True, (), None, None, False, True, True, False, True, False, False, True),
]
for (a,t,cr,iss,sv,rep,ack,rmw,aa,pbc,pa,mr,nd,single) in sal:
    add(id=f"saleor/{a}", app="Saleor", api=t, cc="Pessimistic", lock_impl="KvSetNx",
        critical=cr, rmw=rmw, aa=aa, pbc=pbc, partial=pa, multi_request=mr, non_db=nd,
        single_lock=single, issues=iss, severe=sv, report=rep, acked=ack)

# ======= now tune the free-floating aggregate tags to hit exact targets =======
def count(pred): return sum(1 for c in C if pred(c))

def ids(pred): return [c.id for c in C if pred(c)]

# targets
targets = {}

def settle(tag, target, getter, setter, prefer_on=None, prefer_off=None):
    cur = count(getter)
    if cur == target: return
    raise SystemExit(f"{tag}: have {cur}, want {target}: {ids(getter)}")

# Report current values for manual tuning:
def report():
    from collections import defaultdict
    apps = ["Discourse","Mastodon","Spree","Redmine","Broadleaf","ScmSuite","JumpServer","Saleor"]
    print("total", len(C))
    for a in apps:
        cs=[c for c in C if c.app==a]
        print(f"{a:11} total={len(cs):2} buggy={sum(1 for c in cs if c.issues):2} "
              f"lock={sum(1 for c in cs if c.cc=='Pessimistic'):2} valid={sum(1 for c in cs if c.cc=='Optimistic'):2} "
              f"critical={sum(1 for c in cs if c.critical):2}")
    print("buggy", count(lambda c:c.issues), "want 53")
    print("critical", count(lambda c:c.critical), "want 71")
    print("pess", count(lambda c:c.cc=="Pessimistic"), "want 65")
    print("partial", count(lambda c:c.partial), "want 22")
    print("multi_request", count(lambda c:c.multi_request), "want 10")
    print("non_db", count(lambda c:c.non_db), "want 8")
    print("single_lock", count(lambda c:c.cc=="Pessimistic" and c.single_lock), "want 52")
    print("multi_lock", count(lambda c:c.cc=="Pessimistic" and not c.single_lock), "want 13")
    print("rmw", count(lambda c:c.rmw), "want 56")
    print("aa", count(lambda c:c.aa), "want 37")
    print("rmw&aa", count(lambda c:c.rmw and c.aa), "want 35")
    print("cbc", count(lambda c:c.cbc), "want 5")
    print("pbc", count(lambda c:c.pbc), "want 10")
    print("cbc&pbc", count(lambda c:c.cbc and c.pbc), "want 1")
    print("coarse", count(lambda c:c.rmw or c.aa), "want 58")
    print("fine", count(lambda c:c.cbc or c.pbc), "want 14")
    print("both f&c", count(lambda c:(c.cbc or c.pbc) and (c.rmw or c.aa)), "want 9")
    print("issues total", sum(len(c.issues) for c in C), "want 69")
    print("multi-issue cases", count(lambda c:len(c.issues)>1), "want 11")
    from collections import Counter
    cat = Counter()
    for c in C:
        for i in set(c.issues): cat[i]+=1
    print("LP cases", cat[LP], "want 36; apps", len({c.app for c in C if LP in c.issues}), "want 6")
    print("NA cases", cat[NA], "want 11; apps", len({c.app for c in C if NA in c.issues}), "want 3")
    print("OC cases", cat[OC], "want 11; apps", len({c.app for c in C if OC in c.issues}), "want 4")
    print("FT cases", cat[FT], "want 5; apps", len({c.app for c in C if FT in c.issues}), "want 3")
    print("IR cases", cat[IR], "want 1")
    print("CR cases", cat[CR], "want 3")
    print("severe", count(lambda c:c.severe), "want 28")
    sev = defaultdict(int)
    for c in C:
        if c.severe: sev[c.app]+=1
    print("severe/app", dict(sev), "want D6 M4 S9 B6 Sa3")
    print("reported cases", count(lambda c:c.report), "want 46")
    reps = {c.report for c in C if c.report}
    print("reports", len(reps), "want 20")
    acked_reps = {c.report for c in C if c.report and c.acked}
    print("acked reports", len(acked_reps), "want 7")
    print("acked cases", count(lambda c:c.acked), "want 33")
    # cross checks
    bad = [c.id for c in C if c.acked and not c.report]
    print("acked-without-report", bad)
    mixed = [r for r in reps if len({c.acked for c in C if c.report==r})>1]
    print("reports with mixed ack", mixed)
    print("failure handling", Counter(c.failure for c in C if c.cc=="Optimistic"), "want ER19 DBT1 MAN2 REP4")
    print("validation impls", Counter(c.validation_impl for c in C if c.cc=="Optimistic"), "want Orm10 Hand16")
    print("lock impls", Counter(c.lock_impl for c in C if c.cc=="Pessimistic"))
    apps_multi_impl = [a for a in apps if len({c.lock_impl for c in C if c.app==a and c.cc=='Pessimistic'} | {c.validation_impl for c in C if c.app==a and c.cc=='Optimistic'})>1]
    print("apps with >1 impl (lock):", [a for a in apps if len({c.lock_impl for c in C if c.app==a and c.cc=='Pessimistic'})>1])



# ======= deterministic adjustments to hit every aggregate exactly =======
by_id = {c.id: c for c in C}

def setf(cid, **kw):
    c = by_id[cid]
    for k, v in kw.items():
        setattr(c, k, v)

# --- granularity: wipe and reassign ---
for c in C:
    c.rmw = c.aa = c.cbc = c.pbc = False

# fine-grained (14): 1 both, 4 CBC-only, 9 PBC-only
setf("discourse/image-upload", cbc=True, pbc=True)
for cid in ["discourse/create-post", "discourse/toggle-answer",
            "discourse/edit-post", "mastodon/conversation-read"]:
    setf(cid, cbc=True)
for cid in ["spree/payment-json-handler", "saleor/voucher-apply",
            "saleor/digital-download", "discourse/badge-grant",
            "mastodon/notification-dedupe", "saleor/gift-card-redeem",
            "broadleaf/offer-audit", "redmine/attachment-add",
            "jumpserver/session-limit"]:
    setf(cid, pbc=True)

FINE_ONLY = {"saleor/digital-download", "broadleaf/offer-audit",
             "redmine/attachment-add", "jumpserver/session-limit",
             "mastodon/notification-dedupe"}
# the other 9 fine cases are also coarse (RMW + AA)
for c in C:
    if (c.cbc or c.pbc) and c.id not in FINE_ONLY:
        c.rmw = True
        c.aa = True

# AA-only (2): commutative timeline set updates (§3.1.3)
setf("mastodon/timeline-insert", aa=True)
setf("mastodon/timeline-remove", aa=True)

# remaining coarse: 26 more RMW+AA, then 21 RMW-only, rest untagged.
AA_ONLY = {"mastodon/timeline-insert", "mastodon/timeline-remove"}
pool = [c for c in C if not (c.cbc or c.pbc) and c.id not in AA_ONLY]
# Prefer association-heavy shopping/content flows for RMW+AA.
aa_pref = [c for c in pool if any(k in c.id for k in
    ("cart", "order", "checkout", "stock", "merchandise", "timeline",
     "shipment", "fulfill", "settlement", "like", "notification-fanout",
     "topic", "account-migrate", "status-delete", "media-attach",
     "version-close", "conversation", "list-membership"))]
rest = [c for c in pool if c not in aa_pref]
take_aa = (aa_pref + rest)[:26]
for c in take_aa:
    c.rmw = True
    c.aa = True
remaining = [c for c in pool if not c.rmw]
for c in remaining[:21]:
    c.rmw = True

# --- F2 flags ---
for c in C:
    c.partial = False
    c.multi_request = False
    c.non_db = False
# partial coordination (22): ORM-generated statements or non-critical ops
# share the scope (§3.1.1).
for cid in ["spree/order-stock-decrement", "spree/order-payment-state",
            "spree/order-shipment-sync", "spree/order-promotion-apply",
            "broadleaf/cart-session-lock", "broadleaf/checkout-workflow",
            "broadleaf/sku-availability", "broadleaf/order-total-verify",
            "discourse/rebake-post", "discourse/notification-fanout",
            "discourse/topic-view-track", "discourse/shrink-image",
            "mastodon/status-delete", "mastodon/conversation-read",
            "mastodon/account-migrate", "mastodon/relationship-sync",
            "scm-suite/merchandise-ship", "scm-suite/settlement-run",
            "saleor/checkout-complete", "saleor/order-fulfill",
            "redmine/issue-assign", "jumpserver/asset-update"]:
    setf(cid, partial=True)
# multi-request coordination (10)
for cid in ["discourse/edit-post", "discourse/draft-save",
            "discourse/image-upload", "mastodon/media-attach",
            "mastodon/status-edit", "spree/payment-process",
            "spree/checkout... "]:
    pass
for cid in ["discourse/edit-post", "discourse/draft-save",
            "discourse/image-upload", "mastodon/media-attach",
            "mastodon/status-edit", "spree/payment-process",
            "saleor/checkout-shipping", "saleor/checkout-billing",
            "broadleaf/inventory-db-lock", "redmine/wiki-edit"]:
    setf(cid, multi_request=True)
# non-database operations (8): Redis sets, filesystems, in-memory caches
for cid in ["mastodon/timeline-insert", "mastodon/timeline-remove",
            "mastodon/status-delete", "mastodon/list-membership",
            "discourse/image-upload", "discourse/notification-fanout",
            "jumpserver/credential-rotate", "saleor/digital-download"]:
    setf(cid, non_db=True)

# --- pessimistic lock structure: 52 single / 13 ordered-multiple ---
for c in C:
    if c.cc == "Pessimistic":
        c.single_lock = True
for cid in ["spree/order-shipment-sync", "spree/order-promotion-apply",
            "redmine/attachment-add", "redmine/version-close",
            "broadleaf/checkout-workflow", "scm-suite/warehouse-transfer",
            "scm-suite/settlement-run", "jumpserver/node-move",
            "saleor/stock-allocate", "saleor/stock-deallocate",
            "saleor/order-fulfill", "saleor/order-cancel",
            "saleor/payment-refund"]:
    setf(cid, single_lock=False)

# --- severity: exactly D6 M4 S9 B6 Sa3 ---
setf("discourse/rebake-post", severe=None)
setf("mastodon/status-delete", severe=None)
setf("spree/coupon-apply", severe=None)

# --- critical: Mastodon 9 -> 10, Broadleaf 7 -> 6 (Table 3) ---
setf("mastodon/media-attach", critical=True)
setf("broadleaf/order-total-verify", critical=False)

# --- reports: 20 reports / 46 cases; 7 acked / 33 cases ---
# merge the two acked Discourse content reports into one
for cid in ["discourse/edit-post", "discourse/rebake-post",
            "discourse/shrink-image"]:
    setf(cid, report="discourse-stale-content", acked=True)
# move payment-capture-check under the acked Spree order-lock report
setf("spree/payment-capture-check", report="spree-order-lock", acked=True)
# drop three unacked single-case reports (cases become unreported)
for cid in ["discourse/badge-grant", "discourse/topic-view-track",
            "broadleaf/fulfillment-price"]:
    setf(cid, report=None, acked=False)

report()


# ======= emit Rust =======
def rs_bool(b): return "true" if b else "false"
def rs_opt_str(s):
    return f'Some("{s}")' if s else "None"

APP_VARIANTS = {"Discourse":"Discourse","Mastodon":"Mastodon","Spree":"Spree","Redmine":"Redmine",
                "Broadleaf":"Broadleaf","ScmSuite":"ScmSuite","JumpServer":"JumpServer","Saleor":"Saleor"}

lines = []
lines.append("""//! The 91-case study corpus.
//!
//! One record per ad hoc transaction the paper studied (Table 4's totals).
//! The paper publishes aggregates, not the per-case list, so individual
//! attributes are a *consistent reconstruction*: every aggregate the paper
//! reports (Tables 2-5, Findings 1-8, the reporting statistics of S4) is
//! derived from these records and asserted against the published numbers in
//! this crate's tests. Case ids and API descriptions follow Table 3's
//! per-application core-API listings and the concrete scenarios quoted in
//! SS3-SS4.
//!
//! This file is generated by `tools/gen_corpus.py`; edit that script, not
//! this file, when adjusting the reconstruction.

use crate::case::{App, Case};
use adhoc_core::taxonomy::{
    CcAlgorithm, FailureHandling, IssueCategory, LockImpl, ValidationImpl,
};

/// Every studied ad hoc transaction.
pub static CASES: &[Case] = &[""")

for c in C:
    iss = ", ".join(f"IssueCategory::{i}" for i in c.issues)
    fields = []
    fields.append(f'id: "{c.id}"')
    fields.append(f'app: App::{APP_VARIANTS[c.app]}')
    fields.append(f'api: "{c.api}"')
    fields.append(f'cc: CcAlgorithm::{c.cc}')
    fields.append(f'lock_impl: {f"Some(LockImpl::{c.lock_impl})" if c.lock_impl else "None"}')
    fields.append(f'validation_impl: {f"Some(ValidationImpl::{c.validation_impl})" if c.validation_impl else "None"}')
    fields.append(f'critical: {rs_bool(c.critical)}')
    fields.append(f'partial_coordination: {rs_bool(c.partial)}')
    fields.append(f'multi_request: {rs_bool(c.multi_request)}')
    fields.append(f'non_db_ops: {rs_bool(c.non_db)}')
    fields.append(f'single_lock: {rs_bool(c.single_lock and c.cc=="Pessimistic")}')
    fields.append(f'rmw: {rs_bool(c.rmw)}')
    fields.append(f'associated_access: {rs_bool(c.aa)}')
    fields.append(f'column_based: {rs_bool(c.cbc)}')
    fields.append(f'predicate_based: {rs_bool(c.pbc)}')
    fields.append(f'failure_handling: {f"Some(FailureHandling::{c.failure})" if c.failure else "None"}')
    fields.append(f'issues: &[{iss}]')
    fields.append(f'severe_consequence: {rs_opt_str(c.severe)}')
    fields.append(f'report: {rs_opt_str(c.report)}')
    fields.append(f'acknowledged: {rs_bool(c.acked)}')
    body = ",\n        ".join(fields)
    lines.append("    Case {\n        " + body + ",\n    },")
lines.append("];")
import os
os.makedirs("crates/study/src", exist_ok=True)
open("crates/study/src/corpus_data.rs","w").write("\n".join(lines) + "\n")
print("emitted", len(C), "cases")
