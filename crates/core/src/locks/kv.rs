//! `KV-SETNX` and `KV-MULTI`: Redis-backed locks (§3.2.1).
//!
//! Mastodon acquires with a single `SETNX`; Discourse drives a
//! `WATCH`/`GET`/`MULTI`/`SET`/`EXEC` conversation, paying several extra
//! round trips per cycle (the paper counts six). Saleor's variant adds
//! re-entrancy. The Mastodon lease bug (§4.1.1, issue \[65\]) — an
//! auto-expiring entry released early, with no expiry check before the
//! critical section's writes — reproduces here by combining
//! [`KvSetNxLock::with_ttl`] with ignoring [`Guard::is_valid`], and the
//! unconditional-`DEL` unlock is available via
//! [`KvSetNxLock::unlock_without_owner_check`].
//!
//! [`Guard::is_valid`]: super::Guard::is_valid

use super::{AcquireConfig, AdHocLock, Guard, LockError, LockGuard};
use adhoc_kv::{Client, KvError};
use adhoc_sim::{Deadline, RetryBudget};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

static OWNER_COUNTER: AtomicU64 = AtomicU64::new(1);

fn fresh_owner() -> String {
    format!("owner-{}", OWNER_COUNTER.fetch_add(1, Ordering::SeqCst))
}

/// Re-entrancy bookkeeping per lock instance: key → (holding thread,
/// owner token, depth). Shared (not thread-local) so a guard that
/// migrates threads still decrements the right entry; nested acquisition
/// is only granted to the *holding* thread, matching Saleor's semantics.
type ReentrantTable = Mutex<HashMap<String, (ThreadId, String, u32)>>;

/// `KV-SETNX`: Mastodon/Saleor-style Redis lock.
#[derive(Clone)]
pub struct KvSetNxLock {
    client: Client,
    config: AcquireConfig,
    ttl: Option<Duration>,
    check_owner_on_unlock: bool,
    reentrant: bool,
    recover_ambiguous: bool,
    fenced: bool,
    deadline: Option<Deadline>,
    budget: Option<Arc<RetryBudget>>,
    /// Per-instance re-entrancy table (see [`ReentrantTable`]).
    reentrancy: Arc<ReentrantTable>,
}

impl KvSetNxLock {
    /// A correct, non-leased, non-re-entrant `SETNX` lock.
    pub fn new(client: Client) -> Self {
        Self {
            client,
            config: AcquireConfig::default(),
            ttl: None,
            check_owner_on_unlock: true,
            reentrant: false,
            recover_ambiguous: false,
            fenced: false,
            deadline: None,
            budget: None,
            reentrancy: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Override the acquisition retry/timeout policy.
    pub fn with_config(mut self, config: AcquireConfig) -> Self {
        self.config = config;
        self
    }

    /// Lease semantics: entries auto-expire after `ttl` (Redis `PX`).
    /// Correct users check [`Guard::is_valid`] before acting on the lock;
    /// Mastodon did not (§4.1.1).
    ///
    /// [`Guard::is_valid`]: super::Guard::is_valid
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Fault injection: unlock with a bare `DEL`, without verifying the
    /// entry is still ours — after a lease expiry this deletes somebody
    /// else's lock.
    pub fn unlock_without_owner_check(mut self) -> Self {
        self.check_owner_on_unlock = false;
        self
    }

    /// Saleor's re-entrant variant: the same thread may acquire the same
    /// key repeatedly; the entry is removed when the outermost guard
    /// releases.
    pub fn reentrant(mut self) -> Self {
        self.reentrant = true;
        self
    }

    /// When a `SETNX` reply is lost ([`KvError::ConnectionLost`]) the
    /// client cannot tell whether its write landed. With this switch, the
    /// lock recovers by reading the key back: if the entry carries our
    /// owner token, our write won and the lock is treated as acquired.
    ///
    /// This is the realistic application-level recovery — and, combined
    /// with a TTL, it's how the double-grant arises: the acquisition the
    /// recovery confirmed can expire mid-critical-section, hand the lock
    /// to someone else, and only a [`Guard::is_valid`] check (the fence)
    /// catches it.
    ///
    /// [`Guard::is_valid`]: super::Guard::is_valid
    pub fn recover_ambiguous_replies(mut self) -> Self {
        self.recover_ambiguous = true;
        self
    }

    /// The robust TTL-steal fix: leased acquisitions go through the
    /// store's fenced lease grant, and the guard exposes a monotonic
    /// [fencing token](super::Guard::fencing_token) for the critical
    /// section to attach to its writes (via
    /// [`Client::fenced_set`](adhoc_kv::Client::fenced_set)). A holder
    /// whose lease expired and was re-granted carries a stale token and
    /// its late writes bounce off the store's fence floor — correctness no
    /// longer hinges on the holder remembering to check
    /// [`Guard::is_valid`](super::Guard::is_valid). Only meaningful
    /// together with [`with_ttl`](Self::with_ttl); without a TTL the
    /// entry cannot be stolen and plain `SETNX` is used. The default
    /// (unfenced) behaviour is unchanged so the §4.1.1 bug still
    /// reproduces.
    pub fn with_fencing(mut self) -> Self {
        self.fenced = true;
        self
    }

    /// Bound the whole acquisition loop by an absolute [`Deadline`] on
    /// the client's clock, layered under the retry policy's own limits:
    /// whichever gives up first wins.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Draw every acquisition retry from a shared [`RetryBudget`], so a
    /// fleet of contending lockers cannot amplify an outage with
    /// unbounded polling.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The acquisition timer, with this lock's deadline and retry budget
    /// attached.
    fn timer(&self, label: &'static str) -> adhoc_sim::RetryTimer {
        let mut timer = self.config.policy().timer(label);
        if let Some(budget) = &self.budget {
            timer = timer.with_budget(Arc::clone(budget));
        }
        if let Some(deadline) = self.deadline {
            timer = timer.until(self.client.clock(), deadline);
        }
        timer
    }
}

struct KvGuard {
    client: Client,
    key: String,
    owner: String,
    check_owner: bool,
    /// Whether the entry carries a TTL (lease). Without a lease the entry
    /// cannot be stolen, so a bare `DEL` on unlock is safe and costs one
    /// round trip; with a lease the unlock must be atomic (see `unlock`).
    leased: bool,
    released: bool,
    /// Monotonic fencing token, present when the lock was acquired via
    /// the fenced lease grant ([`KvSetNxLock::with_fencing`]).
    token: Option<u64>,
    /// Re-entrancy table this guard participates in, when any.
    reentrancy: Option<Arc<ReentrantTable>>,
}

impl KvGuard {
    fn depth_decrement(&self) -> bool {
        // Returns true when this was the outermost guard (entry removable).
        let Some(table) = &self.reentrancy else {
            return true;
        };
        let mut table = table.lock();
        match table.get_mut(&self.key) {
            Some((_, _, depth)) => {
                *depth -= 1;
                if *depth == 0 {
                    table.remove(&self.key);
                    true
                } else {
                    false
                }
            }
            None => true,
        }
    }
}

impl LockGuard for KvGuard {
    fn unlock(&mut self) -> Result<(), LockError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        if !self.depth_decrement() {
            return Ok(()); // inner re-entrant level: nothing to delete yet
        }
        if self.check_owner && self.leased {
            // A leased entry can expire and be re-acquired at any moment,
            // so check-then-delete must be atomic: WATCH the key, verify
            // ownership, and DEL inside MULTI/EXEC (aborting if the entry
            // changed in between).
            let mut session = self.client.session();
            session.watch(&self.key);
            let current = session
                .get(&self.key)
                .map_err(|e| LockError::Backend(e.to_string()))?;
            if current.as_deref() != Some(self.owner.as_str()) {
                // Lease expired (and possibly re-acquired by someone else):
                // deleting now would clobber them. Report instead.
                return Err(LockError::NotHeld {
                    key: self.key.clone(),
                });
            }
            session.multi();
            session.del(&self.key);
            let committed = session
                .exec()
                .map_err(|e| LockError::Backend(e.to_string()))?;
            if !committed {
                return Err(LockError::NotHeld {
                    key: self.key.clone(),
                });
            }
            return Ok(());
        }
        // No lease: only this guard can remove the entry, so an
        // unconditional single-round-trip DEL is safe (and is what the
        // studied applications issue). A lost reply still must NOT be
        // treated as a confirmed release (§3.4.1): surface it.
        self.client
            .del(&self.key)
            .map_err(|e| LockError::Backend(e.to_string()))?;
        Ok(())
    }

    fn is_valid(&self) -> bool {
        !self.released
            && self.client.get(&self.key).ok().flatten().as_deref() == Some(self.owner.as_str())
    }

    fn leak(&mut self) {
        self.released = true;
        if let Some(table) = &self.reentrancy {
            table.lock().remove(&self.key);
        }
    }

    fn fencing_token(&self) -> Option<u64> {
        self.token
    }
}

impl AdHocLock for KvSetNxLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        // Re-entrant fast path: this thread already holds the key.
        if self.reentrant {
            let existing = {
                let mut table = self.reentrancy.lock();
                match table.get_mut(key) {
                    Some((holder, owner, depth)) if *holder == std::thread::current().id() => {
                        *depth += 1;
                        Some(owner.clone())
                    }
                    _ => None,
                }
            };
            if let Some(owner) = existing {
                return Ok(Guard::new(Box::new(KvGuard {
                    client: self.client.clone(),
                    key: key.to_string(),
                    owner,
                    check_owner: self.check_owner_on_unlock,
                    leased: self.ttl.is_some(),
                    released: false,
                    token: None,
                    reentrancy: Some(Arc::clone(&self.reentrancy)),
                })));
            }
        }

        let owner = fresh_owner();
        let mut timer = self.timer("KV-SETNX");
        loop {
            let mut token = None;
            let attempt = match self.ttl {
                Some(ttl) if self.fenced => {
                    self.client.acquire_lease(key, &owner, ttl).map(|grant| {
                        token = grant;
                        grant.is_some()
                    })
                }
                Some(ttl) => self.client.set_nx_px(key, &owner, ttl),
                None => self.client.set_nx(key, &owner),
            };
            let acquired = match attempt {
                Ok(acquired) => acquired,
                Err(KvError::ConnectionLost) if self.recover_ambiguous => {
                    // The reply was lost; read the key back to learn
                    // whether our SETNX landed. On the fenced path the
                    // readback also recovers the granted token.
                    if self.fenced && self.ttl.is_some() {
                        match self.client.lease_token(key, &owner) {
                            Ok(grant) => {
                                token = grant;
                                grant.is_some()
                            }
                            Err(e) => return Err(LockError::Backend(e.to_string())),
                        }
                    } else {
                        match self.client.get(key) {
                            Ok(current) => current.as_deref() == Some(owner.as_str()),
                            Err(e) => return Err(LockError::Backend(e.to_string())),
                        }
                    }
                }
                Err(e) => return Err(LockError::Backend(e.to_string())),
            };
            if acquired {
                let reentrancy = if self.reentrant {
                    self.reentrancy.lock().insert(
                        key.to_string(),
                        (std::thread::current().id(), owner.clone(), 1),
                    );
                    Some(Arc::clone(&self.reentrancy))
                } else {
                    None
                };
                return Ok(Guard::new(Box::new(KvGuard {
                    client: self.client.clone(),
                    key: key.to_string(),
                    owner,
                    check_owner: self.check_owner_on_unlock,
                    leased: self.ttl.is_some(),
                    released: false,
                    token,
                    reentrancy,
                })));
            }
            if !timer.wait(None) {
                return Err(LockError::Timeout {
                    key: key.to_string(),
                });
            }
        }
    }

    fn label(&self) -> &'static str {
        "KV-SETNX"
    }
}

/// `KV-MULTI`: Discourse's optimistic check-then-set lock protocol.
#[derive(Clone)]
pub struct KvMultiLock {
    client: Client,
    config: AcquireConfig,
    ttl: Option<Duration>,
    deadline: Option<Deadline>,
    budget: Option<Arc<RetryBudget>>,
}

impl KvMultiLock {
    /// A correct, non-leased `WATCH`/`MULTI` lock.
    pub fn new(client: Client) -> Self {
        Self {
            client,
            config: AcquireConfig::default(),
            ttl: None,
            deadline: None,
            budget: None,
        }
    }

    /// Override the acquisition retry/timeout policy.
    pub fn with_config(mut self, config: AcquireConfig) -> Self {
        self.config = config;
        self
    }

    /// Lease semantics: entries auto-expire after `ttl`.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Bound the acquisition loop by an absolute [`Deadline`] on the
    /// client's clock.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Draw acquisition retries from a shared [`RetryBudget`].
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }
}

impl AdHocLock for KvMultiLock {
    fn lock(&self, key: &str) -> Result<Guard, LockError> {
        let owner = fresh_owner();
        let mut timer = self.config.policy().timer("KV-MULTI");
        if let Some(budget) = &self.budget {
            timer = timer.with_budget(Arc::clone(budget));
        }
        if let Some(deadline) = self.deadline {
            timer = timer.until(self.client.clock(), deadline);
        }
        loop {
            // WATCH key; GET key; if free: MULTI; SET; EXEC.
            let mut session = self.client.session();
            session.watch(key);
            let current = session
                .get(key)
                .map_err(|e| LockError::Backend(e.to_string()))?;
            if current.is_none() {
                session.multi();
                match self.ttl {
                    Some(ttl) => session.set_px(key, &owner, ttl),
                    None => session.set(key, &owner),
                }
                let committed = session
                    .exec()
                    .map_err(|e| LockError::Backend(e.to_string()))?;
                if committed {
                    return Ok(Guard::new(Box::new(KvGuard {
                        client: self.client.clone(),
                        key: key.to_string(),
                        owner,
                        check_owner: true,
                        leased: self.ttl.is_some(),
                        released: false,
                        token: None,
                        reentrancy: None,
                    })));
                }
            }
            if !timer.wait(None) {
                return Err(LockError::Timeout {
                    key: key.to_string(),
                });
            }
        }
    }

    fn label(&self) -> &'static str {
        "KV-MULTI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::mutual_exclusion_trial;
    use adhoc_kv::Store;
    use adhoc_sim::{LatencyModel, VirtualClock};

    fn client() -> Client {
        Client::new(Store::new(), VirtualClock::shared(), LatencyModel::zero())
    }

    #[test]
    fn acquire_deadline_bounds_the_setnx_polling_loop() {
        let c = client();
        let lock = KvSetNxLock::new(c.clone())
            .with_config(fast_config())
            .with_deadline(Deadline::at(Duration::ZERO));
        let holder = KvSetNxLock::new(c).with_config(fast_config());
        let _g = holder.lock("mutex").unwrap();
        // The virtual clock sits at the (already-expired) deadline, so the
        // loop gives up after its very first contended attempt instead of
        // polling out the 10 s policy timeout.
        let err = lock.lock("mutex").unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
    }

    #[test]
    fn shared_retry_budget_caps_contended_polling() {
        let c = client();
        let budget = Arc::new(RetryBudget::new(2));
        let lock = KvSetNxLock::new(c.clone())
            .with_config(fast_config())
            .with_retry_budget(Arc::clone(&budget));
        let holder = KvSetNxLock::new(c).with_config(fast_config());
        let _g = holder.lock("mutex").unwrap();
        let err = lock.lock("mutex").unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        // Two retries were granted by the bucket; the third was denied and
        // became the give-up — far short of the policy's own 10 s budget.
        assert_eq!(budget.granted(), 2);
        assert!(budget.denied() >= 1);
    }

    fn fast_config() -> AcquireConfig {
        AcquireConfig {
            retry_interval: Duration::from_micros(200),
            timeout: Duration::from_secs(10),
        }
    }

    #[test]
    fn setnx_mutual_exclusion() {
        let lock = KvSetNxLock::new(client()).with_config(fast_config());
        assert_eq!(mutual_exclusion_trial(&lock, "invite-1", 6, 60), 6 * 60);
    }

    #[test]
    fn multi_mutual_exclusion() {
        let lock = KvMultiLock::new(client()).with_config(fast_config());
        assert_eq!(mutual_exclusion_trial(&lock, "post-1", 6, 40), 6 * 40);
    }

    #[test]
    fn setnx_costs_one_round_trip_per_acquire() {
        let c = client();
        let lock = KvSetNxLock::new(c.clone());
        let before = c.round_trips();
        let g = lock.lock("k").unwrap();
        assert_eq!(c.round_trips() - before, 1, "SETNX acquire = 1 round trip");
        let before = c.round_trips();
        g.unlock().unwrap();
        // Unleased entries cannot be stolen, so unlock is a bare DEL.
        assert_eq!(c.round_trips() - before, 1);
    }

    #[test]
    fn leased_unlock_is_atomic_and_costs_the_protocol() {
        let c = client();
        let lock = KvSetNxLock::new(c.clone()).with_ttl(Duration::from_secs(60));
        let g = lock.lock("k").unwrap();
        let before = c.round_trips();
        g.unlock().unwrap();
        // WATCH + GET + MULTI + DEL + EXEC.
        assert_eq!(c.round_trips() - before, 5);
        assert!(c.get("k").unwrap().is_none());
    }

    #[test]
    fn reentrant_guard_unlocked_on_another_thread_keeps_outer_hold() {
        let lock = KvSetNxLock::new(client()).reentrant();
        let outer = lock.lock("k").unwrap();
        let inner = lock.lock("k").unwrap();
        // Hand the inner guard to another thread and release it there.
        std::thread::spawn(move || inner.unlock().unwrap())
            .join()
            .unwrap();
        // The outer hold must survive the cross-thread inner release.
        assert!(outer.is_valid());
        outer.unlock().unwrap();
        lock.lock("k").unwrap().unlock().unwrap();
    }

    #[test]
    fn reentrancy_is_per_thread_not_per_process() {
        // A different thread must NOT get the re-entrant fast path.
        let lock = KvSetNxLock::new(client())
            .reentrant()
            .with_config(AcquireConfig {
                retry_interval: Duration::from_micros(100),
                timeout: Duration::from_millis(30),
            });
        let _outer = lock.lock("k").unwrap();
        let lock2 = lock.clone();
        let result = std::thread::spawn(move || lock2.lock("k").map(|_| ()))
            .join()
            .unwrap();
        assert!(matches!(result, Err(LockError::Timeout { .. })));
    }

    #[test]
    fn multi_costs_the_extra_round_trips() {
        let c = client();
        let lock = KvMultiLock::new(c.clone());
        let before = c.round_trips();
        let g = lock.lock("k").unwrap();
        // WATCH + GET + MULTI + SET + EXEC.
        assert_eq!(c.round_trips() - before, 5);
        g.unlock().unwrap();
    }

    #[test]
    fn lease_expiry_is_detectable_via_is_valid() {
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let lock = KvSetNxLock::new(c).with_ttl(Duration::from_millis(100));
        let g = lock.lock("status-1").unwrap();
        assert!(g.is_valid());
        clock.advance(Duration::from_millis(200));
        assert!(!g.is_valid(), "lease must have expired");
        // Another worker can take the lock now — mutual exclusion is gone
        // unless the first holder checks is_valid (Mastodon didn't).
        let g2 = lock.lock("status-1").unwrap();
        assert!(g2.is_valid());
        // Owner-checked unlock refuses to clobber g2's entry.
        assert!(matches!(g.unlock(), Err(LockError::NotHeld { .. })));
        assert!(g2.is_valid());
    }

    #[test]
    fn unchecked_unlock_clobbers_the_next_holder() {
        // The buggy unlock: bare DEL after our lease expired deletes the
        // *next* holder's lock, cascading the race.
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let lock = KvSetNxLock::new(c)
            .with_ttl(Duration::from_millis(100))
            .unlock_without_owner_check();
        let g = lock.lock("status-1").unwrap();
        clock.advance(Duration::from_millis(200));
        let g2 = lock.lock("status-1").unwrap();
        assert!(g2.is_valid());
        g.unlock().unwrap(); // bare DEL
        assert!(!g2.is_valid(), "the second holder's lock was deleted");
    }

    #[test]
    fn fenced_lock_rejects_the_zombie_holders_write() {
        // The §4.1.1 scenario with the robust fix: holder A's lease
        // expires mid-critical-section and B takes over, but A's late
        // write now carries a stale fencing token and the store refuses
        // it — no is_valid() discipline required.
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let lock = KvSetNxLock::new(c.clone())
            .with_ttl(Duration::from_millis(100))
            .with_fencing();
        let a = lock.lock("status-1").unwrap();
        let a_token = a.fencing_token().expect("fenced acquire grants a token");
        clock.advance(Duration::from_millis(200));
        let b = lock.lock("status-1").unwrap();
        let b_token = b.fencing_token().unwrap();
        assert!(b_token > a_token, "tokens are monotonic across re-grants");
        // B writes first; A wakes up from its pause and tries to write.
        assert!(c.fenced_set("guarded", "b-wrote", b_token).unwrap());
        assert!(!c.fenced_set("guarded", "a-wrote", a_token).unwrap());
        assert_eq!(c.get("guarded").unwrap(), Some("b-wrote".into()));
        // A's owner-checked unlock also reports the loss.
        assert!(matches!(a.unlock(), Err(LockError::NotHeld { .. })));
        b.unlock().unwrap();
    }

    #[test]
    fn fenced_mutual_exclusion_and_unfenced_guards_have_no_token() {
        let lock = KvSetNxLock::new(client())
            .with_ttl(Duration::from_secs(60))
            .with_fencing()
            .with_config(fast_config());
        assert_eq!(mutual_exclusion_trial(&lock, "invite-1", 4, 40), 4 * 40);
        let unfenced = KvSetNxLock::new(client()).with_ttl(Duration::from_secs(60));
        let g = unfenced.lock("k").unwrap();
        assert_eq!(g.fencing_token(), None);
        g.unlock().unwrap();
    }

    #[test]
    fn fenced_acquire_recovers_token_from_ambiguous_reply() {
        use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
        // The lease grant's reply is lost; the recovery readback learns
        // both that our grant landed *and* which token it carried.
        let plan = FaultPlan::new(1, vec![FaultRule::at_ops(FaultKind::ReplyLost, &[0])]);
        let c = Client::new(Store::new(), VirtualClock::shared(), LatencyModel::zero())
            .with_faults(plan);
        let lock = KvSetNxLock::new(c)
            .with_ttl(Duration::from_secs(60))
            .with_fencing()
            .recover_ambiguous_replies();
        let g = lock.lock("k").unwrap();
        assert_eq!(g.fencing_token(), Some(1));
        g.unlock().unwrap();
    }

    #[test]
    fn reentrant_lock_allows_nested_acquires() {
        let lock = KvSetNxLock::new(client()).reentrant();
        let outer = lock.lock("k").unwrap();
        let inner = lock.lock("k").unwrap(); // would deadlock if not reentrant
        inner.unlock().unwrap();
        assert!(outer.is_valid(), "inner release keeps the outer hold");
        outer.unlock().unwrap();
        // Fully released: a different owner can acquire.
        let g = lock.lock("k").unwrap();
        g.unlock().unwrap();
    }

    #[test]
    fn non_reentrant_lock_times_out_on_nested_acquire() {
        let lock = KvSetNxLock::new(client()).with_config(AcquireConfig {
            retry_interval: Duration::from_micros(100),
            timeout: Duration::from_millis(30),
        });
        let _outer = lock.lock("k").unwrap();
        assert!(matches!(lock.lock("k"), Err(LockError::Timeout { .. })));
    }

    #[test]
    fn leak_leaves_entry_for_ttl_to_reap() {
        let clock = Arc::new(VirtualClock::new());
        let c = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let lock = KvSetNxLock::new(c)
            .with_ttl(Duration::from_millis(50))
            .with_config(AcquireConfig {
                retry_interval: Duration::from_micros(100),
                timeout: Duration::from_millis(20),
            });
        lock.lock("k").unwrap().leak(); // holder crashes
                                        // Immediately after: still locked.
        assert!(matches!(lock.lock("k"), Err(LockError::Timeout { .. })));
        // After the TTL, the lease expires and service resumes (§3.4.2:
        // Redis locks "expire after a given period").
        clock.advance(Duration::from_millis(60));
        lock.lock("k").unwrap().unlock().unwrap();
    }
}
