#!/usr/bin/env bash
# Engine-scaling benchmark: writes BENCH_fig2.json (storage commit
# scaling, disjoint vs same-key), BENCH_fig3.json (KV command scaling),
# BENCH_wal.json (the same commit workload with the write-ahead log on
# vs off, free and costed fsyncs — durability overhead), BENCH_occ.json
# (the §7 cured orm::occ layer vs the hand-rolled lock + two-transaction
# AHT), BENCH_confluence.json (the PR-9 coordination-avoiding delta path
# vs both coordinated implementations of the same hot-counter increment)
# BENCH_resilience.json (the metastability ablation under a
# partition storm) and BENCH_traffic.json (the open-loop traffic-SLO
# ablation: naive / breaker_only / full front door across load levels)
# into the repository root, with the committed
# pre-refactor baselines from tools/baselines/ embedded for before/after
# comparison.
#
# Usage:
#   ./tools/bench.sh              # full windows (~200ms per cell)
#   BENCH_SCALE=smoke ./tools/bench.sh   # tiny duty cycle, CI smoke
#   ./tools/bench.sh out/dir      # write the JSON files elsewhere
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR="${1:-.}"

cargo build --release -p adhoc-bench --bin paper-eval
./target/release/paper-eval bench-json "$OUTDIR"
