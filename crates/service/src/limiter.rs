//! Per-client rate limiting, written both ways.
//!
//! The catalog case this module adds: a web tier fronting the studied
//! applications limits each client's request rate. The idiomatic
//! quick-fix — a **fixed-window counter** kept in the KV store — is an ad
//! hoc transaction: `GET` the window's count, compare against the limit,
//! then `INCR`. Check and act are two separate round trips with no
//! coordination between them, so two concurrent requests from one client
//! can both read `limit - 1` and both be admitted — the same
//! check-then-act anomaly as the paper's Fig. 1a, applied to admission
//! state (and the same coordination-avoidance tradeoff Bailis et al.
//! study: the counter is *not* invariant-confluent against the cap).
//!
//! The cure is the **token bucket**: refill-and-debit as one atomic
//! in-process decision, so admission over the cap is impossible by
//! construction. `tests/schedules/rate-limit-window-race.sched` pins the
//! fixed-window race as schedule witness 25.

use crate::ServiceError;
use adhoc_kv::{Client, KvError};
use adhoc_sim::SharedClock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-client admission: `Ok(true)` admits, `Ok(false)` rate-limits.
pub trait RateLimiter: Send + Sync {
    /// Decide admission for one request from `client`.
    fn try_admit(&self, client: u64) -> Result<bool, ServiceError>;
    /// Which implementation this is (for reports).
    fn label(&self) -> &'static str;
    /// Requests refused so far.
    fn limited(&self) -> u64;
}

/// The racy fixed-window counter over the KV store (catalog case).
///
/// `admitted(client, window) < limit` is checked with a `GET`, then the
/// count is bumped with an `INCR` — two wire round trips, with the
/// check-then-act window in between. Under the deterministic scheduler
/// both hops are preemption points, which is exactly how witness 25
/// derives the double-admission.
pub struct FixedWindowLimiter {
    kv: Client,
    clock: SharedClock,
    limit: i64,
    window: Duration,
    limited: AtomicU64,
}

impl FixedWindowLimiter {
    /// Allow `limit` requests per `window` per client, counted in `kv`.
    pub fn new(kv: Client, limit: i64, window: Duration) -> Self {
        assert!(limit > 0 && !window.is_zero());
        let clock = kv.clock();
        Self {
            kv,
            clock,
            limit,
            window,
            limited: AtomicU64::new(0),
        }
    }

    fn window_key(&self, client: u64) -> String {
        let idx = self.clock.now().as_nanos() / self.window.as_nanos();
        format!("rl:{client}:{idx}")
    }
}

impl RateLimiter for FixedWindowLimiter {
    fn try_admit(&self, client: u64) -> Result<bool, ServiceError> {
        let key = self.window_key(client);
        // Round trip 1: the check.
        let count: i64 = match self.kv.get(&key).map_err(kv_err)? {
            Some(s) => s.parse().unwrap_or(0),
            None => 0,
        };
        if count >= self.limit {
            self.limited.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        // Round trip 2: the act. Nothing revalidates the count read above —
        // a concurrent request admitted in between pushes the window past
        // its limit (the pinned race).
        self.kv.incr(&key).map_err(kv_err)?;
        Ok(true)
    }

    fn label(&self) -> &'static str {
        "fixed-window"
    }

    fn limited(&self) -> u64 {
        self.limited.load(Ordering::Relaxed)
    }
}

fn kv_err(e: KvError) -> ServiceError {
    match e {
        KvError::CircuitOpen => ServiceError::CircuitOpen,
        other => ServiceError::Backend(other.to_string()),
    }
}

struct Bucket {
    /// Millitokens, so refill arithmetic stays in integers (deterministic
    /// across platforms).
    millitokens: u64,
    last_refill: Duration,
}

/// The cured limiter: a token bucket refilled and debited under one lock.
///
/// Admission is a single atomic decision on in-process state, so the cap
/// holds by construction — no wire, no check-then-act window. This is the
/// shape production gateways converge on once the fixed-window race bites.
pub struct TokenBucketLimiter {
    clock: SharedClock,
    rate_millitokens_per_sec: u64,
    burst_millitokens: u64,
    buckets: Mutex<HashMap<u64, Bucket>>,
    limited: AtomicU64,
}

impl TokenBucketLimiter {
    /// Allow a sustained `rate_per_sec` with bursts up to `burst`, per
    /// client.
    pub fn new(clock: SharedClock, rate_per_sec: u64, burst: u64) -> Self {
        assert!(rate_per_sec > 0 && burst > 0);
        Self {
            clock,
            rate_millitokens_per_sec: rate_per_sec * 1000,
            burst_millitokens: burst * 1000,
            buckets: Mutex::new(HashMap::new()),
            limited: AtomicU64::new(0),
        }
    }
}

impl RateLimiter for TokenBucketLimiter {
    fn try_admit(&self, client: u64) -> Result<bool, ServiceError> {
        let now = self.clock.now();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(client).or_insert(Bucket {
            millitokens: self.burst_millitokens,
            last_refill: now,
        });
        let elapsed = now.saturating_sub(bucket.last_refill);
        let refill =
            (elapsed.as_nanos() * self.rate_millitokens_per_sec as u128 / 1_000_000_000) as u64;
        if refill > 0 {
            let refilled = bucket.millitokens + refill;
            if refilled >= self.burst_millitokens {
                bucket.millitokens = self.burst_millitokens;
                bucket.last_refill = now;
            } else {
                bucket.millitokens = refilled;
                // Advance only by the time the granted refill covers, so
                // sub-token remainders are not lost to truncation.
                let covered =
                    refill as u128 * 1_000_000_000 / self.rate_millitokens_per_sec as u128;
                bucket.last_refill += Duration::from_nanos(covered as u64);
            }
        }
        if bucket.millitokens >= 1000 {
            bucket.millitokens -= 1000;
            Ok(true)
        } else {
            self.limited.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
    }

    fn label(&self) -> &'static str {
        "token-bucket"
    }

    fn limited(&self) -> u64 {
        self.limited.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_kv::Store;
    use adhoc_sim::{LatencyModel, VirtualClock};
    use std::sync::Arc;

    fn kv(clock: Arc<VirtualClock>) -> Client {
        Client::new(Store::new(), clock, LatencyModel::zero())
    }

    #[test]
    fn fixed_window_admits_up_to_limit_then_refuses() {
        let clock = Arc::new(VirtualClock::new());
        let l = FixedWindowLimiter::new(kv(clock.clone()), 3, Duration::from_secs(1));
        for _ in 0..3 {
            assert!(l.try_admit(7).unwrap());
        }
        assert!(!l.try_admit(7).unwrap());
        assert_eq!(l.limited(), 1);
        // A different client has its own window.
        assert!(l.try_admit(8).unwrap());
        // The next window resets the count.
        clock.advance(Duration::from_secs(1));
        assert!(l.try_admit(7).unwrap());
    }

    #[test]
    fn fixed_window_check_and_act_are_separate_round_trips() {
        let clock = Arc::new(VirtualClock::new());
        let client = kv(clock);
        let l = FixedWindowLimiter::new(client.clone(), 5, Duration::from_secs(1));
        let before = client.round_trips();
        l.try_admit(1).unwrap();
        assert_eq!(
            client.round_trips() - before,
            2,
            "GET then INCR — the race window lives between them"
        );
    }

    #[test]
    fn token_bucket_enforces_burst_then_rate() {
        let clock = Arc::new(VirtualClock::new());
        let l = TokenBucketLimiter::new(clock.clone(), 10, 3);
        for _ in 0..3 {
            assert!(l.try_admit(7).unwrap());
        }
        assert!(!l.try_admit(7).unwrap(), "burst exhausted");
        // 100 ms at 10/s refills exactly one token.
        clock.advance(Duration::from_millis(100));
        assert!(l.try_admit(7).unwrap());
        assert!(!l.try_admit(7).unwrap());
        assert_eq!(l.limited(), 2);
    }

    #[test]
    fn token_bucket_is_per_client() {
        let clock = Arc::new(VirtualClock::new());
        let l = TokenBucketLimiter::new(clock, 1, 1);
        assert!(l.try_admit(1).unwrap());
        assert!(!l.try_admit(1).unwrap());
        assert!(l.try_admit(2).unwrap(), "client 2 has its own bucket");
    }
}
