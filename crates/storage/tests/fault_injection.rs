//! Commit-time fault points: `CommitFailed` (honest rollback) vs
//! `CrashAfterDurable` (commit survives, acknowledgement doesn't). Both
//! surface the same `DbError::ConnectionLost`, so a client cannot tell the
//! two cases apart — the §3.4.2 ambiguity the paper's crash-handling
//! strategies all wrestle with.

use adhoc_sim::{FaultKind, FaultPlan, FaultRule};
use adhoc_storage::{Column, ColumnType, Database, DbError, EngineProfile, Schema, Value};

fn db_with_table() -> Database {
    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db
}

fn insert_row(db: &Database, id: i64) -> Result<(), DbError> {
    let mut txn = db.begin();
    txn.insert("t", &[("id", Value::Int(id)), ("v", Value::Int(1))])?;
    txn.commit()
}

#[test]
fn commit_failed_rolls_back_and_reports_connection_lost() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CommitFailed, &[0])],
    ));
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::ConnectionLost { .. }));
    assert_eq!(
        db.latest_committed("t", 1).unwrap(),
        None,
        "nothing became durable"
    );
    assert_eq!(db.stats().commits, 0);
    assert_eq!(db.stats().aborts, 1);
    // The engine rolled back cleanly, so re-submitting is safe.
    insert_row(&db, 1).unwrap();
    assert!(db.latest_committed("t", 1).unwrap().is_some());
}

#[test]
fn crash_after_durable_commits_but_reports_connection_lost() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    ));
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::ConnectionLost { .. }));
    assert!(
        db.latest_committed("t", 1).unwrap().is_some(),
        "the commit actually happened"
    );
    assert_eq!(db.stats().commits, 1);
    // Blind re-submission — what a naive retry-on-error wrapper would do —
    // now collides with the ghost of the acknowledged-but-unreported commit.
    let err = insert_row(&db, 1).unwrap_err();
    assert!(matches!(err, DbError::UniqueViolation { .. }));
}

#[test]
fn connection_lost_is_not_blindly_retried_by_the_dbt_wrapper() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(
        1,
        vec![FaultRule::at_ops(FaultKind::CrashAfterDurable, &[0])],
    ));
    // run_with_retries only retries honest transient errors; an ambiguous
    // ConnectionLost is surfaced to the caller on the first attempt.
    let result = db.run_with_retries(db.default_isolation(), 5, |txn| {
        txn.insert("t", &[("id", Value::Int(9)), ("v", Value::Int(1))])
    });
    assert!(matches!(result, Err(DbError::ConnectionLost { .. })));
    assert_eq!(db.stats().commits, 1, "exactly one (unacknowledged) commit");
}

#[test]
fn fault_free_plan_changes_nothing() {
    let db = db_with_table();
    db.inject_faults(FaultPlan::new(1, vec![]));
    insert_row(&db, 1).unwrap();
    assert_eq!(db.stats().commits, 1);
}
