//! The soak and monitor races, re-derived deterministically.
//!
//! `tests/soak.rs` used to be the only coverage for several interleaving
//! invariants — wall-clock luck across six threads. Each of those checks
//! is now a closed scenario in `tests/common/mod.rs`, searched here
//! exhaustively-within-budget by the interleaving explorer, with the buggy
//! siblings pinned to the exact schedules that break them. The soak
//! survives only as a short cross-application smoke test.

mod common;

use adhoc_transactions::sim::sched::{replay, Explorer};
use common::{Expect, SEED};

const BUDGET: usize = 128;

/// The invariants the soak's random traffic exercised, one closed scenario
/// each: coordinated checkout, cart totals, OCC votes, SETNX dedupe,
/// grant upserts, timeline denormalization, rotation auditing.
const SOAK_DERIVED: &[&str] = &[
    "fig1-locked",
    "cart-total-locked",
    "vote-occ",
    "notify-once-dedupe",
    "grant-idempotent",
    "timeline-consistent",
    "rotation-audit",
];

/// Every soak-derived invariant holds on *every* schedule within budget —
/// search, not luck.
#[test]
fn soak_invariants_hold_under_schedule_search() {
    for name in SOAK_DERIVED {
        let (expect, scenario) = common::lookup(name).unwrap();
        assert_eq!(expect, Expect::Pass, "{name} must be a corrected scenario");
        let result = Explorer::new(SEED).budget(BUDGET).explore(scenario);
        assert!(result.passed(), "{name}: {result:?}");
    }
}

/// The buggy siblings the soak could only catch by luck, pinned inline to
/// the exact schedules that break them (self-contained copies of the
/// `tests/schedules/` corpus entries).
#[test]
fn pinned_soak_race_witnesses_still_reproduce() {
    let pins: &[(&str, &str, &str)] = &[
        (
            "fig1-lost-update",
            "v1:t2:0x6.1x3.0.1x4",
            "Figure 1 lost update: 2 checkouts succeeded but sold=1",
        ),
        (
            "notify-unchecked-duplicates",
            "v1:t2:0x7.1x8.0",
            "duplicate notification delivered",
        ),
    ];
    for (name, sched, msg) in pins {
        let (_, scenario) = common::lookup(name).unwrap();
        assert_eq!(
            replay(sched, scenario),
            Err(msg.to_string()),
            "{name}: SCHED={sched} must replay the pinned failure"
        );
    }
}

/// The §6 monitor's verdicts are schedule-independent: the explorer hunts
/// for an interleaving where the Discourse lock-after-read hazard slips
/// past (or where the corrected flow is falsely flagged) and finds none.
#[test]
fn monitor_verdicts_are_schedule_independent() {
    for name in [
        "monitor-catches-lock-after-read",
        "monitor-quiet-on-correct-flow",
    ] {
        let (_, scenario) = common::lookup(name).unwrap();
        let result = Explorer::new(SEED).budget(BUDGET).explore(scenario);
        assert!(result.passed(), "{name}: {result:?}");
    }
}
