//! Reproducible randomness.
//!
//! Experiments take an explicit seed so that a reported run can be replayed
//! bit-for-bit; helpers here centralize construction so every crate derives
//! per-thread streams the same way.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-wide default seed used by examples and the harness when the
/// user does not supply one.
pub const DEFAULT_SEED: u64 = 0x5157_4d0d_2022_0612;

/// A seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A per-worker stream derived from a base seed.
///
/// SplitMix-style mixing keeps adjacent worker ids from producing correlated
/// streams, which matters when workers pick contended keys.
pub fn for_worker(base_seed: u64, worker: u64) -> StdRng {
    let mut z = base_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(worker.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = seeded(7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = seeded(7)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_workers_get_different_streams() {
        let a: u64 = for_worker(1, 0).gen();
        let b: u64 = for_worker(1, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn worker_streams_are_stable_across_calls() {
        let a: u64 = for_worker(42, 3).gen();
        let b: u64 = for_worker(42, 3).gen();
        assert_eq!(a, b);
    }
}
