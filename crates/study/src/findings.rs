//! Findings 1–8, computed from the corpus.
//!
//! Each function returns the statistic the corresponding numbered finding
//! quotes; the tests pin them to the paper's published values, so the
//! corpus reconstruction cannot drift from the paper.

use crate::case::App;
use crate::corpus_data::CASES;
use adhoc_core::taxonomy::{CcAlgorithm, FailureHandling, IssueCategory, LockImpl, ValidationImpl};
use std::collections::BTreeSet;

/// Finding 1: every application uses ad hoc transactions; 71/91 critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding1 {
    /// Applications with at least one case (all eight).
    pub apps_with_cases: usize,
    /// Total cases in the corpus (91).
    pub total_cases: usize,
    /// Cases in core APIs (71).
    pub critical_cases: usize,
}

/// Compute Finding 1 from the corpus.
pub fn finding1() -> Finding1 {
    let apps: BTreeSet<App> = CASES.iter().map(|c| c.app).collect();
    Finding1 {
        apps_with_cases: apps.len(),
        total_cases: CASES.len(),
        critical_cases: CASES.iter().filter(|c| c.critical).count(),
    }
}

/// Finding 2: what ad hoc transactions coordinate (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding2 {
    /// Cases coordinating only part of their scope (22).
    pub partial_coordination: usize,
    /// Cases spanning multiple HTTP requests (10).
    pub multi_request: usize,
    /// Cases coordinating non-database operations (8).
    pub non_db_operations: usize,
}

/// Compute Finding 2 from the corpus.
pub fn finding2() -> Finding2 {
    Finding2 {
        partial_coordination: CASES.iter().filter(|c| c.partial_coordination).count(),
        multi_request: CASES.iter().filter(|c| c.multi_request).count(),
        non_db_operations: CASES.iter().filter(|c| c.non_db_ops).count(),
    }
}

/// Finding 3: implementation diversity (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding3 {
    /// Distinct lock implementation labels (seven).
    pub lock_impls: BTreeSet<&'static str>,
    /// Distinct validation implementation labels (two).
    pub validation_impls: BTreeSet<&'static str>,
    /// Applications mixing more than one lock implementation.
    pub mixed_impl_apps: Vec<App>,
}

/// Compute Finding 3 from the corpus.
pub fn finding3() -> Finding3 {
    let lock_impls: BTreeSet<&'static str> = CASES
        .iter()
        .filter_map(|c| c.lock_impl)
        .map(LockImpl::label)
        .collect();
    let validation_impls: BTreeSet<&'static str> = CASES
        .iter()
        .filter_map(|c| c.validation_impl)
        .map(|v| match v {
            ValidationImpl::OrmAssisted => "ORM-assisted",
            ValidationImpl::HandCrafted => "hand-crafted",
        })
        .collect();
    let mixed_impl_apps = App::all()
        .into_iter()
        .filter(|app| {
            let impls: BTreeSet<LockImpl> = CASES
                .iter()
                .filter(|c| c.app == *app)
                .filter_map(|c| c.lock_impl)
                .collect();
            impls.len() > 1
        })
        .collect();
    Finding3 {
        lock_impls,
        validation_impls,
        mixed_impl_apps,
    }
}

/// Finding 4: coordination granularities (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding4 {
    /// Column- or predicate-based cases (14).
    pub fine_grained: usize,
    /// Single-lock-over-multiple-accesses cases (58).
    pub coarse_grained: usize,
    /// Cases with both coordination styles (9).
    pub both: usize,
    /// Associated-access exploiters (37).
    pub associated_access: usize,
    /// Read–modify–write exploiters (56).
    pub rmw: usize,
    /// Cases exploiting both patterns (35).
    pub rmw_and_aa: usize,
    /// Column-based coordination (5).
    pub column_based: usize,
    /// Predicate-based coordination (10).
    pub predicate_based: usize,
    /// Cases with both fine granularities (1).
    pub column_and_predicate: usize,
}

/// Compute Finding 4 from the corpus.
pub fn finding4() -> Finding4 {
    Finding4 {
        fine_grained: CASES.iter().filter(|c| c.fine_grained()).count(),
        coarse_grained: CASES.iter().filter(|c| c.coarse_grained()).count(),
        both: CASES
            .iter()
            .filter(|c| c.fine_grained() && c.coarse_grained())
            .count(),
        associated_access: CASES.iter().filter(|c| c.associated_access).count(),
        rmw: CASES.iter().filter(|c| c.rmw).count(),
        rmw_and_aa: CASES
            .iter()
            .filter(|c| c.rmw && c.associated_access)
            .count(),
        column_based: CASES.iter().filter(|c| c.column_based).count(),
        predicate_based: CASES.iter().filter(|c| c.predicate_based).count(),
        column_and_predicate: CASES
            .iter()
            .filter(|c| c.column_based && c.predicate_based)
            .count(),
    }
}

/// Finding 5: failure handling (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding5 {
    /// Pessimistic cases using one lock (52).
    pub pessimistic_single_lock: usize,
    /// Pessimistic cases acquiring multiple locks in order (13).
    pub pessimistic_ordered_locks: usize,
    /// Optimistic cases returning an error on conflict (19).
    pub optimistic_error_return: usize,
    /// Optimistic cases rolling back via a database transaction (1).
    pub optimistic_dbt_rollback: usize,
    /// Optimistic cases with hand-written rollback (2).
    pub optimistic_manual_rollback: usize,
    /// Optimistic cases repairing and rolling forward (4).
    pub optimistic_repair: usize,
}

/// Compute Finding 5 from the corpus.
pub fn finding5() -> Finding5 {
    let pess = |single: bool| {
        CASES
            .iter()
            .filter(|c| c.cc == CcAlgorithm::Pessimistic && c.single_lock == single)
            .count()
    };
    let opt = |f: FailureHandling| {
        CASES
            .iter()
            .filter(|c| c.failure_handling == Some(f))
            .count()
    };
    Finding5 {
        pessimistic_single_lock: pess(true),
        pessimistic_ordered_locks: pess(false),
        optimistic_error_return: opt(FailureHandling::ErrorReturn),
        optimistic_dbt_rollback: opt(FailureHandling::DbtRollback),
        optimistic_manual_rollback: opt(FailureHandling::ManualRollback),
        optimistic_repair: opt(FailureHandling::Repair),
    }
}

/// Finding 6: incorrect primitives (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding6 {
    /// All pessimistic cases (65).
    pub pessimistic_total: usize,
    /// Pessimistic cases with lock-primitive issues (36).
    pub pessimistic_with_lock_issues: usize,
    /// All optimistic cases (26).
    pub optimistic_total: usize,
    /// Optimistic cases lacking validate-and-commit atomicity (11).
    pub optimistic_non_atomic: usize,
}

/// Compute Finding 6 from the corpus.
pub fn finding6() -> Finding6 {
    Finding6 {
        pessimistic_total: CASES
            .iter()
            .filter(|c| c.cc == CcAlgorithm::Pessimistic)
            .count(),
        pessimistic_with_lock_issues: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::IncorrectLockPrimitive))
            .count(),
        optimistic_total: CASES
            .iter()
            .filter(|c| c.cc == CcAlgorithm::Optimistic)
            .count(),
        optimistic_non_atomic: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::NonAtomicValidateCommit))
            .count(),
    }
}

/// Finding 7: incorrect coordination scope (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding7 {
    /// Cases omitting critical operations from the scope (11).
    pub omitted_operations: usize,
    /// Business procedures with no ad hoc transaction at all (5).
    pub forgotten_transactions: usize,
}

/// Compute Finding 7 from the corpus.
pub fn finding7() -> Finding7 {
    Finding7 {
        omitted_operations: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::OmittedCriticalOperations))
            .count(),
        forgotten_transactions: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::ForgottenTransaction))
            .count(),
    }
}

/// Finding 8: incorrect failure handling (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding8 {
    /// Incomplete transaction repair (1).
    pub incomplete_repair: usize,
    /// Intermediate states left un-rolled-back after crashes (3).
    pub no_rollback_after_crash: usize,
}

/// Compute Finding 8 from the corpus.
pub fn finding8() -> Finding8 {
    Finding8 {
        incomplete_repair: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::IncompleteRepair))
            .count(),
        no_rollback_after_crash: CASES
            .iter()
            .filter(|c| c.issues.contains(&IssueCategory::NoRollbackAfterCrash))
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding1_matches_paper() {
        let f = finding1();
        assert_eq!(f.apps_with_cases, 8, "every studied application");
        assert_eq!(f.total_cases, 91);
        assert_eq!(f.critical_cases, 71);
    }

    #[test]
    fn finding2_matches_paper() {
        let f = finding2();
        assert_eq!(f.partial_coordination, 22);
        assert_eq!(f.multi_request, 10);
        assert_eq!(f.non_db_operations, 8);
    }

    #[test]
    fn finding3_matches_paper() {
        let f = finding3();
        assert_eq!(f.lock_impls.len(), 7, "7 different lock implementations");
        assert_eq!(f.validation_impls.len(), 2, "2 validation implementations");
        assert_eq!(
            f.mixed_impl_apps,
            vec![App::Broadleaf],
            "except for Broadleaf, apps use one implementation"
        );
    }

    #[test]
    fn finding4_matches_paper() {
        let f = finding4();
        assert_eq!(f.fine_grained, 14);
        assert_eq!(f.coarse_grained, 58);
        assert_eq!(f.both, 9);
        assert_eq!(
            f.associated_access, 37,
            "about 37 leverage associated access"
        );
        assert_eq!(f.rmw, 56, "56 leverage the RMW pattern");
        assert_eq!(f.rmw_and_aa, 35, "35 utilize both");
        assert_eq!(f.column_based, 5);
        assert_eq!(f.predicate_based, 10);
        assert_eq!(f.column_and_predicate, 1);
    }

    #[test]
    fn finding5_matches_paper() {
        let f = finding5();
        assert_eq!(f.pessimistic_single_lock, 52);
        assert_eq!(f.pessimistic_ordered_locks, 13);
        assert_eq!(f.optimistic_error_return, 19);
        assert_eq!(f.optimistic_dbt_rollback, 1);
        assert_eq!(f.optimistic_manual_rollback, 2);
        assert_eq!(f.optimistic_repair, 4);
    }

    #[test]
    fn finding6_matches_paper() {
        let f = finding6();
        assert_eq!(f.pessimistic_with_lock_issues, 36);
        assert_eq!(f.pessimistic_total, 65);
        assert_eq!(f.optimistic_non_atomic, 11);
        assert_eq!(f.optimistic_total, 26);
    }

    #[test]
    fn finding7_matches_paper() {
        let f = finding7();
        assert_eq!(f.omitted_operations, 11);
        assert_eq!(f.forgotten_transactions, 5);
        assert_eq!(f.omitted_operations + f.forgotten_transactions, 16);
    }

    #[test]
    fn finding8_matches_paper() {
        let f = finding8();
        assert_eq!(f.incomplete_repair, 1);
        assert_eq!(f.no_rollback_after_crash, 3);
    }

    /// Structural sanity: lock issues only on pessimistic cases, atomicity
    /// issues only on optimistic ones, lock/validation impls present iff
    /// the CC algorithm calls for them, and failure handling declared for
    /// every optimistic case.
    #[test]
    fn corpus_is_internally_consistent() {
        for c in CASES {
            match c.cc {
                CcAlgorithm::Pessimistic => {
                    assert!(c.lock_impl.is_some(), "{}", c.id);
                    assert!(c.validation_impl.is_none(), "{}", c.id);
                    assert!(c.failure_handling.is_none(), "{}", c.id);
                    assert!(
                        !c.issues.contains(&IssueCategory::NonAtomicValidateCommit),
                        "{}",
                        c.id
                    );
                }
                CcAlgorithm::Optimistic => {
                    assert!(c.lock_impl.is_none(), "{}", c.id);
                    assert!(c.validation_impl.is_some(), "{}", c.id);
                    assert!(c.failure_handling.is_some(), "{}", c.id);
                    assert!(!c.single_lock, "{}: single_lock is pessimistic-only", c.id);
                    assert!(
                        !c.issues.contains(&IssueCategory::IncorrectLockPrimitive),
                        "{}",
                        c.id
                    );
                }
            }
            if c.severe_consequence.is_some() {
                assert!(c.is_buggy(), "{}: severe but not buggy", c.id);
            }
            // ORM-assisted validation guarantees atomicity (§4.1.2).
            if c.validation_impl == Some(ValidationImpl::OrmAssisted) {
                assert!(
                    !c.issues.contains(&IssueCategory::NonAtomicValidateCommit),
                    "{}: ORM-assisted cases cannot be non-atomic",
                    c.id
                );
            }
        }
    }

    /// §3.2.2: 10 ORM-assisted vs 16 hand-crafted validation procedures,
    /// and all 11 non-atomic cases are hand-crafted.
    #[test]
    fn validation_impl_split_matches_paper() {
        let orm = CASES
            .iter()
            .filter(|c| c.validation_impl == Some(ValidationImpl::OrmAssisted))
            .count();
        let hand = CASES
            .iter()
            .filter(|c| c.validation_impl == Some(ValidationImpl::HandCrafted))
            .count();
        assert_eq!((orm, hand), (10, 16));
    }
}
