//! The queueing front door over the eight studied applications.
//!
//! A request's life: **arrival** (`offer`) — rate limiter, read-only
//! degradation, queue-depth cap; then **service** (`run_tick`) — deadline
//! shedding, session pool, per-app bounded in-flight admission, the
//! handler itself with budgeted retries. The [`StackConfig`] presets
//! (`naive` / `breaker_only` / `full`) are the ablation arms the traffic
//! bench sweeps: the same applications, the same arrival stream, only the
//! front-door discipline differs.

use crate::endpoint::{Endpoint, Request};
use crate::limiter::{FixedWindowLimiter, RateLimiter, TokenBucketLimiter};
use crate::pool::SessionPool;
use crate::ServiceError;
use adhoc_apps::admission::Admission;
use adhoc_apps::Mode;
use adhoc_apps::{broadleaf, discourse, jumpserver, mastodon, redmine, saleor, scm_suite, spree};
use adhoc_core::locks::{KvSetNxLock, MemLock};
use adhoc_core::resilience::Rejected;
use adhoc_kv::{Client, Store};
use adhoc_sim::{LatencyModel, RetryBudget, SharedClock, Transport};
use adhoc_storage::{Database, EngineProfile};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which per-client rate limiter guards arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimiterKind {
    /// No limiter at all.
    None,
    /// The racy fixed-window KV counter (catalog case).
    FixedWindow,
    /// The token bucket (cure).
    TokenBucket,
}

/// Front-door discipline for one service instance.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Ablation arm name (`"naive"`, `"breaker_only"`, `"full"`).
    pub name: &'static str,
    /// Arrival-queue depth cap; `None` queues without bound.
    pub queue_cap: Option<usize>,
    /// Shed a queued request once it has waited this long (deadline-aware
    /// shedding); `None` serves arbitrarily stale work.
    pub patience: Option<Duration>,
    /// Per-client rate limiter at arrival.
    pub limiter: LimiterKind,
    /// Requests each client may pass per second (fixed-window limit per
    /// 1 s window, or token-bucket sustained rate with 2x burst).
    pub client_rate_per_sec: u64,
    /// Attach a circuit breaker to the pooled service transport.
    pub breaker: bool,
    /// Per-app bounded in-flight admission; `None` admits without bound.
    pub door_capacity: Option<usize>,
    /// Fund handler retries from a shared [`RetryBudget`] instead of
    /// retrying unconditionally.
    pub retry_budget: bool,
    /// Session-pool size (bounded even in the naive arm — a connection
    /// pool is table stakes, the question is what happens behind it).
    pub pool_size: usize,
}

impl StackConfig {
    /// Everything a hurried web tier ships first: a generous racy
    /// fixed-window limiter, an unbounded queue, no shedding, no breaker,
    /// unconditional retries.
    pub fn naive() -> Self {
        Self {
            name: "naive",
            queue_cap: None,
            patience: None,
            limiter: LimiterKind::FixedWindow,
            client_rate_per_sec: 1000,
            breaker: false,
            door_capacity: None,
            retry_budget: false,
            pool_size: 64,
        }
    }

    /// The naive stack plus a circuit breaker — the common first reaction
    /// to an outage postmortem. Breakers guard against a *failing*
    /// backend; they do nothing about a healthy backend drowning in
    /// queued work, which is the point this arm makes.
    pub fn breaker_only() -> Self {
        Self {
            name: "breaker_only",
            breaker: true,
            ..Self::naive()
        }
    }

    /// The full front door: token-bucket limiting, a bounded queue,
    /// deadline-aware shedding, bounded per-app in-flight admission, a
    /// breaker, and budgeted retries.
    pub fn full() -> Self {
        Self {
            name: "full",
            queue_cap: Some(256),
            patience: Some(Duration::from_millis(100)),
            limiter: LimiterKind::TokenBucket,
            client_rate_per_sec: 200,
            breaker: true,
            door_capacity: Some(64),
            retry_budget: true,
            pool_size: 64,
        }
    }
}

/// Arrival/serve/refusal counters for one service instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests refused by the rate limiter.
    pub rate_limited: u64,
    /// Requests refused at the queue-depth cap.
    pub queue_full: u64,
    /// Writes refused in read-only degraded mode.
    pub read_only_refused: u64,
    /// Requests shed after waiting past patience.
    pub shed: u64,
    /// Requests served to a successful response.
    pub served: u64,
    /// Requests that failed in the backend after retries.
    pub failed: u64,
}

/// One finished request: when it completed and how.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request as it arrived.
    pub request: Request,
    /// Completion instant on the virtual-clock timeline.
    pub finished: Duration,
    /// `Ok` for a successful application response.
    pub outcome: Result<(), ServiceError>,
}

struct Apps {
    broadleaf: broadleaf::Broadleaf,
    discourse: discourse::Discourse,
    jumpserver: jumpserver::JumpServer,
    mastodon: mastodon::Mastodon,
    redmine: redmine::Redmine,
    saleor: saleor::Saleor,
    scm: scm_suite::ScmSuite,
    spree: spree::Spree,
    /// Post ids created at seed time (like targets).
    discourse_posts: Vec<i64>,
}

/// The service: eight applications behind one configurable front door.
pub struct Service {
    clock: SharedClock,
    config: StackConfig,
    apps: Apps,
    objects: u64,
    limiter: Option<Box<dyn RateLimiter>>,
    admission: Option<Admission>,
    pool: SessionPool,
    retry_budget: Option<RetryBudget>,
    queue: Mutex<VecDeque<Request>>,
    accepted: AtomicU64,
    queue_full: AtomicU64,
    read_only_refused: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
}

const SEED_STOCK: i64 = 1_000_000_000;
/// Handler retry attempts (beyond the first) when the backend errors.
const HANDLER_RETRIES: u32 = 2;

impl Service {
    /// Build a service over freshly seeded applications: `objects` rows
    /// per app, zero-latency substrates on `clock` (the tick loop owns
    /// time), the front door per `config`.
    pub fn new(clock: SharedClock, config: StackConfig, objects: u64) -> Self {
        assert!(objects > 0);
        let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let apps = Self::build_apps(&kv, objects);
        let limiter: Option<Box<dyn RateLimiter>> = match config.limiter {
            LimiterKind::None => None,
            LimiterKind::FixedWindow => Some(Box::new(FixedWindowLimiter::new(
                kv.clone(),
                config.client_rate_per_sec as i64,
                Duration::from_secs(1),
            ))),
            LimiterKind::TokenBucket => Some(Box::new(TokenBucketLimiter::new(
                clock.clone(),
                config.client_rate_per_sec,
                config.client_rate_per_sec * 2,
            ))),
        };
        let mut transport = Transport::service(clock.clone(), LatencyModel::zero());
        if config.breaker {
            transport = transport.with_breaker(Arc::new(adhoc_sim::CircuitBreaker::new(
                8,
                Duration::from_millis(500),
            )));
        }
        Self {
            clock,
            apps,
            objects,
            limiter,
            admission: config.door_capacity.map(Admission::new),
            pool: SessionPool::new(transport, config.pool_size),
            retry_budget: config.retry_budget.then(|| RetryBudget::new(64)),
            queue: Mutex::new(VecDeque::new()),
            config,
            accepted: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            read_only_refused: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    fn build_apps(kv: &Client, objects: u64) -> Apps {
        let broadleaf = broadleaf::Broadleaf::new(
            broadleaf::setup(&Database::in_memory(EngineProfile::MySqlLike)).unwrap(),
            Arc::new(MemLock::new()),
            Mode::AdHoc,
        );
        let discourse = discourse::Discourse::new(
            discourse::setup(&Database::in_memory(EngineProfile::PostgresLike)).unwrap(),
            Arc::new(MemLock::new()),
            Mode::AdHoc,
        );
        let jumpserver = jumpserver::JumpServer::new(
            jumpserver::setup(&Database::in_memory(EngineProfile::PostgresLike)).unwrap(),
            Arc::new(KvSetNxLock::new(kv.clone())),
            Mode::AdHoc,
        );
        let mastodon = mastodon::Mastodon::new(
            mastodon::setup(&Database::in_memory(EngineProfile::PostgresLike)).unwrap(),
            kv.clone(),
            Arc::new(KvSetNxLock::new(kv.clone())),
            Mode::AdHoc,
        );
        let redmine = redmine::Redmine::new(
            redmine::setup(&Database::in_memory(EngineProfile::PostgresLike)).unwrap(),
            Mode::AdHoc,
        );
        let saleor = saleor::Saleor::new(
            saleor::setup(&Database::in_memory(EngineProfile::PostgresLike)).unwrap(),
            Arc::new(MemLock::new()),
            Mode::AdHoc,
        );
        let scm = scm_suite::ScmSuite::new(
            scm_suite::setup(&Database::in_memory(EngineProfile::MySqlLike)).unwrap(),
            Arc::new(MemLock::new()),
            Mode::AdHoc,
        );
        let spree = spree::Spree::new(
            spree::setup(&Database::in_memory(EngineProfile::MySqlLike)).unwrap(),
            Arc::new(MemLock::new()),
            Mode::AdHoc,
        );
        discourse.seed_image(1, 1000).unwrap();
        let mut discourse_posts = Vec::with_capacity(objects as usize);
        for id in 1..=objects as i64 {
            broadleaf.seed_cart(id).unwrap();
            broadleaf.seed_sku(id, SEED_STOCK).unwrap();
            discourse.seed_topic(id).unwrap();
            discourse_posts.push(discourse.seed_post(id, "seed", 1).unwrap());
            jumpserver.seed_asset(id).unwrap();
            mastodon.seed_poll(id).unwrap();
            redmine.seed_issue(id, "traffic").unwrap();
            saleor.seed_stock(id, SEED_STOCK).unwrap();
            saleor.seed_allocation(id, id, 1).unwrap();
            scm.seed_account(id, SEED_STOCK).unwrap();
            spree.seed_catalog(id, id, &[1], SEED_STOCK).unwrap();
            spree.seed_order(id).unwrap();
        }
        Apps {
            broadleaf,
            discourse,
            jumpserver,
            mastodon,
            redmine,
            saleor,
            scm,
            spree,
            discourse_posts,
        }
    }

    /// The configuration this instance runs.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// The clock the instance lives on.
    pub fn clock(&self) -> SharedClock {
        self.clock.clone()
    }

    /// The session pool (exhaustion counters, round-trip totals).
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Flip every app's read-only degraded mode (no-op without per-app
    /// admission doors).
    pub fn degrade_writes(&self, degraded: bool) {
        if let Some(admission) = &self.admission {
            admission.degrade_writes(degraded);
        }
    }

    /// Requests queued right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// Requests the rate limiter refused so far.
    pub fn rate_limited(&self) -> u64 {
        self.limiter.as_ref().map_or(0, |l| l.limited())
    }

    /// Arrival/serve counters so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rate_limited: self.rate_limited(),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            read_only_refused: self.read_only_refused.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Arrival: run the edge checks and enqueue. `Err` means the request
    /// was refused *at the edge* — cheaply, before consuming any service
    /// capacity (that cheapness is what keeps the full stack standing
    /// past saturation).
    pub fn offer(&self, req: Request) -> Result<(), ServiceError> {
        if let Some(limiter) = &self.limiter {
            if !limiter.try_admit(req.client)? {
                return Err(ServiceError::RateLimited);
            }
        }
        if req.endpoint.workload() == adhoc_core::resilience::Workload::Write {
            if let Some(admission) = &self.admission {
                if admission.door(req.endpoint.app()).is_read_only() {
                    self.read_only_refused.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::ReadOnly);
                }
            }
        }
        let mut queue = self.queue.lock();
        if let Some(cap) = self.config.queue_cap {
            if queue.len() >= cap {
                self.queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::QueueFull);
            }
        }
        queue.push_back(req);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Service: drain the queue FIFO until `budget` capacity units are
    /// spent, completing each request at instant `finished`. Shedding a
    /// stale request costs no budget — that is the entire argument for
    /// deadline-aware shedding.
    pub fn run_tick(&self, finished: Duration, budget: u32) -> Vec<Completion> {
        let mut completions = Vec::new();
        let mut remaining = budget;
        loop {
            let req = {
                let mut queue = self.queue.lock();
                match queue.front() {
                    None => break,
                    Some(front) => {
                        let stale = self
                            .config
                            .patience
                            .is_some_and(|p| finished.saturating_sub(front.arrived) > p);
                        if !stale && front.endpoint.cost() > remaining {
                            break;
                        }
                        let req = queue.pop_front().expect("front checked");
                        if stale {
                            self.shed.fetch_add(1, Ordering::Relaxed);
                            completions.push(Completion {
                                request: req,
                                finished,
                                outcome: Err(ServiceError::Shed),
                            });
                            continue;
                        }
                        req
                    }
                }
            };
            remaining -= req.endpoint.cost();
            let outcome = self.serve(&req);
            match &outcome {
                Ok(()) => self.served.fetch_add(1, Ordering::Relaxed),
                Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
            };
            completions.push(Completion {
                request: req,
                finished,
                outcome,
            });
            if remaining == 0 {
                break;
            }
        }
        completions
    }

    /// Serve one request end to end: pool, wire, per-app admission,
    /// handler with (budgeted) retries.
    fn serve(&self, req: &Request) -> Result<(), ServiceError> {
        let Some(session) = self.pool.try_acquire() else {
            return Err(ServiceError::PoolExhausted);
        };
        session.transport().admit().map_err(|e| match e {
            adhoc_sim::TransportError::CircuitOpen => ServiceError::CircuitOpen,
            adhoc_sim::TransportError::DeadlineExceeded => ServiceError::Shed,
        })?;
        session.transport().pay();
        let _permit = match &self.admission {
            Some(admission) => Some(
                admission
                    .admit(req.endpoint.app(), req.endpoint.workload())
                    .map_err(|r| match r {
                        Rejected::ReadOnly => {
                            self.read_only_refused.fetch_add(1, Ordering::Relaxed);
                            ServiceError::ReadOnly
                        }
                        Rejected::Shed => ServiceError::Overloaded,
                    })?,
            ),
            None => None,
        };
        let mut attempt = 0;
        loop {
            match self.dispatch(req) {
                Ok(()) => {
                    session.transport().record_outcome(false);
                    if attempt > 0 {
                        if let Some(budget) = &self.retry_budget {
                            budget.deposit();
                        }
                    }
                    return Ok(());
                }
                Err(msg) => {
                    attempt += 1;
                    if attempt > HANDLER_RETRIES {
                        session.transport().record_outcome(true);
                        return Err(ServiceError::Backend(msg));
                    }
                    if let Some(budget) = &self.retry_budget {
                        if !budget.try_withdraw() {
                            session.transport().record_outcome(true);
                            return Err(ServiceError::Backend(msg));
                        }
                    }
                }
            }
        }
    }

    /// Run the handler for one request. Business refusals (out of stock,
    /// insufficient balance, duplicate payment) are successful responses;
    /// only backend errors surface as `Err`.
    fn dispatch(&self, req: &Request) -> Result<(), String> {
        let id = (req.key % self.objects) as i64 + 1;
        let apps = &self.apps;
        let r: adhoc_apps::Result<()> = match req.endpoint {
            Endpoint::BroadleafAddToCart => apps.broadleaf.add_to_cart(id, 100, 1),
            Endpoint::BroadleafCheckout => apps.broadleaf.check_out(id, 1).map(drop),
            Endpoint::DiscourseCreatePost => {
                apps.discourse.create_post(id, "traffic post").map(drop)
            }
            Endpoint::DiscourseLikePost => {
                let post = apps.discourse_posts[(req.key % self.objects) as usize];
                apps.discourse.like_post(post)
            }
            Endpoint::JumpserverGrant => {
                let user = (req.client % 997) as i64 + 1;
                apps.jumpserver.grant(user, id, (req.id % 3) as i64 + 1)
            }
            Endpoint::MastodonVote => {
                let choice = if req.id.is_multiple_of(2) {
                    mastodon::Choice::A
                } else {
                    mastodon::Choice::B
                };
                apps.mastodon.vote(id, choice)
            }
            Endpoint::MastodonTimeline => apps.mastodon.timeline(id).map(drop),
            Endpoint::RedmineAdvanceIssue => {
                apps.redmine.advance_issue(id, (req.client % 50) as i64, 1)
            }
            Endpoint::SaleorAllocate => apps.saleor.allocate(id).map(drop),
            Endpoint::ScmTransfer => {
                // Transfer to the next account, wrapping — distinct from
                // `id` whenever more than one account exists.
                let to = (req.key + 1) % self.objects + 1;
                if to as i64 == id {
                    Ok(())
                } else {
                    apps.scm.transfer(id, to as i64, 1).map(drop)
                }
            }
            Endpoint::SpreeDecrementStock => apps.spree.decrement_stock(id, id, 1).map(drop),
            Endpoint::SpreeAddPayment => apps.spree.add_payment(id).map(drop),
        };
        r.map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_sim::VirtualClock;

    fn request(id: u64, endpoint: Endpoint, arrived: Duration) -> Request {
        Request {
            id,
            client: id % 11,
            key: id,
            endpoint,
            arrived,
        }
    }

    #[test]
    fn serves_every_endpoint_successfully() {
        let clock = VirtualClock::shared();
        let svc = Service::new(clock, StackConfig::full(), 8);
        for (i, e) in Endpoint::ALL.into_iter().enumerate() {
            svc.offer(request(i as u64, e, Duration::ZERO)).unwrap();
        }
        let completions = svc.run_tick(Duration::from_millis(10), 1000);
        assert_eq!(completions.len(), Endpoint::ALL.len());
        for c in &completions {
            assert!(
                c.outcome.is_ok(),
                "{}: {:?}",
                c.request.endpoint.label(),
                c.outcome
            );
        }
        assert_eq!(svc.stats().served, Endpoint::ALL.len() as u64);
    }

    #[test]
    fn tick_budget_bounds_work_and_preserves_fifo() {
        let clock = VirtualClock::shared();
        let svc = Service::new(clock, StackConfig::naive(), 4);
        for i in 0..10 {
            svc.offer(request(i, Endpoint::DiscourseLikePost, Duration::ZERO))
                .unwrap();
        }
        // like costs 2 units: a budget of 6 serves exactly 3.
        let served = svc.run_tick(Duration::from_millis(10), 6);
        assert_eq!(served.len(), 3);
        assert_eq!(served[0].request.id, 0);
        assert_eq!(svc.queue_depth(), 7);
        let rest = svc.run_tick(Duration::from_millis(20), 1000);
        assert_eq!(rest.len(), 7);
        assert_eq!(rest[0].request.id, 3);
    }

    #[test]
    fn full_stack_sheds_stale_requests_without_spending_budget() {
        let clock = VirtualClock::shared();
        let svc = Service::new(clock, StackConfig::full(), 4);
        for i in 0..5 {
            svc.offer(request(i, Endpoint::MastodonTimeline, Duration::ZERO))
                .unwrap();
        }
        svc.offer(request(
            99,
            Endpoint::MastodonTimeline,
            Duration::from_millis(490),
        ))
        .unwrap();
        // At t=500ms the first five are 500ms old (past 100ms patience);
        // the last arrived 10ms ago and is served.
        let completions = svc.run_tick(Duration::from_millis(500), 1);
        let shed: Vec<u64> = completions
            .iter()
            .filter(|c| c.outcome == Err(ServiceError::Shed))
            .map(|c| c.request.id)
            .collect();
        assert_eq!(shed, vec![0, 1, 2, 3, 4]);
        assert_eq!(completions.last().unwrap().request.id, 99);
        assert!(completions.last().unwrap().outcome.is_ok());
        assert_eq!(svc.stats().shed, 5);
    }

    #[test]
    fn queue_cap_refuses_at_the_edge() {
        let clock = VirtualClock::shared();
        let mut cfg = StackConfig::full();
        cfg.queue_cap = Some(2);
        cfg.limiter = LimiterKind::None;
        let svc = Service::new(clock, cfg, 4);
        svc.offer(request(0, Endpoint::MastodonTimeline, Duration::ZERO))
            .unwrap();
        svc.offer(request(1, Endpoint::MastodonTimeline, Duration::ZERO))
            .unwrap();
        assert_eq!(
            svc.offer(request(2, Endpoint::MastodonTimeline, Duration::ZERO)),
            Err(ServiceError::QueueFull)
        );
        assert_eq!(svc.stats().queue_full, 1);
    }

    #[test]
    fn degraded_mode_refuses_writes_and_serves_reads() {
        let clock = VirtualClock::shared();
        let svc = Service::new(clock, StackConfig::full(), 4);
        svc.degrade_writes(true);
        assert_eq!(
            svc.offer(request(0, Endpoint::DiscourseLikePost, Duration::ZERO)),
            Err(ServiceError::ReadOnly)
        );
        svc.offer(request(1, Endpoint::MastodonTimeline, Duration::ZERO))
            .unwrap();
        let completions = svc.run_tick(Duration::from_millis(1), 100);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].outcome.is_ok());
        svc.degrade_writes(false);
        svc.offer(request(2, Endpoint::DiscourseLikePost, Duration::ZERO))
            .unwrap();
        assert_eq!(svc.stats().read_only_refused, 1);
    }

    #[test]
    fn naive_stack_never_sheds_or_caps() {
        let clock = VirtualClock::shared();
        let svc = Service::new(clock, StackConfig::naive(), 4);
        for i in 0..500 {
            svc.offer(request(i, Endpoint::MastodonTimeline, Duration::ZERO))
                .unwrap();
        }
        assert_eq!(svc.queue_depth(), 500, "no cap, no refusals");
        // Hours later, the naive stack still dutifully serves stale work.
        let completions = svc.run_tick(Duration::from_secs(3600), 10);
        assert!(completions.iter().all(|c| c.outcome.is_ok()));
        assert_eq!(svc.stats().shed, 0);
    }
}
