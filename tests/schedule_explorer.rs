//! The deterministic interleaving explorer driven end-to-end: every
//! flagship race from the paper is *found by schedule search* within a
//! fixed budget, its `SCHED=` witness replays the exact failure, and the
//! corrected implementation survives the same budget.
//!
//! This replaces luck (wall-clock stress) with search: the explorer owns
//! the interleaving, so a failure here is a one-line witness any test can
//! pin — see `tests/schedules/` for the pinned corpus.

mod common;

use adhoc_transactions::sim::sched::{replay, CounterExample, Explorer};
use common::{Expect, SEED};

/// The fixed search budget every flagship race must fall within. The CI
/// smoke gate (`tools/ci.sh`) runs this same budget.
const BUDGET: usize = 128;

fn explore(scenario: common::Scenario) -> Option<CounterExample> {
    Explorer::new(SEED)
        .budget(BUDGET)
        .explore(scenario)
        .counter_example()
}

/// A buggy scenario must (1) fail within budget, (2) replay its witness to
/// the same failure, (3) produce the identical witness when re-explored
/// with the same seed.
fn assert_found_and_replayable(name: &str, scenario: common::Scenario) -> CounterExample {
    let cx = explore(scenario)
        .unwrap_or_else(|| panic!("{name}: the race must be found within {BUDGET} schedules"));
    // The witness replays the exact failure, from scratch.
    let replayed = replay(&cx.witness, scenario);
    assert_eq!(
        replayed,
        Err(cx.message.clone()),
        "{name}: SCHED={} must replay the exact failure",
        cx.witness
    );
    // Same seed ⇒ same trace: exploration is a pure function of its seed.
    let again = explore(scenario).unwrap_or_else(|| panic!("{name}: second exploration lost it"));
    assert_eq!(cx, again, "{name}: same seed must yield the same witness");
    cx
}

#[test]
fn explorer_finds_figure1_lost_update() {
    let cx = assert_found_and_replayable("fig1-lost-update", common::fig1_lost_update);
    assert!(
        cx.message.contains("lost update"),
        "unexpected failure: {}",
        cx.message
    );
}

#[test]
fn explorer_finds_ambiguous_setnx_double_grant() {
    let cx = assert_found_and_replayable("setnx-double-grant", common::setnx_double_grant);
    assert!(
        cx.message.contains("double grant"),
        "unexpected failure: {}",
        cx.message
    );
}

#[test]
fn explorer_finds_ttl_expiry_lock_steal() {
    let cx = assert_found_and_replayable(
        "ttl-steal-unchecked-unlock",
        common::ttl_steal_unchecked_unlock,
    );
    assert!(
        cx.message.contains("TTL steal"),
        "unexpected failure: {}",
        cx.message
    );
}

#[test]
fn explorer_finds_validation_scope_gap() {
    let cx = assert_found_and_replayable("validation-scope-gap", common::validation_scope_gap);
    assert!(
        cx.message.contains("validation-scope gap"),
        "unexpected failure: {}",
        cx.message
    );
}

#[test]
fn explorer_finds_unchecked_notification_duplicates() {
    assert_found_and_replayable(
        "notify-unchecked-duplicates",
        common::notify_unchecked_duplicates,
    );
}

/// Every corrected implementation survives the budget that breaks its
/// buggy sibling — exhaustive-within-bound evidence the fix is schedule-
/// independent, not just lucky.
#[test]
fn corrected_variants_survive_the_same_budget() {
    for (name, expect, scenario) in common::SCENARIOS {
        if *expect != Expect::Pass {
            continue;
        }
        let result = Explorer::new(SEED).budget(BUDGET).explore(*scenario);
        assert!(
            result.passed(),
            "{name}: corrected variant failed under exploration: {result:?}"
        );
    }
}

/// Deep sweep for latent races in the corrected implementations: ~16× the
/// CI budget across several base seeds. Run explicitly with
/// `cargo test --test schedule_explorer -- --ignored`.
#[test]
#[ignore = "deep schedule sweep; minutes of runtime"]
fn deep_sweep_of_corrected_variants() {
    for (name, expect, scenario) in common::SCENARIOS {
        if *expect != Expect::Pass {
            continue;
        }
        for round in 0..4u64 {
            let result = Explorer::new(SEED ^ round)
                .budget(BUDGET * 4)
                .explore(*scenario);
            assert!(
                result.passed(),
                "{name} (seed round {round}): latent race found: {result:?}"
            );
        }
    }
}
