//! The shard map: hash-partitioning of row state and the conflict-footprint
//! types threaded through the stack.
//!
//! The engine partitions all row state (version chains and per-shard commit
//! logs) into [`SHARD_COUNT`] shards by a hash of `(table, primary key)`.
//! A committing transaction locks only the shards its read/write sets
//! touch — always in ascending shard-index order, so shard acquisition is
//! deadlock-free — validates against those shards' commit logs, and
//! installs its versions per shard. Transactions with disjoint footprints
//! therefore never serialize on engine-global state (the
//! coordination-avoidance shape of Bailis et al.): only truly conflicting
//! work coordinates.
//!
//! [`ShardSet`] is a 64-bit bitset over shard indices; [`Footprint`] pairs
//! the read- and write-shard sets of one transaction and is exposed all the
//! way up through the ORM and the application layer so callers can reason
//! about (and measure) who actually contends.

/// Number of row-state shards. Fixed at 64 so a [`ShardSet`] is one `u64`.
pub const SHARD_COUNT: usize = 64;

/// The shard holding row `(table, id)`. Deterministic across runs (no
/// random hasher state): replayed schedules always see the same layout.
pub fn shard_of(table: usize, id: i64) -> usize {
    let mut h = (table as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= (id as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= h >> 29;
    (h % SHARD_COUNT as u64) as usize
}

/// A set of shard indices, packed into one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ShardSet(u64);

impl ShardSet {
    /// The empty set.
    pub const fn empty() -> Self {
        ShardSet(0)
    }

    /// Every shard (used when a footprint cannot be localized, e.g. a
    /// predicate range that any insert anywhere could move into).
    pub const fn all() -> Self {
        ShardSet(u64::MAX)
    }

    /// Add a shard index.
    pub fn insert(&mut self, shard: usize) {
        debug_assert!(shard < SHARD_COUNT);
        self.0 |= 1 << shard;
    }

    /// Membership test.
    pub fn contains(self, shard: usize) -> bool {
        self.0 & (1 << shard) != 0
    }

    /// True when no shard is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of shards in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub fn union(self, other: ShardSet) -> ShardSet {
        ShardSet(self.0 | other.0)
    }

    /// True when the two sets share no shard.
    pub fn is_disjoint(self, other: ShardSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Shard indices in ascending order — the lock-acquisition order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..SHARD_COUNT).filter(move |s| self.contains(*s))
    }
}

impl FromIterator<usize> for ShardSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = ShardSet::empty();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

/// The conflict footprint of a transaction: which shards its reads and
/// writes touch. Two transactions can only conflict when their footprints
/// intersect — `a.writes ∩ (b.reads ∪ b.writes) ≠ ∅` or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Shards of rows/ranges the transaction read (tracked where the
    /// isolation level certifies reads; empty otherwise).
    pub reads: ShardSet,
    /// Shards of rows the transaction has buffered writes for.
    pub writes: ShardSet,
}

impl Footprint {
    /// All shards the footprint touches.
    pub fn touched(&self) -> ShardSet {
        self.reads.union(self.writes)
    }

    /// True when this footprint cannot conflict with `other`: neither
    /// transaction writes a shard the other touches.
    pub fn is_disjoint(&self, other: &Footprint) -> bool {
        self.writes.is_disjoint(other.touched()) && other.writes.is_disjoint(self.touched())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for table in 0..4usize {
            for id in -100i64..100 {
                let s = shard_of(table, id);
                assert!(s < SHARD_COUNT);
                assert_eq!(s, shard_of(table, id));
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_ids() {
        let shards: std::collections::HashSet<usize> =
            (0..64i64).map(|id| shard_of(0, id)).collect();
        // Sequential primary keys must not all land in a few shards.
        assert!(shards.len() > 16, "only {} distinct shards", shards.len());
    }

    #[test]
    fn shard_set_ops() {
        let mut a = ShardSet::empty();
        assert!(a.is_empty());
        a.insert(3);
        a.insert(63);
        assert!(a.contains(3) && a.contains(63) && !a.contains(4));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 63]);
        let b: ShardSet = [4usize, 63].into_iter().collect();
        assert!(!a.is_disjoint(b));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(ShardSet::all().len(), SHARD_COUNT);
    }

    #[test]
    fn footprint_disjointness() {
        let w = |s: &[usize]| Footprint {
            reads: ShardSet::empty(),
            writes: s.iter().copied().collect(),
        };
        assert!(w(&[1]).is_disjoint(&w(&[2])));
        assert!(!w(&[1]).is_disjoint(&w(&[1, 2])));
        let reader = Footprint {
            reads: [1usize].into_iter().collect(),
            writes: ShardSet::empty(),
        };
        // Reader vs writer on the same shard conflicts; two readers don't.
        assert!(!reader.is_disjoint(&w(&[1])));
        assert!(reader.is_disjoint(&reader));
    }
}
