//! The metastability oracle: a partition storm hits a closed-loop
//! workload, the storm clears, and the hardened stack must return to
//! baseline throughput within a bounded number of virtual-clock ticks —
//! while the naive ablation (no deadlines, no breaker, no admission
//! control, eager retries) stays depressed long after the fault is gone.
//!
//! The mechanism being reproduced is the classic metastable failure:
//! during the outage the naive system queues every request and amplifies
//! each with retries; after the outage the backlog is so deep that every
//! request it completes already missed its client's patience window, so
//! the work is wasted, the client has already resubmitted, and goodput
//! pins near zero on a perfectly healthy backend. The hardened stack
//! breaks every link of that loop: per-app front doors bound the queue,
//! deadlines drop stale work for free, the circuit breaker turns outage
//! traffic into instant local rejections, a retry budget bounds the
//! amplification, and read-only degraded mode keeps reads flowing off
//! the replica while writes shed.
//!
//! Everything runs single-threaded on a [`VirtualClock`] with a seeded
//! windowed [`FaultPlan`], so both worlds replay bit-for-bit.

use adhoc_transactions::apps::admission::{Admission, APPS};
use adhoc_transactions::core::resilience::{
    BreakerState, CircuitBreaker, Deadline, Permit, RetryBudget, Workload,
};
use adhoc_transactions::kv::{Client, KvError, Store};
use adhoc_transactions::sim::{Clock, FaultKind, FaultPlan, FaultRule, LatencyModel, VirtualClock};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5157_4d0d_2022_0612;
/// One scheduling tick of the closed loop.
const TICK: Duration = Duration::from_millis(10);
/// Total simulated ticks.
const TICKS: u64 = 200;
/// Requests arriving per tick (round-robin over the eight apps; every
/// fourth is a read).
const ARRIVALS: u64 = 4;
/// KV round trips the backend can serve per tick.
const CAPACITY: u64 = 16;
/// Client patience, in ticks: a response later than this is useless to
/// the caller (and the caller has already resubmitted).
const PATIENCE: u64 = 4;
/// The partition storm occupies ticks [STORM_START, STORM_END).
const STORM_START: u64 = 60;
const STORM_END: u64 = 90;
/// Naive ablation: in-place attempts per request before requeueing.
const NAIVE_ATTEMPTS: u32 = 4;
/// Per-app front-door concurrency bound (hardened world only).
const DOOR_CAPACITY: usize = 3;
/// Ticks after the storm by which the hardened world must be back to
/// >= 90% of baseline goodput.
const RECOVERY_TICKS: u64 = 10;

/// Virtual-clock instant of tick `n`.
fn at_tick(n: u64) -> Duration {
    TICK * u32::try_from(n).expect("tick fits u32")
}

struct Req {
    id: u64,
    app: usize,
    born: u64,
    read: bool,
    /// The impatient client already resubmitted a fresh copy.
    respawned: bool,
    deadline: Option<Deadline>,
    /// Front-door slot, held (never read) while queued and in flight;
    /// dropping it releases the slot.
    _permit: Option<Permit>,
}

#[derive(Debug, Default)]
struct Metrics {
    /// Requests completed within patience, per tick.
    goodput: Vec<u64>,
    /// Reads served from the replica while degraded, during the storm.
    storm_replica_reads: u64,
    /// Completions that arrived after the client gave up.
    wasted: u64,
    /// Queue depth when the run ended.
    end_queue: usize,
    /// Front-door sheds plus deadline drops (hardened only).
    shed: u64,
    /// Degraded-mode write refusals (hardened only).
    refused_writes: u64,
    times_opened: u64,
    /// Writes acknowledged to clients (all re-verified durable).
    acked: u64,
}

fn avg(window: &[u64]) -> f64 {
    window.iter().sum::<u64>() as f64 / window.len() as f64
}

/// Drive one world for [`TICKS`] ticks and return its metrics. The two
/// worlds share every constant and the fault seed; `hardened` toggles
/// the entire resilience layer at once (the same ablation the bench
/// sweep reports in `BENCH_resilience.json`).
fn run_world(hardened: bool) -> Metrics {
    let clock = Arc::new(VirtualClock::new());
    let storm = FaultRule::storm(
        &[FaultKind::PartitionInbound],
        1.0,
        at_tick(STORM_START),
        at_tick(STORM_END),
    );
    let plan = FaultPlan::new(SEED, storm);
    let breaker = Arc::new(CircuitBreaker::new(4, 2 * TICK));
    let budget = Arc::new(RetryBudget::new(4));
    let mut base = Client::new(Store::new(), clock.clone(), LatencyModel::zero()).with_faults(plan);
    if hardened {
        base = base.with_breaker(Arc::clone(&breaker));
    }
    let admission = Admission::new(DOOR_CAPACITY);

    let mut queue: VecDeque<Req> = VecDeque::new();
    let mut next_id: u64 = 0;
    let mut metrics = Metrics::default();
    let mut acked_keys: Vec<String> = Vec::new();
    // Fencing-token floors per app lease: every grant must dominate the
    // previous one ("no double-granted fenced lease").
    let mut last_token = vec![0u64; APPS.len()];

    for tick in 0..TICKS {
        // The clock is the only source of time: storm windows, TTLs,
        // deadlines, and breaker cooldowns all read it.
        assert_eq!(clock.now(), at_tick(tick));
        let storming = (STORM_START..STORM_END).contains(&tick);

        // Degraded mode follows the breaker: while Open, writes shed at
        // the door and reads come off the replica. Half-open un-degrades
        // so the probe write can go through.
        let degraded = hardened && matches!(breaker.state(clock.now()), BreakerState::Open);
        admission.degrade_writes(degraded);

        // Arrivals.
        for _ in 0..ARRIVALS {
            let id = next_id;
            next_id += 1;
            let app = (id % APPS.len() as u64) as usize;
            let read = id % 4 == 3;
            let workload = if read {
                Workload::Read
            } else {
                Workload::Write
            };
            let permit = if hardened {
                match admission.admit(APPS[app], workload) {
                    Ok(p) => Some(p),
                    Err(_) => continue, // shed or refused: the client hears now
                }
            } else {
                None
            };
            queue.push_back(Req {
                id,
                app,
                born: tick,
                read,
                respawned: false,
                deadline: hardened.then(|| Deadline::at(at_tick(tick + PATIENCE + 1))),
                _permit: permit,
            });
        }

        // Service loop: strict FIFO with head-of-line blocking — the
        // tick ends when the round-trip budget is spent, and everyone
        // behind the head waits. This is what makes backlog deadly: a
        // deep queue means every served request is already stale.
        let mut used: u64 = 0;
        let mut goodput: u64 = 0;
        for _ in 0..queue.len() {
            if used >= CAPACITY {
                break; // backend saturated: the rest of the line waits
            }
            let Some(mut req) = queue.pop_front() else {
                break;
            };
            let stale = tick - req.born > PATIENCE;
            if stale && !req.respawned {
                // The impatient client resubmits; in the naive world the
                // stale original stays queued and is still served.
                req.respawned = true;
                let permit = if hardened {
                    let workload = if req.read {
                        Workload::Read
                    } else {
                        Workload::Write
                    };
                    admission.admit(APPS[req.app], workload).ok()
                } else {
                    None
                };
                if !hardened || permit.is_some() {
                    let id = next_id;
                    next_id += 1;
                    queue.push_back(Req {
                        id,
                        app: req.app,
                        born: tick,
                        read: req.read,
                        respawned: false,
                        deadline: hardened.then(|| Deadline::at(at_tick(tick + PATIENCE + 1))),
                        _permit: permit,
                    });
                }
            }
            if hardened && stale {
                // Deadline drop: free — no round trip is paid for work
                // nobody is waiting for. The permit releases with `req`.
                metrics.shed += 1;
                continue;
            }
            let client = match req.deadline {
                Some(d) => base.clone().with_deadline(d),
                None => base.clone(),
            };

            if req.read && hardened && degraded {
                // Read-only degraded mode: serve the read stale from the
                // replica instead of the partitioned primary.
                let _ = base
                    .store()
                    .get(&format!("out:{}:{}", APPS[req.app], req.id), clock.now());
                if storming {
                    metrics.storm_replica_reads += 1;
                }
                goodput += 1;
                continue;
            }

            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                let before = base.round_trips();
                let result = if req.read {
                    client
                        .get(&format!("out:{}:{}", APPS[req.app], req.id))
                        .map(|_| None)
                } else {
                    serve_write(&client, &req, &mut last_token)
                };
                used += base.round_trips() - before;
                match result {
                    Ok(written) => break Ok(written),
                    Err(e) => {
                        let fail_fast =
                            matches!(e, KvError::DeadlineExceeded | KvError::CircuitOpen);
                        let retry = if hardened {
                            !fail_fast && budget.try_withdraw()
                        } else {
                            attempts < NAIVE_ATTEMPTS && used < CAPACITY
                        };
                        if !retry {
                            break Err(e);
                        }
                    }
                }
            };
            match outcome {
                Ok(written) => {
                    if let Some(key) = written {
                        metrics.acked += 1;
                        acked_keys.push(key);
                    }
                    if stale {
                        metrics.wasted += 1; // the client is long gone
                    } else {
                        goodput += 1;
                    }
                }
                Err(_) => {
                    if !hardened {
                        // The naive client keeps waiting and retries from
                        // the head of the line: the convoy.
                        queue.push_front(req);
                    }
                    // Hardened: the error went back to the caller and the
                    // front-door slot frees with `req`.
                }
            }
        }
        metrics.goodput.push(goodput);
        clock.advance(TICK);
    }

    // No acked-write loss: every write acknowledged to a client is
    // durable in the store, storm or no storm.
    for key in &acked_keys {
        assert_eq!(
            base.store().get(key, clock.now()).unwrap().as_deref(),
            Some("done"),
            "acked write {key} lost"
        );
    }

    metrics.end_queue = queue.len();
    metrics.times_opened = breaker.times_opened();
    if hardened {
        metrics.shed += admission.total_shed();
        metrics.refused_writes = APPS
            .iter()
            .map(|app| admission.door(app).stats().refused_writes)
            .sum();
    }
    metrics
}

/// One write request: acquire the app's fenced lease, write the payload
/// under the granted token, release. Returns the payload key on success.
fn serve_write(
    client: &Client,
    req: &Req,
    last_token: &mut [u64],
) -> Result<Option<String>, KvError> {
    let lease = format!("lease:{}", APPS[req.app]);
    let owner = format!("req-{}", req.id);
    let granted = client.acquire_lease(&lease, &owner, 2 * TICK)?;
    let Some(token) = granted else {
        // Lease held (a leaked grant waiting out its TTL): retryable.
        return Err(KvError::ConnectionLost);
    };
    assert!(
        token > last_token[req.app],
        "fencing token regressed on {lease}: {token} after {}",
        last_token[req.app]
    );
    last_token[req.app] = token;
    let key = format!("out:{}:{}", APPS[req.app], req.id);
    let landed = client.fenced_set(&key, "done", token)?;
    assert!(landed, "the freshest token must clear the fence floor");
    let _ = client.del(&lease);
    Ok(Some(key))
}

#[test]
fn hardened_world_recovers_to_baseline_within_bound() {
    let m = run_world(true);
    let baseline = avg(&m.goodput[20..STORM_START as usize]);
    assert!(
        baseline >= (ARRIVALS - 1) as f64,
        "healthy baseline must near the arrival rate, got {baseline}"
    );

    // The storm bites: goodput collapses while it lasts...
    let storm_avg = avg(&m.goodput[STORM_START as usize..STORM_END as usize]);
    assert!(
        storm_avg < 0.5 * baseline,
        "the storm must depress goodput ({storm_avg} vs {baseline})"
    );
    assert!(m.times_opened >= 1, "the breaker must have tripped");
    // ...but degraded mode keeps reads flowing off the replica,
    assert!(
        m.storm_replica_reads >= 5,
        "read-only degraded mode must serve reads during the storm, got {}",
        m.storm_replica_reads
    );
    // and writes are refused at the door instead of queueing.
    assert!(m.refused_writes > 0, "degraded mode must refuse writes");

    // Recovery: back to >= 90% of baseline within RECOVERY_TICKS of the
    // storm clearing, and it stays there.
    let window_start = (STORM_END + RECOVERY_TICKS) as usize;
    let recovered = avg(&m.goodput[window_start..window_start + 20]);
    assert!(
        recovered >= 0.9 * baseline,
        "hardened world failed to recover: {recovered} vs baseline {baseline}"
    );
    let tail = avg(&m.goodput[(TICKS - 20) as usize..]);
    assert!(
        tail >= 0.9 * baseline,
        "recovery must hold through the end of the run ({tail})"
    );
    // The bounded front door means the backlog died with the storm.
    assert!(
        m.end_queue <= APPS.len() * DOOR_CAPACITY,
        "queue must stay door-bounded, got {}",
        m.end_queue
    );
}

#[test]
fn naive_world_stays_metastable_after_the_storm_clears() {
    let m = run_world(false);
    let baseline = avg(&m.goodput[20..STORM_START as usize]);
    assert!(baseline >= (ARRIVALS - 1) as f64);

    // Long after the partition healed, goodput is still pinned low: the
    // backlog plus retry amplification outlived the fault.
    let tail = avg(&m.goodput[(TICKS - 30) as usize..]);
    assert!(
        tail <= 0.3 * baseline,
        "expected a metastable tail, got {tail} vs baseline {baseline}"
    );
    assert!(
        m.end_queue as u64 > 2 * ARRIVALS * PATIENCE,
        "the backlog must persist, got {}",
        m.end_queue
    );
    assert!(
        m.wasted > 0,
        "completions after client abandonment are the signature of metastability"
    );
    assert_eq!(m.times_opened, 0, "the ablation runs without a breaker");
}

/// PR-8 leftover closed: the partition storm meets the cured layer. A
/// closed-loop worker drives three bump variants of one workload every
/// tick — a `run_occ` optimistic RMW (cured), a commutative `add_delta`
/// (confluent), and a KV-lock-guarded ad hoc RMW — while the same seeded
/// storm from the main oracle partitions the KV. The database is local,
/// so the cured and confluent paths must ride the storm out with *zero*
/// failed ticks; only the ad hoc path (whose coordination lives on the
/// partitioned KV) degrades, and it must recover once the storm clears.
/// Every path must conserve its counter exactly.
#[test]
fn run_occ_rides_out_a_kv_partition_storm() {
    use adhoc_transactions::core::locks::{AdHocLock, KvSetNxLock};
    use adhoc_transactions::orm::occ::run_occ;
    use adhoc_transactions::orm::{EntityDef, Orm, OrmError, Registry};
    use adhoc_transactions::sim::RetryPolicy;
    use adhoc_transactions::storage::{
        Column, ColumnType, Database, EngineProfile, IsolationLevel, Schema,
    };
    let clock = Arc::new(VirtualClock::new());
    let storm = FaultRule::storm(
        &[FaultKind::PartitionInbound],
        1.0,
        at_tick(STORM_START),
        at_tick(STORM_END),
    );
    let kv = Client::new(Store::new(), clock.clone(), LatencyModel::zero())
        .with_faults(FaultPlan::new(SEED, storm));
    let lock = KvSetNxLock::new(kv);

    let db = Database::in_memory(EngineProfile::PostgresLike);
    db.create_table(
        Schema::new(
            "counters",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("hits", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    db.run(IsolationLevel::ReadCommitted, |t| {
        for id in 1..=3i64 {
            t.insert("counters", &[("id", id.into()), ("hits", 0.into())])?;
        }
        Ok(())
    })
    .unwrap();
    let orm = Orm::new(
        db.clone(),
        Registry::new().register(EntityDef::new("counters")),
    );
    // Single-threaded loop: a conflict would be a bug, so no retries.
    let policy = RetryPolicy::exponential(0, TICK, TICK);

    let (mut occ_ok, mut delta_ok, mut adhoc_ok) = (0i64, 0i64, 0i64);
    let (mut adhoc_storm_errors, mut adhoc_post_storm_errors) = (0u64, 0u64);
    for tick in 0..TICKS {
        let storming = (STORM_START..STORM_END).contains(&tick);

        // Cured: the optimistic RMW never leaves the local database.
        let committed = run_occ(&orm, &policy, None, |occ| {
            let row = occ.read_fields(&orm, "counters", 1, &["hits"])?.ok_or(
                OrmError::RecordNotFound {
                    entity: "counters".into(),
                    id: 1,
                },
            )?;
            let hits = row.get_int("hits")?;
            occ.stage_update("counters", 1, &[("hits", (hits + 1).into())]);
            Ok(true)
        })
        .expect("run_occ must not observe the KV partition");
        assert!(committed);
        occ_ok += 1;

        // Confluent: the delta does not even read.
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.add_delta("counters", 2, "hits", 1)
        })
        .expect("add_delta must not observe the KV partition");
        delta_ok += 1;

        // Ad hoc: coordination lives on the partitioned KV.
        match lock.lock("counters:3") {
            Ok(guard) => {
                let hits = db.latest_committed("counters", 3).unwrap().unwrap().values[1].as_int();
                db.run(IsolationLevel::ReadCommitted, |t| {
                    t.update("counters", 3, &[("hits", (hits + 1).into())])
                })
                .unwrap();
                guard.unlock().unwrap();
                adhoc_ok += 1;
            }
            Err(_) if storming => adhoc_storm_errors += 1,
            Err(_) => adhoc_post_storm_errors += 1,
        }
        clock.advance(TICK);
    }

    // The local paths never noticed; the KV-coordinated path collapsed
    // for the storm's full duration and nothing else.
    assert_eq!(occ_ok, TICKS as i64);
    assert_eq!(delta_ok, TICKS as i64);
    assert_eq!(adhoc_storm_errors, STORM_END - STORM_START);
    assert_eq!(
        adhoc_post_storm_errors, 0,
        "the ad hoc path must recover the tick the partition heals"
    );
    assert_eq!(adhoc_ok, (TICKS - (STORM_END - STORM_START)) as i64);

    // Conservation per path: every acked bump is in the counter, and
    // nothing else is.
    for (id, expected) in [(1, occ_ok), (2, delta_ok), (3, adhoc_ok)] {
        let hits = db.latest_committed("counters", id).unwrap().unwrap().values[1].as_int();
        assert_eq!(hits, expected, "counter {id} lost or invented a bump");
    }
}

#[test]
fn oracle_replays_bit_for_bit() {
    let a = run_world(true);
    let b = run_world(true);
    assert_eq!(a.goodput, b.goodput);
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.shed, b.shed);
    let c = run_world(false);
    let d = run_world(false);
    assert_eq!(c.goodput, d.goodput);
    assert_eq!(c.end_queue, d.end_queue);
}

// ---------------------------------------------------------------------------
// Breaker half-open re-entry and degraded-mode exit, end to end through
// the KV client on the virtual clock.
// ---------------------------------------------------------------------------

#[test]
fn breaker_half_open_probe_reopens_on_failure_and_closes_on_success() {
    let clock = Arc::new(VirtualClock::new());
    let cooldown = Duration::from_secs(1);
    // Every command dropped for the first 1.5 virtual seconds.
    let plan = FaultPlan::new(
        SEED,
        FaultRule::storm(
            &[FaultKind::ConnError],
            1.0,
            Duration::ZERO,
            Duration::from_millis(1500),
        ),
    );
    let breaker = Arc::new(CircuitBreaker::new(3, cooldown));
    let client = Client::new(Store::new(), clock.clone(), LatencyModel::zero())
        .with_faults(plan)
        .with_breaker(Arc::clone(&breaker));

    // Trip: three straight failures open the breaker.
    for _ in 0..3 {
        assert!(matches!(client.set("k", "v"), Err(KvError::ConnectionLost)));
    }
    assert_eq!(breaker.state(clock.now()), BreakerState::Open);
    assert_eq!(breaker.times_opened(), 1);

    // Open: rejected before the wire — no round trip is paid.
    let before = client.round_trips();
    assert!(matches!(client.get("k"), Err(KvError::CircuitOpen)));
    assert_eq!(client.round_trips(), before, "open breaker must fail fast");

    // Cooldown elapses: exactly one probe goes through, still inside the
    // storm, so it pays the wire, fails, and re-opens the breaker.
    clock.advance(cooldown);
    assert_eq!(breaker.state(clock.now()), BreakerState::HalfOpen);
    let before = client.round_trips();
    assert!(matches!(client.get("k"), Err(KvError::ConnectionLost)));
    assert_eq!(client.round_trips(), before + 1, "probe reaches the wire");
    assert_eq!(
        breaker.state(clock.now()),
        BreakerState::Open,
        "failed probe re-opens"
    );
    assert_eq!(breaker.times_opened(), 2);
    // Re-entry: back to failing fast without wire traffic.
    let before = client.round_trips();
    assert!(matches!(client.get("k"), Err(KvError::CircuitOpen)));
    assert_eq!(client.round_trips(), before);

    // Second cooldown lands past the storm: the probe succeeds and closes
    // the breaker; traffic resumes.
    clock.advance(cooldown);
    assert_eq!(breaker.state(clock.now()), BreakerState::HalfOpen);
    client
        .set("k", "v")
        .expect("probe succeeds after the storm");
    assert_eq!(breaker.state(clock.now()), BreakerState::Closed);
    client.get("k").expect("closed breaker admits everything");
}

#[test]
fn half_open_admits_exactly_one_probe_concurrently() {
    let clock = Arc::new(VirtualClock::new());
    let breaker = CircuitBreaker::new(1, Duration::from_secs(1));
    assert!(breaker.allow(clock.now()));
    breaker.record_failure(clock.now());
    clock.advance(Duration::from_secs(1));
    // Cooldown elapsed: the first caller becomes the probe, a concurrent
    // second caller is rejected while the probe is in flight.
    assert!(breaker.allow(clock.now()), "one probe admitted");
    assert!(!breaker.allow(clock.now()), "no second concurrent probe");
    breaker.record_success();
    assert_eq!(breaker.state(clock.now()), BreakerState::Closed);
    assert!(breaker.allow(clock.now()));
}

#[test]
fn degraded_mode_exits_when_the_breaker_closes() {
    let clock = Arc::new(VirtualClock::new());
    let cooldown = Duration::from_secs(1);
    let plan = FaultPlan::new(
        SEED,
        FaultRule::storm(
            &[FaultKind::ConnError],
            1.0,
            Duration::ZERO,
            Duration::from_millis(500),
        ),
    );
    let breaker = Arc::new(CircuitBreaker::new(2, cooldown));
    let client = Client::new(Store::new(), clock.clone(), LatencyModel::zero())
        .with_faults(plan)
        .with_breaker(Arc::clone(&breaker));
    let admission = Admission::new(DOOR_CAPACITY);

    // Storm trips the breaker; the world degrades writes.
    for _ in 0..2 {
        let _ = client.set("k", "v");
    }
    assert_eq!(breaker.state(clock.now()), BreakerState::Open);
    admission.degrade_writes(true);

    // Degraded: writes are refused at the door, reads still pass.
    assert!(admission.admit(APPS[0], Workload::Write).is_err());
    let permit = admission
        .admit(APPS[0], Workload::Read)
        .expect("reads pass in degraded mode");
    drop(permit);

    // Cooldown elapsed and the storm is over: the probe succeeds, the
    // breaker closes, and the world exits degraded mode.
    clock.advance(cooldown);
    client.set("k", "v").expect("probe succeeds");
    assert_eq!(breaker.state(clock.now()), BreakerState::Closed);
    admission.degrade_writes(false);

    // Writes resume through the same doors.
    let permit = admission
        .admit(APPS[0], Workload::Write)
        .expect("writes resume after degraded-mode exit");
    drop(permit);
    assert!(!admission.door(APPS[0]).is_read_only());
}
