//! Serializability oracle: random concurrent transaction programs run at
//! Serializable must leave the database in a state some *serial* execution
//! of the same programs could have produced. This checks the strongest
//! guarantee both engine profiles claim — MySQL-like via strict 2PL with
//! S-locking reads, PostgreSQL-like via SSI-style commit certification —
//! end to end, including the retry loop real applications wrap around it
//! (the paper's DBT baseline, §5.1).

use adhoc_transactions::storage::{
    Column, ColumnType, Database, EngineProfile, IsolationLevel, Schema,
};
use proptest::prelude::*;
use std::sync::Arc;

const ACCOUNTS: i64 = 3;
const SEED_BALANCE: i64 = 100;

/// One step of a transaction program over the three accounts.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Read an account, write back `balance + delta` (the RMW shape that
    /// loses updates below Serializable).
    Add { acct: i64, delta: i64 },
    /// Read one account, overwrite another with the value read (the
    /// write-skew shape SSI exists to catch).
    Copy { src: i64, dst: i64 },
    /// Blind write.
    Set { acct: i64, value: i64 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1..=ACCOUNTS, -5i64..=5).prop_map(|(acct, delta)| Step::Add { acct, delta }),
        (1..=ACCOUNTS, 1..=ACCOUNTS).prop_map(|(src, dst)| Step::Copy { src, dst }),
        (1..=ACCOUNTS, 0i64..50).prop_map(|(acct, value)| Step::Set { acct, value }),
    ]
}

fn program() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(step(), 1..4)
}

fn db_with_accounts(profile: EngineProfile, accounts: i64, balance: i64) -> Database {
    let db = Database::in_memory(profile);
    db.create_table(
        Schema::new(
            "acct",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("bal", ColumnType::Int),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    for acct in 1..=accounts {
        db.run(IsolationLevel::ReadCommitted, |t| {
            t.insert("acct", &[("id", acct.into()), ("bal", balance.into())])
        })
        .unwrap();
    }
    db
}

fn fresh_db(profile: EngineProfile) -> Database {
    db_with_accounts(profile, ACCOUNTS, SEED_BALANCE)
}

/// Run one program inside an already-open transaction.
fn apply(
    txn: &mut adhoc_transactions::storage::Transaction,
    schema: &Schema,
    program: &[Step],
) -> adhoc_transactions::storage::Result<()> {
    for step in program {
        match *step {
            Step::Add { acct, delta } => {
                let row = txn.get("acct", acct)?.expect("seeded account");
                let bal = row.get_int(schema, "bal").expect("bal column");
                txn.update("acct", acct, &[("bal", (bal + delta).into())])?;
            }
            Step::Copy { src, dst } => {
                let row = txn.get("acct", src)?.expect("seeded account");
                let bal = row.get_int(schema, "bal").expect("bal column");
                txn.update("acct", dst, &[("bal", bal.into())])?;
            }
            Step::Set { acct, value } => {
                txn.update("acct", acct, &[("bal", value.into())])?;
            }
        }
    }
    Ok(())
}

fn final_state(db: &Database) -> Vec<i64> {
    let schema = db.schema("acct").unwrap();
    (1..=ACCOUNTS)
        .map(|acct| {
            db.latest_committed("acct", acct)
                .unwrap()
                .expect("account survives")
                .get_int(&schema, "bal")
                .unwrap()
        })
        .collect()
}

/// All final states reachable by running the programs in some serial order.
fn serial_outcomes(profile: EngineProfile, programs: &[Vec<Step>]) -> Vec<Vec<i64>> {
    let mut outcomes = Vec::new();
    let mut order: Vec<usize> = (0..programs.len()).collect();
    permute(&mut order, 0, &mut |order| {
        let db = fresh_db(profile);
        let schema = db.schema("acct").unwrap();
        for &i in order.iter() {
            db.run(IsolationLevel::Serializable, |t| {
                apply(t, &schema, &programs[i])
            })
            .unwrap();
        }
        let state = final_state(&db);
        if !outcomes.contains(&state) {
            outcomes.push(state);
        }
    });
    outcomes
}

fn permute(order: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == order.len() {
        visit(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, visit);
        order.swap(k, i);
    }
}

fn check_serializable(profile: EngineProfile, programs: &[Vec<Step>]) -> Result<(), TestCaseError> {
    let db = Arc::new(fresh_db(profile));
    let schema = db.schema("acct").unwrap();
    std::thread::scope(|s| {
        for program in programs {
            let db = Arc::clone(&db);
            let schema = &schema;
            s.spawn(move || {
                db.run_with_retries(IsolationLevel::Serializable, 10_000, |t| {
                    apply(t, schema, program)
                })
                .expect("serializable retry loop converges");
            });
        }
    });
    let got = final_state(&db);
    let allowed = serial_outcomes(profile, programs);
    prop_assert!(
        allowed.contains(&got),
        "profile {profile:?}: concurrent outcome {got:?} matches no serial order \
         (allowed {allowed:?}) for programs {programs:?}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// PostgreSQL-like Serializable (SSI certification): every concurrent
    /// schedule of three random programs is equivalent to a serial one.
    #[test]
    fn postgres_serializable_is_serializable(
        programs in proptest::collection::vec(program(), 3..=3),
    ) {
        check_serializable(EngineProfile::PostgresLike, &programs)?;
    }

    /// MySQL-like Serializable (strict 2PL with S-locking reads): every
    /// concurrent schedule of three random programs is equivalent to a
    /// serial one, with upgrade deadlocks resolved by the retry loop.
    #[test]
    fn mysql_serializable_is_serializable(
        programs in proptest::collection::vec(program(), 3..=3),
    ) {
        check_serializable(EngineProfile::MySqlLike, &programs)?;
    }
}

/// Contention stress over the sharded commit path, both footprint regimes:
///
/// * **disjoint keys** — each thread owns one row, so commit-time shard
///   locks are (almost always) disjoint and commits proceed in parallel;
/// * **same key** — every thread RMWs one row, the maximal-conflict case
///   where certification aborts and the retry loop do all the work.
///
/// Either way the serializable retry loop must converge on the exact
/// serial result: per-shard validation may change *who waits on whom*,
/// never the count.
#[test]
fn disjoint_and_same_key_contention_both_serialize_exactly() {
    const THREADS: i64 = 8;
    const OPS: i64 = 50;
    for profile in [EngineProfile::PostgresLike, EngineProfile::MySqlLike] {
        // Disjoint-key writers: thread `i` increments row `i`.
        let db = Arc::new(db_with_accounts(profile, THREADS, 0));
        let schema = db.schema("acct").unwrap();
        std::thread::scope(|s| {
            for acct in 1..=THREADS {
                let db = Arc::clone(&db);
                let schema = &schema;
                s.spawn(move || {
                    for _ in 0..OPS {
                        db.run_with_retries(IsolationLevel::Serializable, 10_000, |t| {
                            let row = t.get("acct", acct)?.expect("seeded account");
                            let bal = row.get_int(schema, "bal").expect("bal column");
                            t.update("acct", acct, &[("bal", (bal + 1).into())])
                        })
                        .expect("disjoint-key writer converges");
                    }
                });
            }
        });
        for acct in 1..=THREADS {
            let bal = db
                .latest_committed("acct", acct)
                .unwrap()
                .expect("row survives")
                .get_int(&schema, "bal")
                .unwrap();
            assert_eq!(bal, OPS, "{profile:?}: row {acct} lost updates");
        }

        // Same-key writers: every thread increments row 1.
        let db = Arc::new(db_with_accounts(profile, 1, 0));
        let schema = db.schema("acct").unwrap();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let db = Arc::clone(&db);
                let schema = &schema;
                s.spawn(move || {
                    for _ in 0..OPS {
                        db.run_with_retries(IsolationLevel::Serializable, 10_000, |t| {
                            let row = t.get("acct", 1)?.expect("seeded account");
                            let bal = row.get_int(schema, "bal").expect("bal column");
                            t.update("acct", 1, &[("bal", (bal + 1).into())])
                        })
                        .expect("same-key writer converges");
                    }
                });
            }
        });
        let bal = db
            .latest_committed("acct", 1)
            .unwrap()
            .expect("row survives")
            .get_int(&schema, "bal")
            .unwrap();
        assert_eq!(bal, THREADS * OPS, "{profile:?}: hot row lost updates");
    }
}

/// Epoch-watermark visibility stress, mixed footprints: four threads RMW
/// their own disjoint rows (commit-ts blocks drain in parallel, mostly in
/// order) while four more hammer one hot row (certification aborts force
/// retries and leave drawn-but-revoked timestamps behind). After every
/// acked commit each thread opens a probe snapshot and checks the two
/// sides of the epoch contract:
///
/// * **never ahead** — the probe's snapshot timestamp is at or below the
///   applied watermark. With per-thread timestamp *batching* the global
///   `next` counter runs far ahead of the applied frontier, so a snapshot
///   accidentally derived from `next` (instead of the watermark) fails
///   this immediately under load;
/// * **never behind an ack** — the snapshot is at or above the watermark
///   read *before* the commit, and the probe reads back the thread's own
///   acked write (disjoint rows exactly, the hot row at least) — the
///   watermark may lag raw timestamp allocation, never an acknowledgement.
#[test]
fn snapshots_never_run_ahead_of_the_applied_watermark() {
    const DISJOINT: i64 = 4;
    const HOT_WRITERS: i64 = 4;
    const HOT_ROW: i64 = DISJOINT + 1;
    const OPS: i64 = 40;
    for profile in [EngineProfile::PostgresLike, EngineProfile::MySqlLike] {
        let db = Arc::new(db_with_accounts(profile, HOT_ROW, 0));
        let schema = db.schema("acct").unwrap();
        std::thread::scope(|s| {
            for thread in 1..=(DISJOINT + HOT_WRITERS) {
                let db = Arc::clone(&db);
                let schema = &schema;
                let row = if thread <= DISJOINT { thread } else { HOT_ROW };
                s.spawn(move || {
                    for i in 1..=OPS {
                        let wm_before = db.applied_watermark();
                        db.run_with_retries(IsolationLevel::Serializable, 10_000, |t| {
                            let cur = t.get("acct", row)?.expect("seeded account");
                            let bal = cur.get_int(schema, "bal").expect("bal column");
                            t.update("acct", row, &[("bal", (bal + 1).into())])
                        })
                        .expect("stress writer converges");

                        let mut probe = db.begin_with(IsolationLevel::RepeatableRead);
                        let snap = probe.snapshot_ts();
                        let wm_after = db.applied_watermark();
                        assert!(
                            snap <= wm_after,
                            "{profile:?}: snapshot {snap} ahead of applied \
                             watermark {wm_after}"
                        );
                        assert!(
                            snap >= wm_before,
                            "{profile:?}: watermark regressed across a commit \
                             ({snap} < {wm_before})"
                        );
                        let seen = probe
                            .get("acct", row)
                            .unwrap()
                            .expect("row survives")
                            .get_int(schema, "bal")
                            .unwrap();
                        if row == HOT_ROW {
                            assert!(
                                seen >= i,
                                "{profile:?}: acked hot-row increment invisible \
                                 (saw {seen}, acked {i})"
                            );
                        } else {
                            assert_eq!(
                                seen, i,
                                "{profile:?}: disjoint row {row} snapshot diverges"
                            );
                        }
                    }
                });
            }
        });
        for row in 1..=DISJOINT {
            let bal = db
                .latest_committed("acct", row)
                .unwrap()
                .expect("row survives")
                .get_int(&schema, "bal")
                .unwrap();
            assert_eq!(bal, OPS, "{profile:?}: disjoint row {row} lost updates");
        }
        let hot = db
            .latest_committed("acct", HOT_ROW)
            .unwrap()
            .expect("row survives")
            .get_int(&schema, "bal")
            .unwrap();
        assert_eq!(hot, HOT_WRITERS * OPS, "{profile:?}: hot row lost updates");
        // Every acked commit retired into the watermark: 5 seed commits
        // plus one per increment, even though retries and revoked block
        // remainders churned far more raw timestamps than that.
        let commits = (HOT_ROW + (DISJOINT + HOT_WRITERS) * OPS) as u64;
        assert!(
            db.applied_watermark() >= commits,
            "{profile:?}: watermark below the acked-commit count"
        );
    }
}

/// Negative control: the same oracle *fails* below Serializable. Two
/// crossing Copy programs at Snapshot Isolation, forced to overlap with a
/// barrier, commit a write-skewed state no serial order allows —
/// demonstrating the oracle has teeth (and that the Serializable runs
/// above are not passing vacuously).
#[test]
fn snapshot_isolation_fails_the_oracle() {
    let db = Arc::new(fresh_db(EngineProfile::PostgresLike));
    // Make the two accounts distinguishable.
    db.run(IsolationLevel::ReadCommitted, |t| {
        t.update("acct", 1, &[("bal", 1.into())])?;
        t.update("acct", 2, &[("bal", 2.into())])
    })
    .unwrap();
    let schema = db.schema("acct").unwrap();
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        for (src, dst) in [(1i64, 2i64), (2, 1)] {
            let db = Arc::clone(&db);
            let (schema, barrier) = (&schema, &barrier);
            s.spawn(move || {
                let mut t = db.begin_with(IsolationLevel::RepeatableRead);
                let row = t.get("acct", src).unwrap().unwrap();
                let bal = row.get_int(schema, "bal").unwrap();
                barrier.wait(); // both snapshots taken before either write
                t.update("acct", dst, &[("bal", bal.into())]).unwrap();
                t.commit().expect("SI commits both sides of write skew");
            });
        }
    });
    // Serial orders produce [1,1,100] or [2,2,100]; the swap is the
    // write-skew anomaly Snapshot Isolation permits.
    assert_eq!(final_state(&db), vec![2, 1, 100]);
}
