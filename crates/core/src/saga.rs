//! Sagas — the classic alternative the paper weighs against multi-request
//! ad hoc transactions (§3.1.2).
//!
//! "To use Sagas, developers have to decompose an LLT into subtransactions
//! accompanied with compensation transactions. When any subtransaction
//! aborts, compensation transactions of prior-committed subtransactions
//! will be invoked, negating their effects as if the LLT has never been
//! executed." This module implements exactly that, so the semantic
//! difference the paper points out — a saga undoes *everything*, while the
//! Discourse edit flow deliberately keeps its view-count increment — can
//! be demonstrated side by side (see the tests).

use crate::error::ToolkitError;
use crate::Result;
use adhoc_orm::{Orm, OrmTxn};
use std::fmt;

type StepFn = Box<dyn Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> + Send + Sync>;

/// One saga step: a forward action and the compensation that negates it.
pub struct SagaStep {
    /// Step name (appears in outcomes).
    pub name: String,
    action: StepFn,
    compensation: StepFn,
}

impl SagaStep {
    /// A step from a forward action and its compensation.
    pub fn new(
        name: &str,
        action: impl Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> + Send + Sync + 'static,
        compensation: impl Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            action: Box::new(action),
            compensation: Box::new(compensation),
        }
    }
}

impl fmt::Debug for SagaStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SagaStep")
            .field("name", &self.name)
            .finish()
    }
}

/// Outcome of one saga execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaOutcome {
    /// Every step committed.
    Completed {
        /// Number of committed steps.
        steps: usize,
    },
    /// `failed_step` aborted; the named prior steps were compensated in
    /// reverse order.
    Compensated {
        /// The step whose action failed.
        failed_step: String,
        /// Names of the steps undone, in compensation order.
        compensated: Vec<String>,
    },
}

/// A sequence of compensable steps, each committed as its own transaction
/// (the defining property of a saga: no long-lived database transaction).
#[derive(Debug, Default)]
pub struct Saga {
    steps: Vec<SagaStep>,
}

impl Saga {
    /// An empty saga.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step.
    pub fn step(
        mut self,
        name: &str,
        action: impl Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> + Send + Sync + 'static,
        compensation: impl Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.steps.push(SagaStep::new(name, action, compensation));
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the saga has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Execute the saga. Each step runs (and commits) in its own
    /// transaction; on the first failure, compensations for all committed
    /// steps run in reverse order, each in its own transaction.
    ///
    /// A compensation that itself fails aborts the recovery and surfaces
    /// the error — real saga engines persist state and retry; modelling
    /// that queue is out of scope here.
    pub fn run(&self, orm: &Orm) -> Result<SagaOutcome> {
        let mut committed: Vec<&SagaStep> = Vec::new();
        for step in &self.steps {
            let result = orm.transaction(|t| (step.action)(t));
            match result {
                Ok(()) => committed.push(step),
                Err(_) => {
                    let mut compensated = Vec::new();
                    for done in committed.iter().rev() {
                        orm.transaction(|t| (done.compensation)(t))
                            .map_err(ToolkitError::from)?;
                        compensated.push(done.name.clone());
                    }
                    return Ok(SagaOutcome::Compensated {
                        failed_step: step.name.clone(),
                        compensated,
                    });
                }
            }
        }
        Ok(SagaOutcome::Completed {
            steps: self.steps.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_orm::{EntityDef, OrmError, Registry};
    use adhoc_storage::{Column, ColumnType, Database, EngineProfile, Schema};

    fn fixture() -> Orm {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "accounts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("balance", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let orm = Orm::new(db, Registry::new().register(EntityDef::new("accounts")));
        orm.create("accounts", &[("id", 1.into()), ("balance", 100.into())])
            .unwrap();
        orm.create("accounts", &[("id", 2.into()), ("balance", 0.into())])
            .unwrap();
        orm
    }

    fn adjust(id: i64, delta: i64) -> impl Fn(&mut OrmTxn<'_>) -> adhoc_orm::Result<()> {
        move |t| {
            let mut acc = t.find_required("accounts", id)?;
            let balance = acc.get_int("balance")?;
            acc.set("balance", balance + delta)?;
            t.save(&mut acc)?;
            Ok(())
        }
    }

    fn fail_step(_t: &mut OrmTxn<'_>) -> adhoc_orm::Result<()> {
        Err(OrmError::RecordNotFound {
            entity: "payment-gateway".into(),
            id: 0,
        })
    }

    #[test]
    fn completes_when_every_step_succeeds() {
        let orm = fixture();
        let saga = Saga::new()
            .step("debit", adjust(1, -30), adjust(1, 30))
            .step("credit", adjust(2, 30), adjust(2, -30));
        assert_eq!(saga.run(&orm).unwrap(), SagaOutcome::Completed { steps: 2 });
        assert_eq!(
            orm.find_required("accounts", 1)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            70
        );
        assert_eq!(
            orm.find_required("accounts", 2)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            30
        );
    }

    #[test]
    fn compensates_committed_steps_in_reverse() {
        let orm = fixture();
        let saga = Saga::new()
            .step("debit", adjust(1, -30), adjust(1, 30))
            .step("credit", adjust(2, 30), adjust(2, -30))
            .step("charge-card", fail_step, |_t| Ok(()));
        let outcome = saga.run(&orm).unwrap();
        assert_eq!(
            outcome,
            SagaOutcome::Compensated {
                failed_step: "charge-card".into(),
                compensated: vec!["credit".into(), "debit".into()],
            }
        );
        // As if the saga never ran.
        assert_eq!(
            orm.find_required("accounts", 1)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            100
        );
        assert_eq!(
            orm.find_required("accounts", 2)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            0
        );
    }

    #[test]
    fn empty_saga_completes_trivially() {
        let orm = fixture();
        let saga = Saga::new();
        assert!(saga.is_empty());
        assert_eq!(saga.run(&orm).unwrap(), SagaOutcome::Completed { steps: 0 });
    }

    #[test]
    fn first_step_failure_compensates_nothing() {
        let orm = fixture();
        let saga = Saga::new().step("doomed", fail_step, |_t| Ok(())).step(
            "never-runs",
            adjust(1, -100),
            adjust(1, 100),
        );
        let outcome = saga.run(&orm).unwrap();
        assert_eq!(
            outcome,
            SagaOutcome::Compensated {
                failed_step: "doomed".into(),
                compensated: vec![],
            }
        );
        assert_eq!(
            orm.find_required("accounts", 1)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            100
        );
    }

    /// The §3.1.2 semantic contrast: the saga undoes *all* effects, while
    /// the ad hoc multi-request edit keeps its view-count side effect. Both
    /// behaviours are legitimate; the paper's point is they differ.
    #[test]
    fn saga_semantics_differ_from_ad_hoc_multi_request() {
        let orm = fixture();
        // Saga version of "count a view, then apply an edit that fails".
        let saga = Saga::new()
            .step("count-view", adjust(1, 1), adjust(1, -1))
            .step("apply-edit", fail_step, |_t| Ok(()));
        saga.run(&orm).unwrap();
        // The view count (modelled on balance) was rolled back: 100 again.
        assert_eq!(
            orm.find_required("accounts", 1)
                .unwrap()
                .get_int("balance")
                .unwrap(),
            100
        );
        // Whereas the ad hoc flow (see discourse::begin_edit tests) keeps
        // the increment — asserted in adhoc-apps' edit_post tests.
    }
}
