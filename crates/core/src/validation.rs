//! The two validation-procedure implementations of optimistic ad hoc
//! transactions (§3.2.2), including the non-atomic variant behind 11 of the
//! paper's correctness issues (§4.1.2).
//!
//! A validated write is the commit half of an optimistic ad hoc
//! transaction: re-check that the data the business logic read is still
//! current, and persist the update only if so. The paper found exactly two
//! check styles in the wild — version columns (Figure 1c) and value
//! comparison on the updated column (the edit-post listing of §3.3.2) —
//! and exactly two implementation routes:
//!
//! * **ORM-assisted** (`lock_version`): the framework compiles the check
//!   into the `UPDATE`'s `WHERE` clause; atomicity is structural.
//! * **Hand-crafted**: the developer writes the check. Done as a single
//!   `UPDATE … WHERE` it is atomic; done as a separate query — especially
//!   one issued through an interface the ORM cannot fold into the ambient
//!   transaction, like Discourse's MiniSql — it is not.

use crate::Result;
use adhoc_orm::{Obj, Orm, OrmError};
use adhoc_storage::{Predicate, Value};
use std::sync::Arc;

/// What the validation compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationCheck {
    /// A version counter column: check equality with the value read, and
    /// increment it in the same write (Figure 1c).
    Version {
        /// The version column.
        column: String,
    },
    /// Value-based: check the *content* column itself is unchanged
    /// (§3.3.2's column-level validation — concurrent updates to other
    /// columns don't interfere).
    ValueEquals {
        /// The compared column.
        column: String,
    },
}

/// How the check-and-write is implemented.
#[derive(Clone)]
pub enum ValidationStrategy {
    /// ORM-provided optimistic locking. Requires the entity to be
    /// registered `with_lock_version`. Always atomic (§4.1.2: "ad hoc
    /// transactions using ORM-generated validation procedures ensure
    /// atomicity").
    OrmAssisted,
    /// Hand-written single-statement `UPDATE … WHERE check` — atomic.
    HandCraftedAtomic(ValidationCheck),
    /// Hand-written two-step check-then-write, with the check issued in
    /// its own transaction (the MiniSql pattern). The window between the
    /// two steps is a real race; `pause_between` lets tests and the bug
    /// gallery occupy it deterministically.
    HandCraftedNonAtomic {
        /// What the validation step compares.
        check: ValidationCheck,
        /// Hook invoked between validation and commit (deterministic race
        /// injection). `None` leaves the race to the scheduler.
        pause_between: Option<Arc<dyn Fn() + Send + Sync>>,
    },
}

impl std::fmt::Debug for ValidationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationStrategy::OrmAssisted => write!(f, "OrmAssisted"),
            ValidationStrategy::HandCraftedAtomic(c) => write!(f, "HandCraftedAtomic({c:?})"),
            ValidationStrategy::HandCraftedNonAtomic { check, .. } => {
                write!(f, "HandCraftedNonAtomic({check:?})")
            }
        }
    }
}

/// Outcome of a validated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The check held and the write is committed.
    Committed,
    /// The check failed: data changed since the read. Nothing written —
    /// 19 of the paper's 26 optimistic cases surface this to the user as
    /// an error; others retry (Figure 1c's loop).
    Conflict,
}

/// Execute the validate-and-commit step for an object read earlier.
///
/// `obj` carries the values as of the read; `updates` are the assignments
/// the business logic computed from them.
pub fn validated_write(
    orm: &Orm,
    obj: &Obj,
    updates: &[(&str, Value)],
    strategy: &ValidationStrategy,
) -> Result<CommitOutcome> {
    match strategy {
        ValidationStrategy::OrmAssisted => {
            let mut staged = obj.clone();
            for (col, v) in updates {
                staged
                    .set(col, v.clone())
                    .map_err(crate::ToolkitError::from)?;
            }
            match orm.save(&mut staged) {
                Ok(()) => Ok(CommitOutcome::Committed),
                Err(OrmError::StaleObject { .. }) => Ok(CommitOutcome::Conflict),
                Err(e) => Err(e.into()),
            }
        }
        ValidationStrategy::HandCraftedAtomic(check) => {
            let (pred, extra) = check_predicate(obj, check)?;
            let affected = orm.transaction(|t| {
                let mut pairs: Vec<(&str, Value)> = updates.to_vec();
                for (col, v) in &extra {
                    pairs.push((col.as_str(), v.clone()));
                }
                Ok(t.raw().update_where(&obj.entity, &pred, &pairs)?)
            })?;
            Ok(if affected == 1 {
                CommitOutcome::Committed
            } else {
                CommitOutcome::Conflict
            })
        }
        ValidationStrategy::HandCraftedNonAtomic {
            check,
            pause_between,
        } => {
            // Step 1: validate in a transaction of its own (MiniSql-style).
            let (pred, extra) = check_predicate(obj, check)?;
            let mini = orm.mini_sql();
            let still_current = !mini.query(&obj.entity, &pred)?.is_empty();
            if !still_current {
                return Ok(CommitOutcome::Conflict);
            }
            // The race window the atomicity violation lives in.
            if let Some(hook) = pause_between {
                hook();
            }
            // Step 2: commit *without* re-checking — a conflicting write
            // that landed in the window is silently overwritten.
            orm.transaction(|t| {
                let mut pairs: Vec<(&str, Value)> = updates.to_vec();
                for (col, v) in &extra {
                    pairs.push((col.as_str(), v.clone()));
                }
                t.raw()
                    .update_where(&obj.entity, &Predicate::eq("id", obj.id), &pairs)?;
                Ok(())
            })?;
            Ok(CommitOutcome::Committed)
        }
    }
}

/// Build the WHERE predicate for a check, plus any extra assignments the
/// check requires (version increments).
fn check_predicate(
    obj: &Obj,
    check: &ValidationCheck,
) -> Result<(Predicate, Vec<(String, Value)>)> {
    match check {
        ValidationCheck::Version { column } => {
            let read = obj.get_int(column).map_err(crate::ToolkitError::from)?;
            Ok((
                Predicate::And(vec![
                    Predicate::eq("id", obj.id),
                    Predicate::eq(column.as_str(), read),
                ]),
                vec![(column.clone(), Value::Int(read + 1))],
            ))
        }
        ValidationCheck::ValueEquals { column } => {
            let read = obj.get(column).map_err(crate::ToolkitError::from)?.clone();
            Ok((
                Predicate::And(vec![
                    Predicate::eq("id", obj.id),
                    Predicate::Eq(column.clone(), read),
                ]),
                Vec::new(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_orm::{EntityDef, Registry};
    use adhoc_storage::{Column, ColumnType, Database, EngineProfile, Schema};

    fn fixture(optimistic: bool) -> Orm {
        let db = Database::in_memory(EngineProfile::PostgresLike);
        db.create_table(
            Schema::new(
                "posts",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("content", ColumnType::Str),
                    Column::new("view_cnt", ColumnType::Int),
                    Column::new("lock_version", ColumnType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let mut def = EntityDef::new("posts");
        if optimistic {
            def = def.with_lock_version();
        }
        let orm = Orm::new(db, Registry::new().register(def));
        orm.create(
            "posts",
            &[
                ("id", 1.into()),
                ("content", "v0".into()),
                ("view_cnt", 0.into()),
                ("lock_version", 0.into()),
            ],
        )
        .unwrap();
        orm
    }

    #[test]
    fn orm_assisted_commits_and_conflicts() {
        let orm = fixture(true);
        let a = orm.find_required("posts", 1).unwrap();
        let b = orm.find_required("posts", 1).unwrap();
        assert_eq!(
            validated_write(
                &orm,
                &a,
                &[("content", "A".into())],
                &ValidationStrategy::OrmAssisted
            )
            .unwrap(),
            CommitOutcome::Committed
        );
        assert_eq!(
            validated_write(
                &orm,
                &b,
                &[("content", "B".into())],
                &ValidationStrategy::OrmAssisted
            )
            .unwrap(),
            CommitOutcome::Conflict
        );
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "A"
        );
    }

    #[test]
    fn hand_crafted_atomic_version_check() {
        let orm = fixture(false);
        let strategy = ValidationStrategy::HandCraftedAtomic(ValidationCheck::Version {
            column: "lock_version".into(),
        });
        let a = orm.find_required("posts", 1).unwrap();
        let b = orm.find_required("posts", 1).unwrap();
        assert_eq!(
            validated_write(&orm, &a, &[("content", "A".into())], &strategy).unwrap(),
            CommitOutcome::Committed
        );
        assert_eq!(
            validated_write(&orm, &b, &[("content", "B".into())], &strategy).unwrap(),
            CommitOutcome::Conflict
        );
        let current = orm.find_required("posts", 1).unwrap();
        assert_eq!(current.get_str("content").unwrap(), "A");
        assert_eq!(current.get_int("lock_version").unwrap(), 1);
    }

    #[test]
    fn hand_crafted_value_check_ignores_other_columns() {
        // §3.3.2: content-based validation is not disturbed by concurrent
        // view_cnt bumps.
        let orm = fixture(false);
        let strategy = ValidationStrategy::HandCraftedAtomic(ValidationCheck::ValueEquals {
            column: "content".into(),
        });
        let a = orm.find_required("posts", 1).unwrap();
        // Concurrent view-count increment (different column).
        orm.transaction(|t| {
            t.raw().update("posts", 1, &[("view_cnt", 100.into())])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(
            validated_write(&orm, &a, &[("content", "edited".into())], &strategy).unwrap(),
            CommitOutcome::Committed,
            "view_cnt change must not fail a content check"
        );
        // But a concurrent *content* change does conflict.
        let stale = a; // still carries content "v0"
        assert_eq!(
            validated_write(&orm, &stale, &[("content", "other".into())], &strategy).unwrap(),
            CommitOutcome::Conflict
        );
    }

    #[test]
    fn non_atomic_validation_loses_the_race() {
        // §4.1.2 (Discourse/MiniSql): a write that lands between the
        // validation query and the commit is silently overwritten.
        let orm = fixture(false);
        let orm_for_hook = orm.clone();
        let strategy = ValidationStrategy::HandCraftedNonAtomic {
            check: ValidationCheck::Version {
                column: "lock_version".into(),
            },
            pause_between: Some(Arc::new(move || {
                // The interloper commits in the window, bumping the version.
                orm_for_hook
                    .transaction(|t| {
                        t.raw().update(
                            "posts",
                            1,
                            &[
                                ("content", "interloper".into()),
                                ("lock_version", 99.into()),
                            ],
                        )?;
                        Ok(())
                    })
                    .unwrap();
            })),
        };
        let a = orm.find_required("posts", 1).unwrap();
        // The validation passed (version was current when checked), so the
        // write commits — clobbering the interloper.
        assert_eq!(
            validated_write(&orm, &a, &[("content", "mine".into())], &strategy).unwrap(),
            CommitOutcome::Committed
        );
        let current = orm.find_required("posts", 1).unwrap();
        assert_eq!(
            current.get_str("content").unwrap(),
            "mine",
            "the interloper's update was silently lost"
        );
    }

    #[test]
    fn atomic_validation_wins_the_same_race() {
        // Identical interleaving with the atomic strategy: the conflict is
        // detected and nothing is lost.
        let orm = fixture(false);
        let a = orm.find_required("posts", 1).unwrap();
        orm.transaction(|t| {
            t.raw().update(
                "posts",
                1,
                &[
                    ("content", "interloper".into()),
                    ("lock_version", 99.into()),
                ],
            )?;
            Ok(())
        })
        .unwrap();
        let strategy = ValidationStrategy::HandCraftedAtomic(ValidationCheck::Version {
            column: "lock_version".into(),
        });
        assert_eq!(
            validated_write(&orm, &a, &[("content", "mine".into())], &strategy).unwrap(),
            CommitOutcome::Conflict
        );
        assert_eq!(
            orm.find_required("posts", 1)
                .unwrap()
                .get_str("content")
                .unwrap(),
            "interloper"
        );
    }

    #[test]
    fn non_atomic_detects_conflicts_that_happen_before_validation() {
        // The non-atomic strategy is not *always* wrong — changes landing
        // before the check are caught. (That's what made it look correct.)
        let orm = fixture(false);
        let a = orm.find_required("posts", 1).unwrap();
        orm.transaction(|t| {
            t.raw().update("posts", 1, &[("lock_version", 5.into())])?;
            Ok(())
        })
        .unwrap();
        let strategy = ValidationStrategy::HandCraftedNonAtomic {
            check: ValidationCheck::Version {
                column: "lock_version".into(),
            },
            pause_between: None,
        };
        assert_eq!(
            validated_write(&orm, &a, &[("content", "mine".into())], &strategy).unwrap(),
            CommitOutcome::Conflict
        );
    }
}
