//! An in-memory RDBMS with two engine profiles, built to exhibit the
//! concurrency-control behaviours that the paper's arguments rest on.
//!
//! The paper (§3.1.1, §3.3, §5) repeatedly contrasts ad hoc transactions
//! with MySQL and PostgreSQL database transactions. The contrast only makes
//! sense against engines that actually behave like those systems:
//!
//! * **MySQL-like** ([`EngineProfile::MySqlLike`]) — strict two-phase
//!   locking for writes and locking reads; plain reads are non-locking
//!   consistent (snapshot) reads, so Repeatable Read permits lost updates on
//!   application-level read–modify–writes (the paper's footnote in §3.1.1);
//!   Serializable turns plain reads into shared locking reads, so two
//!   concurrent RMWs deadlock on the shared→exclusive upgrade (§3.3.1);
//!   locking scans over non-unique indexes take gap (next-key) locks that
//!   block unrelated inserts into the same index interval (§3.3.2).
//! * **PostgreSQL-like** ([`EngineProfile::PostgresLike`]) — MVCC snapshots;
//!   Read Committed takes a fresh snapshot per statement; Repeatable Read is
//!   Snapshot Isolation with first-committer-wins aborts on write–write
//!   conflicts (§3.3.1); Serializable adds commit-time certification of
//!   read/write dependencies, so rw-antidependencies — including predicate
//!   reads at index-gap granularity — abort transactions under contention
//!   (§3.3.2, §5.2); session-scoped advisory locks model PostgreSQL's
//!   explicit user locks (§6, Table 7a).
//!
//! The store is multi-versioned; writes buffer in a per-transaction write
//! set and apply atomically at commit. A [`LatencyModel`] charges one SQL
//! round trip per statement and a durable flush per commit, so the Figure 2
//! and Figure 3 reproductions see the same decisive costs the paper
//! measured.
//!
//! [`LatencyModel`]: adhoc_sim::LatencyModel
//!
//! # Example
//!
//! ```
//! use adhoc_storage::{Column, ColumnType, Database, EngineProfile, IsolationLevel, Schema};
//!
//! let db = Database::in_memory(EngineProfile::PostgresLike);
//! db.create_table(Schema::new(
//!     "skus",
//!     vec![Column::new("id", ColumnType::Int), Column::new("qty", ColumnType::Int)],
//!     "id",
//! )?)?;
//!
//! // A FOR-UPDATE-coordinated read–modify–write (the Saleor pattern).
//! db.run(IsolationLevel::ReadCommitted, |t| {
//!     t.insert("skus", &[("id", 1.into()), ("qty", 10.into())])?;
//!     Ok(())
//! })?;
//! db.run(IsolationLevel::ReadCommitted, |t| {
//!     let sku = t.get_for_update("skus", 1)?.expect("seeded");
//!     let qty = sku.values[1].as_int();
//!     t.update("skus", 1, &[("qty", (qty - 3).into())])
//! })?;
//! assert_eq!(db.latest_committed("skus", 1)?.unwrap().values[1].as_int(), 7);
//! # Ok::<(), adhoc_storage::DbError>(())
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod engine;
pub(crate) mod epoch;
pub mod error;
pub mod escrow;
pub mod fasthash;
pub mod lock;
pub mod predicate;
pub mod recovery;
pub mod schema;
pub mod shard;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::Database;
pub use engine::{AccessEvent, DbConfig, EngineProfile, IsolationLevel, StatementObserver};
pub use error::DbError;
pub use escrow::EscrowReservation;
pub use lock::LockMode;
pub use predicate::Predicate;
pub use recovery::{recover, restart_from, RecoveryReport};
pub use schema::{Column, ColumnType, Row, Schema};
pub use shard::{shard_of, Footprint, ShardSet, SHARD_COUNT};
pub use txn::Transaction;
pub use value::Value;
pub use wal::{Wal, WalImage, WalRecord, WalStats, WalSyncPolicy, WalTail, WalWrite};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DbError>;
