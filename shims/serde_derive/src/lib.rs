//! No-op derive macros for the offline serde shim.
//!
//! Nothing in this workspace actually serializes, so the derives expand to
//! nothing; they exist solely so `#[derive(Serialize, Deserialize)]`
//! attributes keep compiling without crates.io access.

use proc_macro::TokenStream;

/// Expands to nothing (see module docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see module docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
