//! The pinned schedule-witness corpus: `tests/schedules/*.sched`.
//!
//! Each file pins one scenario to one concrete interleaving — the
//! schedule analog of a proptest regression file. For buggy scenarios the
//! witness is the explorer's minimized counterexample and must still
//! reproduce the exact failure message; for corrected scenarios it is a
//! recorded seeded-random schedule and must still pass. Either way, a
//! behavior change in any instrumented layer that shifts these
//! interleavings shows up here as a one-line `SCHED=` diff instead of a
//! flaky soak.
//!
//! Regenerate after an intentional change with:
//! `cargo test --test schedule_corpus regenerate_corpus -- --ignored`

mod common;

use adhoc_transactions::sim::sched::{record, replay, Explorer};
use common::{Expect, SEED};
use std::fs;
use std::path::PathBuf;

/// Search budget used when regenerating fail-witnesses; matches the
/// explorer suite so a regenerated corpus never needs a deeper search
/// than CI itself runs.
const BUDGET: usize = 128;

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/schedules"))
}

/// One parsed `.sched` file.
struct PinnedSchedule {
    scenario: String,
    expect: Expect,
    sched: String,
    /// Exact failure message (fail witnesses only).
    msg: Option<String>,
}

fn parse(path: &std::path::Path, text: &str) -> PinnedSchedule {
    let mut scenario = None;
    let mut expect = None;
    let mut sched = None;
    let mut msg = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .unwrap_or_else(|| panic!("{}: malformed line {line:?}", path.display()));
        let value = value.trim().to_string();
        match key.trim() {
            "scenario" => scenario = Some(value),
            "expect" => {
                expect = Some(match value.as_str() {
                    "fail" => Expect::Fail,
                    "pass" => Expect::Pass,
                    other => panic!("{}: unknown expect {other:?}", path.display()),
                })
            }
            "sched" => sched = Some(value),
            "msg" => msg = Some(value),
            other => panic!("{}: unknown key {other:?}", path.display()),
        }
    }
    PinnedSchedule {
        scenario: scenario.unwrap_or_else(|| panic!("{}: missing scenario", path.display())),
        expect: expect.unwrap_or_else(|| panic!("{}: missing expect", path.display())),
        sched: sched.unwrap_or_else(|| panic!("{}: missing sched", path.display())),
        msg,
    }
}

fn load_corpus() -> Vec<(PathBuf, PinnedSchedule)> {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "sched"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).unwrap();
            let pinned = parse(&path, &text);
            (path, pinned)
        })
        .collect()
}

/// Every stored witness still reproduces (fail) or still passes (pass),
/// bit-for-bit, from a fresh process.
#[test]
fn every_pinned_witness_still_holds() {
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "corpus must not be empty");
    for (path, pinned) in &corpus {
        let (expect, scenario) = common::lookup(&pinned.scenario).unwrap_or_else(|| {
            panic!(
                "{}: scenario {:?} not in the registry",
                path.display(),
                pinned.scenario
            )
        });
        assert_eq!(
            expect,
            pinned.expect,
            "{}: expectation diverged from the registry",
            path.display()
        );
        let outcome = replay(&pinned.sched, scenario);
        match pinned.expect {
            Expect::Fail => {
                let message = outcome.expect_err(&format!(
                    "{}: SCHED={} no longer reproduces the failure",
                    path.display(),
                    pinned.sched
                ));
                if let Some(msg) = &pinned.msg {
                    assert_eq!(
                        &message,
                        msg,
                        "{}: witness reproduced a different failure",
                        path.display()
                    );
                }
            }
            Expect::Pass => {
                assert_eq!(
                    outcome,
                    Ok(()),
                    "{}: SCHED={} regressed on a corrected scenario",
                    path.display(),
                    pinned.sched
                );
            }
        }
    }
}

/// Every registered scenario has a pinned witness — the corpus cannot
/// silently fall behind the registry.
#[test]
fn corpus_covers_every_scenario() {
    let corpus = load_corpus();
    for (name, _, _) in common::SCENARIOS {
        assert!(
            corpus.iter().any(|(_, p)| p.scenario == *name),
            "no pinned witness for scenario {name:?}; regenerate with \
             `cargo test --test schedule_corpus regenerate_corpus -- --ignored`"
        );
    }
}

/// Pins witnesses for scenarios that have none yet, leaving every existing
/// `.sched` file untouched. Run after *adding* a scenario — the usual
/// case — so the rest of the corpus stays byte-identical.
#[test]
#[ignore = "writes new files into tests/schedules/; run after adding a scenario"]
fn regenerate_missing_witnesses() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    for (name, expect, scenario) in common::SCENARIOS {
        if dir.join(format!("{name}.sched")).exists() {
            continue;
        }
        write_witness(&dir, name, *expect, *scenario);
    }
}

/// Rewrites the whole corpus from the current implementation: explore each
/// buggy scenario for its minimized counterexample, record one seeded
/// schedule for each corrected scenario. Run explicitly after an
/// intentional interleaving change.
#[test]
#[ignore = "rewrites tests/schedules/; run after intentional schedule changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    for (name, expect, scenario) in common::SCENARIOS {
        write_witness(&dir, name, *expect, *scenario);
    }
}

fn write_witness(dir: &std::path::Path, name: &str, expect: Expect, scenario: common::Scenario) {
    let (sched, msg) = match expect {
        Expect::Fail => {
            let cx = Explorer::new(SEED)
                .budget(BUDGET)
                .explore(scenario)
                .counter_example()
                .unwrap_or_else(|| panic!("{name}: no counterexample within {BUDGET}"));
            (cx.witness, Some(cx.message))
        }
        Expect::Pass => {
            let (witness, outcome) = record(SEED, scenario);
            assert_eq!(outcome, Ok(()), "{name}: recorded schedule failed");
            (witness, None)
        }
    };
    let expect_str = match expect {
        Expect::Fail => "fail",
        Expect::Pass => "pass",
    };
    let mut text = format!(
        "# Pinned schedule witness for `{name}` (expect: {expect_str}).\n\
         # Regenerate: cargo test --test schedule_corpus regenerate_corpus -- --ignored\n\
         scenario: {name}\n\
         expect: {expect_str}\n\
         sched: {sched}\n"
    );
    if let Some(msg) = msg {
        text.push_str(&format!("msg: {msg}\n"));
    }
    fs::write(dir.join(format!("{name}.sched")), text).unwrap();
}
