//! Confluence oracle: the coordination-avoiding paths keep their
//! invariants with no coordination to lean on.
//!
//! PR 9's tentpole claim is that `Mode::Confluent` commits commutative
//! counter updates with *zero* coordination (no lock, no OCC footprint,
//! no retry loop) and enforces budget invariants (`x >= 0`,
//! `uses <= max`) through escrow reservations alone. That claim is only
//! as good as its failure modes, so this oracle checks it from two
//! directions:
//!
//! 1. **Concurrency** — threads hammer a single hot row through the
//!    Confluent app paths. Counters must converge to the exact sum
//!    (commutativity means nothing is lost and nothing retries), and
//!    escrow budgets must grant *exactly* the budgeted amount: never an
//!    oversell, never a refused request while slots remain.
//! 2. **Crash-restart** — the same WAL-backed sweep the cured layer
//!    passes in `crash_recovery_oracle.rs`: every commit-adjacent crash
//!    point, under every crash kind (`CommitFailed`,
//!    `CrashAfterDurable`, `CrashBeforeDurable`, `TornWrite`). Deltas
//!    materialize into ordinary row images at commit, so recovery is
//!    delta-oblivious; the escrow ledger is volatile and re-derives
//!    from committed state. The oracle asserts durability of acked
//!    effects, conservation invariants after replay, serviceability
//!    (the restarted process resumes, with at-least-once duplicates
//!    bounded by the escrow cap), and — stronger than the ad hoc
//!    sweeps — that boot-fsck finds *nothing to repair*.
//!
//! The schedule-explorer half of the story lives in
//! `tests/schedule_corpus.rs` (the `delta-merge-crash` scenario, pinned
//! as witness 24). Replay one crash point in isolation with
//! `CONFLUENCE_ORACLE=app/kind/k` (e.g. `scm/torn-write/2`).

use adhoc_transactions::apps::{mastodon, saleor, scm_suite, spree, Mode};
use adhoc_transactions::core::checker::Report;
use adhoc_transactions::core::locks::MemLock;
use adhoc_transactions::kv::{Client, Store};
use adhoc_transactions::sim::{
    FaultKind, FaultPlan, FaultRule, LatencyModel, OpClass, VirtualClock,
};
use adhoc_transactions::storage::{restart_from, Database, DbConfig, EngineProfile};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const SEED: u64 = 0x5157_4d0d_2022_0612;

const CRASH_KINDS: &[FaultKind] = &[
    FaultKind::CommitFailed,
    FaultKind::CrashAfterDurable,
    FaultKind::CrashBeforeDurable,
    FaultKind::TornWrite,
];

fn wal_db() -> Database {
    Database::new(DbConfig::in_memory(EngineProfile::PostgresLike).with_wal())
}

fn mem_db() -> Database {
    Database::new(DbConfig::in_memory(EngineProfile::PostgresLike))
}

fn int_field(db: &Database, table: &str, id: i64, col: &str) -> Option<i64> {
    let schema = db.schema(table).ok()?;
    db.latest_committed(table, id)
        .ok()?
        .and_then(|row| row.get_int(&schema, col).ok())
}

fn mastodon_app(db: &Database, mode: Mode) -> mastodon::Mastodon {
    let orm = mastodon::setup(db).unwrap();
    let kv = Client::new(
        Store::new(),
        Arc::new(VirtualClock::new()),
        LatencyModel::zero(),
    );
    mastodon::Mastodon::new(orm, kv, Arc::new(MemLock::new()), mode)
}

// ---------------------------------------------------------------------------
// Part 1: convergence and budget exactness under concurrency.
// ---------------------------------------------------------------------------

/// Fig. 1c without the loop: concurrent votes are commutative deltas, so
/// every vote lands exactly once — no retry, no lost update — and the
/// tallies converge to the exact per-choice sums.
#[test]
fn confluent_poll_tallies_converge_exactly() {
    let db = mem_db();
    let app = Arc::new(mastodon_app(&db, Mode::Confluent));
    app.seed_poll(1).unwrap();
    let threads = 8;
    let votes = 25;
    std::thread::scope(|s| {
        for t in 0..threads {
            let app = app.clone();
            s.spawn(move || {
                for j in 0..votes {
                    let choice = if (t + j) % 2 == 0 {
                        mastodon::Choice::A
                    } else {
                        mastodon::Choice::B
                    };
                    // Any Err here is a failed commit: the Confluent vote
                    // path has no retry loop, so success proves zero
                    // conflicts, not conflicts-eventually-won.
                    app.vote(1, choice).unwrap();
                }
            });
        }
    });
    let (a, b) = app.poll_totals(1).unwrap();
    assert_eq!((a, b), (100, 100), "tallies must converge to exact sums");
    let boot = app.recover_on_boot();
    assert!(boot.is_clean() && boot.fixed == 0, "{boot:?}");
}

/// Fig. 1b as escrow: `redeems <= max_redeems` held by reserving slots,
/// not by a lock. Contenders get *exactly* the budget — no over-redeem,
/// and no refusal while slots remain (reservations either confirm or
/// are released back).
#[test]
fn escrow_invites_grant_exactly_the_budget() {
    let db = mem_db();
    let app = Arc::new(mastodon_app(&db, Mode::Confluent));
    app.seed_invite(1, 10).unwrap();
    let granted = AtomicI64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (app, granted) = (app.clone(), &granted);
            s.spawn(move || {
                for _ in 0..8 {
                    if app.redeem_invite(1).unwrap() {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(granted.load(Ordering::Relaxed), 10, "exactly the budget");
    assert_eq!(int_field(&db, "invites", 1, "redeems"), Some(10));
    assert_eq!(int_field(&db, "invites", 1, "slots"), Some(0));
    assert!(app.invite_within_limit(1).unwrap());
    let boot = app.recover_on_boot();
    assert!(boot.is_clean() && boot.fixed == 0, "{boot:?}");
}

/// §3.2.1 as escrow: sixteen concurrent single-unit allocations against
/// ten units of stock. The stock decrement takes no `FOR UPDATE` lock;
/// the escrow reservation alone must stop the oversell at exactly zero.
#[test]
fn escrow_stock_allocation_never_oversells() {
    let db = mem_db();
    let orm = saleor::setup(&db).unwrap();
    let app = Arc::new(saleor::Saleor::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::Confluent,
    ));
    app.seed_stock(1, 10).unwrap();
    for item in 1..=16 {
        app.seed_allocation(item, 1, 1).unwrap();
    }
    let granted = AtomicI64::new(0);
    std::thread::scope(|s| {
        for item in 1..=16 {
            let (app, granted) = (app.clone(), &granted);
            s.spawn(move || {
                if app.allocate(item).unwrap() {
                    granted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(granted.load(Ordering::Relaxed), 10, "exactly the stock");
    assert_eq!(app.stock_qty(1).unwrap(), 0, "stock drains to exactly zero");
    let boot = app.recover_on_boot();
    assert!(boot.is_clean() && boot.fixed == 0, "{boot:?}");
}

/// §3.1.1's checkout under escrow: concurrent single-unit orders against
/// one hot SKU drain it to exactly zero, and the cold cascade rows
/// (product/category touches, order state) ride along blind.
#[test]
fn spree_confluent_checkout_drains_stock_exactly() {
    let db = mem_db();
    let orm = spree::setup(&db).unwrap();
    let app = Arc::new(spree::Spree::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::Confluent,
    ));
    app.seed_catalog(1, 1, &[1, 2], 50).unwrap();
    let threads = 8;
    for order in 1..=threads {
        app.seed_order(order).unwrap();
    }
    let granted = AtomicI64::new(0);
    std::thread::scope(|s| {
        for order in 1..=threads {
            let (app, granted) = (app.clone(), &granted);
            s.spawn(move || {
                for _ in 0..10 {
                    if app.decrement_stock(order, 1, 1).unwrap() {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(granted.load(Ordering::Relaxed), 50, "exactly the stock");
    assert_eq!(app.sku_quantity(1).unwrap(), 0);
    let boot = app.recover_on_boot();
    assert!(boot.is_clean() && boot.fixed == 0, "{boot:?}");
}

/// Mixed credits and debits on one hot account: credits are pure
/// deposits, debits reserve first. The final balance must equal the
/// seed plus every credit minus exactly the granted debits, never dip
/// below zero, and agree with the escrow ledger's view.
#[test]
fn scm_balance_conserves_under_mixed_traffic() {
    let db = mem_db();
    let orm = scm_suite::setup(&db).unwrap();
    let app = Arc::new(scm_suite::ScmSuite::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::Confluent,
    ));
    app.seed_account(1, 50).unwrap();
    let debits = AtomicI64::new(0);
    std::thread::scope(|s| {
        for t in 0..8 {
            let (app, debits) = (app.clone(), &debits);
            s.spawn(move || {
                for _ in 0..10 {
                    if t % 2 == 0 {
                        assert!(app.adjust_balance(1, 2).unwrap(), "credits always land");
                    } else if app.adjust_balance(1, -3).unwrap() {
                        debits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let balance = app.balance(1).unwrap();
    let expected = 50 + 40 * 2 - 3 * debits.load(Ordering::Relaxed);
    assert_eq!(balance, expected, "conservation: seed + credits - grants");
    assert!(balance >= 0, "the budget invariant");
    assert_eq!(
        db.escrow_available("accounts", 1, "balance").unwrap(),
        balance,
        "the volatile ledger agrees with committed state at rest"
    );
    let boot = app.recover_on_boot();
    assert!(boot.is_clean() && boot.fixed == 0, "{boot:?}");
}

// ---------------------------------------------------------------------------
// Part 2: crash-restart sweeps over the Confluent paths.
// ---------------------------------------------------------------------------

/// What the audit closure gets to see after a (possibly crashed,
/// possibly resumed) run.
struct Audit<'a> {
    /// Indexes of ops acknowledged with effect before the crash. Ops run
    /// in order, so this is always a prefix.
    acked: &'a [usize],
    /// The op the injected crash surfaced in; `None` on the fault-free
    /// baseline. Its commit may or may not have landed durably
    /// (§3.4.2's ambiguity), so audits allow either outcome.
    crashed: Option<usize>,
    /// After resume, every op has been attempted and acknowledged at
    /// least once; the crashed op may have applied twice
    /// (at-least-once delivery) unless an escrow budget caps it.
    resumed: bool,
}

impl Audit<'_> {
    /// `[lo, hi]` bounds for a counter fed by the ops in `ids`: at least
    /// every acked feeding op, at most one ambiguous duplicate from the
    /// crashed op.
    fn bounds(&self, ids: &[usize]) -> (i64, i64) {
        let lo = if self.resumed {
            ids.len() as i64
        } else {
            ids.iter().filter(|i| self.acked.contains(i)).count() as i64
        };
        let dup = self.crashed.is_some_and(|c| ids.contains(&c)) as i64;
        (lo, lo + dup)
    }
}

/// One workload step: `Ok(true)` = acknowledged with effect,
/// `Ok(false)` = acknowledged no-op, `Err` = the injected crash.
type Op = Box<dyn Fn() -> Result<bool, String>>;

/// Names of the invariants violated right now, given what the run
/// acknowledged.
type AuditFn = Box<dyn Fn(&Audit) -> Vec<String>>;

/// One Confluent workload bound to a database instance.
struct Driver {
    /// Sequential workload steps.
    ops: Vec<Op>,
    /// The invariant audit.
    audit: AuditFn,
    /// The app's boot-fsck pass in fix mode.
    recover: Box<dyn Fn() -> Report>,
}

/// Build a workload's tables (+ seed data when `seed`) on `db`.
/// Restarted databases pass `seed = false`: their rows come from WAL
/// replay.
type Case = fn(&Database, bool) -> Driver;

fn check(violations: &mut Vec<String>, ok: bool, name: impl Fn() -> String) {
    if !ok {
        violations.push(name());
    }
}

fn fsck_violations(report: &Report) -> Vec<String> {
    report.violations.iter().map(|v| v.to_string()).collect()
}

/// Mastodon: poll tallies (pure counters) interleaved with invite
/// redemptions (escrow budget of 3 against 3 demands).
fn mastodon_case(db: &Database, seed: bool) -> Driver {
    let app = Arc::new(mastodon_app(db, Mode::Confluent));
    if seed {
        app.seed_poll(1).unwrap();
        app.seed_invite(1, 3).unwrap();
    }
    const A_VOTES: &[usize] = &[0, 4];
    const B_VOTES: &[usize] = &[2];
    const REDEEMS: &[usize] = &[1, 3, 5];
    let vote = |app: &Arc<mastodon::Mastodon>, c| {
        let app = app.clone();
        Box::new(move || app.vote(1, c).map(|_| true).map_err(|e| format!("{e:?}"))) as Op
    };
    let redeem = |app: &Arc<mastodon::Mastodon>| {
        let app = app.clone();
        Box::new(move || app.redeem_invite(1).map_err(|e| format!("{e:?}"))) as Op
    };
    let db = db.clone();
    Driver {
        ops: vec![
            vote(&app, mastodon::Choice::A),
            redeem(&app),
            vote(&app, mastodon::Choice::B),
            redeem(&app),
            vote(&app, mastodon::Choice::A),
            redeem(&app),
        ],
        audit: Box::new({
            let db = db.clone();
            move |audit| {
                let mut v = Vec::new();
                for (col, ids) in [("tally_a", A_VOTES), ("tally_b", B_VOTES)] {
                    let got = int_field(&db, "polls", 1, col).unwrap_or(-1);
                    let (lo, hi) = audit.bounds(ids);
                    check(&mut v, lo <= got && got <= hi, || {
                        format!("{col}={got} outside [{lo}, {hi}]")
                    });
                }
                let redeems = int_field(&db, "invites", 1, "redeems").unwrap_or(-1);
                let slots = int_field(&db, "invites", 1, "slots").unwrap_or(-1);
                let (lo, hi) = audit.bounds(REDEEMS);
                check(&mut v, lo <= redeems && redeems <= hi, || {
                    format!("redeems={redeems} outside [{lo}, {hi}]")
                });
                // The escrow cap holds even against an at-least-once
                // duplicate: a re-redeem of a durably-landed crash finds
                // the slots already consumed.
                check(&mut v, redeems <= 3, || {
                    format!("over-redeemed: {redeems} > max 3")
                });
                check(&mut v, slots >= 0, || format!("slots={slots} negative"));
                check(&mut v, slots + redeems == 3, || {
                    format!("slots {slots} + redeems {redeems} != max 3")
                });
                v.extend(fsck_violations(&mastodon::boot_fsck().check(&db)));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

/// Saleor: three allocations (4 + 3 + 3 units) against ten units of
/// stock. The allocation row and the stock delta commit atomically, so
/// conservation is exact at every crash point — and the consumed
/// allocation row makes the resume retry idempotent.
fn saleor_case(db: &Database, seed: bool) -> Driver {
    const ALLOC_QTY: &[i64] = &[4, 3, 3];
    let orm = saleor::setup(db).unwrap();
    let app = Arc::new(saleor::Saleor::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::Confluent,
    ));
    if seed {
        app.seed_stock(1, 10).unwrap();
        for (i, qty) in ALLOC_QTY.iter().enumerate() {
            app.seed_allocation(i as i64 + 1, 1, *qty).unwrap();
        }
    }
    let db = db.clone();
    let alloc_left = {
        let db = db.clone();
        move |item: i64| -> Option<i64> {
            let schema = db.schema("allocations").ok()?;
            db.dump_table("allocations")
                .ok()?
                .iter()
                .find(|(_, r)| r.get_int(&schema, "item_id").ok() == Some(item))
                .and_then(|(_, r)| r.get_int(&schema, "qty").ok())
        }
    };
    let ops = (1..=3)
        .map(|item| {
            let app = app.clone();
            Box::new(move || app.allocate(item).map_err(|e| format!("{e:?}"))) as Op
        })
        .collect();
    Driver {
        ops,
        audit: Box::new({
            let db = db.clone();
            move |audit| {
                let mut v = Vec::new();
                let stock = int_field(&db, "stocks", 1, "qty").unwrap_or(-1);
                check(&mut v, stock >= 0, || format!("stock={stock} oversold"));
                let consumed: i64 = ALLOC_QTY
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| alloc_left(*i as i64 + 1) == Some(0))
                    .map(|(_, qty)| qty)
                    .sum();
                // Exact at *every* crash point: the allocation update and
                // the stock delta share one commit.
                check(&mut v, stock == 10 - consumed, || {
                    format!("stock {stock} != 10 - consumed {consumed}")
                });
                for &i in audit.acked {
                    check(&mut v, alloc_left(i as i64 + 1) == Some(0), || {
                        format!("acked allocation {i} not consumed")
                    });
                }
                if audit.resumed {
                    check(&mut v, stock == 0, || {
                        format!("resume left stock at {stock}, expected 0")
                    });
                }
                v.extend(fsck_violations(&saleor::boot_fsck().check(&db)));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

const SCM_DELTAS: &[i64] = &[5, -3, 2, -4];

/// SCM: credits and debits on one account seeded at 10. Deposits are
/// plain deltas; debits hold an escrow reservation across the commit.
/// Beyond conservation, the audit probes the ledger itself: a restarted
/// engine must re-derive availability from committed state.
fn scm_case(db: &Database, seed: bool) -> Driver {
    let orm = scm_suite::setup(db).unwrap();
    let app = Arc::new(scm_suite::ScmSuite::new(
        orm,
        Arc::new(MemLock::new()),
        Mode::Confluent,
    ));
    if seed {
        app.seed_account(1, 10).unwrap();
    }
    let db = db.clone();
    let ops = SCM_DELTAS
        .iter()
        .map(|&d| {
            let app = app.clone();
            Box::new(move || app.adjust_balance(1, d).map_err(|e| format!("{e:?}"))) as Op
        })
        .collect();
    Driver {
        ops,
        audit: Box::new({
            let db = db.clone();
            move |audit| {
                let mut v = Vec::new();
                let balance = int_field(&db, "accounts", 1, "balance").unwrap_or(-1);
                check(&mut v, balance >= 0, || format!("balance={balance} < 0"));
                let applied: i64 = if audit.resumed {
                    SCM_DELTAS.iter().sum()
                } else {
                    audit.acked.iter().map(|&i| SCM_DELTAS[i]).sum()
                };
                let dup = audit.crashed.map(|c| SCM_DELTAS[c]).unwrap_or(0);
                check(
                    &mut v,
                    balance == 10 + applied || balance == 10 + applied + dup,
                    || format!("balance {balance} != 10 + {applied} (+ maybe {dup})"),
                );
                let avail = db.escrow_available("accounts", 1, "balance").unwrap_or(-1);
                check(&mut v, avail == balance, || {
                    format!("escrow ledger says {avail}, committed balance is {balance}")
                });
                v.extend(fsck_violations(&scm_suite::boot_fsck().check(&db)));
                v
            }
        }),
        recover: Box::new(move || app.recover_on_boot()),
    }
}

fn witness_filter() -> Option<(String, String, u64)> {
    let spec = std::env::var("CONFLUENCE_ORACLE").ok()?;
    let mut parts = spec.splitn(3, '/');
    Some((
        parts.next()?.to_string(),
        parts.next()?.to_string(),
        parts.next()?.parse().ok()?,
    ))
}

/// Fault-free baseline: every op acks with effect, the audit is clean,
/// and the workload exposes `commits` crash points.
fn baseline(name: &str, case: Case) -> u64 {
    let db = wal_db();
    let plan = FaultPlan::new_disabled(SEED, vec![]);
    db.inject_faults(plan.clone());
    let driver = case(&db, true);
    plan.enable();
    let mut acked = Vec::new();
    for (i, op) in driver.ops.iter().enumerate() {
        let effect = op().unwrap_or_else(|e| panic!("{name}: baseline op {i} failed: {e}"));
        assert!(effect, "{name}: baseline op {i} must take effect");
        acked.push(i);
    }
    let commits = plan.ops_seen(OpClass::DbCommit);
    plan.disable();
    let violations = (driver.audit)(&Audit {
        acked: &acked,
        crashed: None,
        resumed: false,
    });
    assert!(
        violations.is_empty(),
        "{name}: baseline violates {violations:?}"
    );
    assert!(
        commits >= driver.ops.len() as u64,
        "{name}: too few commits"
    );
    commits
}

/// Crash at commit `k` with `kind`, restart, replay the WAL, and hold
/// the Confluent layer to the oracle's four properties: acked effects
/// durable, invariants clean, zero boot-fsck repairs, and a resumable
/// workload.
fn crash_at(name: &str, case: Case, kind: FaultKind, k: u64) {
    let witness = format!("{name}/{}/{k}", kind.name());

    let db1 = wal_db();
    let plan = FaultPlan::new_disabled(SEED, vec![FaultRule::at_ops(kind, &[k])]);
    db1.inject_faults(plan.clone());
    let driver1 = case(&db1, true);
    plan.enable();
    let mut acked = Vec::new();
    let mut crashed = None;
    for (i, op) in driver1.ops.iter().enumerate() {
        match op() {
            Ok(effect) => {
                if effect {
                    acked.push(i);
                }
            }
            Err(_) => {
                crashed = Some(i);
                break;
            }
        }
    }
    assert_eq!(
        plan.fired(),
        1,
        "[{witness}] the fault must fire exactly once"
    );
    let crashed_op = crashed.expect("a fired crash fault surfaces as an op error");

    // Restart: fresh engine, schema setup, WAL replay, boot fsck.
    let db2 = wal_db();
    let driver2 = case(&db2, false);
    restart_from(&db1, &db2).unwrap_or_else(|e| panic!("[{witness}] recovery replay failed: {e}"));
    let boot = (driver2.recover)();
    // Deltas become ordinary post-images at commit; recovery has nothing
    // to reconstruct and fsck must find nothing to repair.
    assert!(
        boot.is_clean() && boot.fixed == 0,
        "[{witness}] confluent recovery must need no fsck repairs: {boot:?}"
    );
    let violations = (driver2.audit)(&Audit {
        acked: &acked,
        crashed: Some(crashed_op),
        resumed: false,
    });
    assert!(
        violations.is_empty(),
        "[{witness}] invariants broken after recovery: {violations:?}"
    );

    // Serviceability: resume from the crashed op (at-least-once). The
    // fresh escrow ledger re-derives from committed state, so the
    // retries must be grantable or cleanly refused, never an error.
    for (i, op) in driver2.ops.iter().enumerate().skip(crashed_op) {
        op().unwrap_or_else(|e| panic!("[{witness}] resume op {i} failed: {e}"));
    }
    let violations = (driver2.audit)(&Audit {
        acked: &acked,
        crashed: Some(crashed_op),
        resumed: true,
    });
    assert!(
        violations.is_empty(),
        "[{witness}] invariants broken after resume: {violations:?}"
    );
}

fn sweep(name: &str, case: Case) {
    let commits = baseline(name, case);
    let filter = witness_filter();
    for &kind in CRASH_KINDS {
        for k in 0..commits {
            if let Some((app, kname, kk)) = &filter {
                if app != name || kname != kind.name() || *kk != k {
                    continue;
                }
            }
            crash_at(name, case, kind, k);
        }
    }
}

#[test]
fn mastodon_confluent_crash_sweep_is_clean() {
    sweep("mastodon", mastodon_case);
}

#[test]
fn saleor_confluent_crash_sweep_conserves_stock() {
    sweep("saleor", saleor_case);
}

#[test]
fn scm_confluent_crash_sweep_rederives_the_ledger() {
    sweep("scm", scm_case);
}
