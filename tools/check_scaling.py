#!/usr/bin/env python3
"""Scaling-regression gate over fresh BENCH_fig2/fig3 runs.

Compares a just-measured sweep (any duty cycle — CI uses the smoke
windows) against the committed pre-refactor baselines in tools/baselines/
and against its own 1-thread row, and fails loudly when the sharded spines
regress. Three checks:

  1. fig2 storage-commit scaling, disjoint keys, 1T -> 8T. The demanded
     ratio is hardware-aware: with 8+ CPUs the full 3x of the issue is
     demanded (inside the tolerance band); in between, no-worse-than-
     flat. On a single-CPU box checks 1-2 are skipped outright — eight
     workers time-slicing one core measure the scheduler, not the engine,
     and smoke windows swing the ratio severalfold run to run; the
     committed full-window artifacts carry the evidence there.
  2. fig2 8T disjoint must beat the committed pre-shard baseline
     (tools/baselines/fig2_pre_shard.json) within tolerance — the sharded
     + epoch-batched commit path can never fall back to the global-mutex
     era.
  3. fig3 KV disjoint throughput must meet or exceed the committed
     pre-stripe baseline (tools/baselines/fig3_pre_shard.json) at EVERY
     thread count within tolerance — the lock-shared read path has to
     recover what the striping refactor originally cost.

With a BENCH_occ.json argument, three more checks gate the §7 cure layer
(orm::occ) against the hand-rolled AHT it replaces:

  4. cured >= adhoc on disjoint keys at every thread count (within
     tolerance) — the optimistic path must not tax the uncontended case.
  5. cured >= 0.9x adhoc on the hot key at every thread count (within
     tolerance) — the retry loop stays competitive with the serialized
     lock queue (in practice it wins by integer factors: no think-time
     under a lock).
  6. cured 8T disjoint must beat the committed pre-cure AHT floor
     (tools/baselines/occ_pre_cure.json) within tolerance.

With a BENCH_confluence.json argument, three more checks gate the PR-9
coordination-avoiding layer (commutative deltas + escrow) against both
coordinated implementations of the same hot-counter increment:

  7. confluent abort_rate == 0 on EVERY row — commutative deltas carry no
     read footprint, so nothing ever validates or rolls back. This is a
     correctness property of the mechanism, not a throughput number, and
     is demanded on any hardware.
  8. On the single hot key, confluent >= 2x cured at 8 threads (within
     tolerance) — the headline: dropping the retry loop beats retrying
     it. On a single-CPU box the demand relaxes to no-worse-than-cured
     (time-slicing hides the coordination gap the check measures).
  9. On disjoint keys, confluent >= cured at every thread count (within
     tolerance) — avoiding coordination must be free when there is no
     coordination to avoid. And 8T same_key must beat the committed
     floor in tools/baselines/confluence.json (the cured row: the
     coordination ceiling this layer exists to clear), skipped on a
     single-CPU box like check 2.

Tolerance: SCALING_GATE_TOL (fractional, default 0.25) absorbs the noise
of short smoke windows; the committed full-window artifacts have much
wider margins than the band.

Usage: check_scaling.py <BENCH_fig2.json> <BENCH_fig3.json> [BENCH_occ.json] [BENCH_confluence.json] [baseline_dir]
Exits non-zero on any regression.
"""

import json
import os
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["threads"], r["pattern"]): r["throughput_ops"] for r in doc["rows"]}


def load_occ_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (r["threads"], r["pattern"], r.get("strategy", "adhoc")): r["throughput_ops"]
        for r in doc["rows"]
    }


def load_abort_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (r["threads"], r["pattern"], r.get("strategy", "adhoc")): r.get("abort_rate", 0.0)
        for r in doc["rows"]
    }


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    fig2_path, fig3_path = sys.argv[1], sys.argv[2]
    rest = sys.argv[3:]
    occ_path = rest.pop(0) if rest and rest[0].endswith(".json") else None
    conf_path = rest.pop(0) if rest and rest[0].endswith(".json") else None
    baseline_dir = (
        rest[0]
        if rest
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines")
    )
    tol = float(os.environ.get("SCALING_GATE_TOL", "0.25"))
    cpus = os.cpu_count() or 1

    fig2 = load_rows(fig2_path)
    fig3 = load_rows(fig3_path)
    base2 = load_rows(os.path.join(baseline_dir, "fig2_pre_shard.json"))
    base3 = load_rows(os.path.join(baseline_dir, "fig3_pre_shard.json"))

    failures = []

    # -- Check 1: fig2 disjoint thread scaling, hardware-aware.
    t1 = fig2[(1, "disjoint")]
    t8 = fig2[(8, "disjoint")]
    ratio = t8 / t1 if t1 > 0 else 0.0
    if cpus == 1:
        # Eight workers time-slicing one core measure the scheduler, not
        # the engine: short smoke windows swing the 1T->8T ratio by 5x+
        # run to run. Thread-scaling evidence on such a box comes from
        # the committed full-window artifacts, not this sweep.
        print(
            f"[skip] fig2 disjoint 1T->8T: {ratio:.2f}x measured, "
            "unjudgeable on a single-CPU box"
        )
        print("[skip] fig2 disjoint 8T absolute floor: single-CPU box")
    else:
        if cpus >= 8:
            need = 3.0 * (1.0 - tol)
            label = f">= {need:.2f}x (3x within tolerance, {cpus} CPUs)"
        else:
            need = 1.0 - tol
            label = f">= {need:.2f}x (no-worse-than-flat, {cpus} CPUs)"
        status = "ok" if ratio >= need else "FAIL"
        print(f"[{status}] fig2 disjoint 1T->8T: {ratio:.2f}x, demanded {label}")
        if ratio < need:
            failures.append("fig2 disjoint 1T->8T scaling")

        # -- Check 2: fig2 8T disjoint vs the pre-shard (global-mutex) era.
        floor = base2[(8, "disjoint")] * (1.0 - tol)
        status = "ok" if t8 >= floor else "FAIL"
        print(
            f"[{status}] fig2 disjoint 8T: {t8:,.0f} ops/s "
            f"vs pre-shard floor {floor:,.0f}"
        )
        if t8 < floor:
            failures.append("fig2 8T disjoint vs pre-shard baseline")

    # -- Check 3: fig3 KV disjoint vs the pre-stripe baseline, every count.
    for (threads, pattern), base_ops in sorted(base3.items()):
        if pattern != "disjoint":
            continue
        fresh = fig3[(threads, pattern)]
        floor = base_ops * (1.0 - tol)
        status = "ok" if fresh >= floor else "FAIL"
        print(
            f"[{status}] fig3 disjoint {threads}T: {fresh:,.0f} ops/s "
            f"vs pre-stripe floor {floor:,.0f}"
        )
        if fresh < floor:
            failures.append(f"fig3 {threads}T disjoint vs pre-stripe baseline")

    # -- Checks 4-6: the cure-layer ablation, when BENCH_occ.json is given.
    if occ_path:
        occ = load_occ_rows(occ_path)
        base_occ = load_occ_rows(os.path.join(baseline_dir, "occ_pre_cure.json"))
        threads = sorted({t for (t, _, _) in occ})

        # 4. Disjoint: the optimistic layer must not tax uncontended work.
        for t in threads:
            adhoc = occ[(t, "disjoint", "adhoc")]
            cured = occ[(t, "disjoint", "cured")]
            floor = adhoc * (1.0 - tol)
            status = "ok" if cured >= floor else "FAIL"
            print(
                f"[{status}] occ disjoint {t}T: cured {cured:,.0f} ops/s "
                f"vs adhoc floor {floor:,.0f}"
            )
            if cured < floor:
                failures.append(f"occ {t}T disjoint cured vs adhoc")

        # 5. Hot key: the retry loop stays within 0.9x of the lock queue.
        for t in threads:
            adhoc = occ[(t, "same_key", "adhoc")]
            cured = occ[(t, "same_key", "cured")]
            floor = 0.9 * adhoc * (1.0 - tol)
            status = "ok" if cured >= floor else "FAIL"
            print(
                f"[{status}] occ same_key {t}T: cured {cured:,.0f} ops/s "
                f"vs 0.9x adhoc floor {floor:,.0f}"
            )
            if cured < floor:
                failures.append(f"occ {t}T same_key cured vs adhoc")

        # 6. Absolute floor: cured 8T disjoint vs the committed pre-cure AHT.
        cured8 = occ[(8, "disjoint", "cured")]
        floor = base_occ[(8, "disjoint", "adhoc")] * (1.0 - tol)
        status = "ok" if cured8 >= floor else "FAIL"
        print(
            f"[{status}] occ disjoint 8T: cured {cured8:,.0f} ops/s "
            f"vs pre-cure floor {floor:,.0f}"
        )
        if cured8 < floor:
            failures.append("occ 8T disjoint vs pre-cure baseline")

    # -- Checks 7-9: the confluence ablation, when BENCH_confluence.json
    #    is given.
    if conf_path:
        conf = load_occ_rows(conf_path)
        aborts = load_abort_rows(conf_path)
        threads = sorted({t for (t, _, _) in conf})

        # 7. Zero aborts: a mechanism property, demanded on any hardware.
        for (t, pattern, strategy), rate in sorted(aborts.items()):
            if strategy != "confluent":
                continue
            status = "ok" if rate == 0.0 else "FAIL"
            print(
                f"[{status}] confluence {pattern} {t}T: "
                f"confluent abort_rate {rate:.6f}, demanded 0"
            )
            if rate != 0.0:
                failures.append(f"confluence {t}T {pattern} confluent abort rate")

        # 8. Hot key at 8T: drop the retry loop, clear the cured layer 2x.
        cured_hot = conf[(8, "same_key", "cured")]
        conf_hot = conf[(8, "same_key", "confluent")]
        if cpus == 1:
            need = cured_hot * (1.0 - tol)
            label = "no-worse-than-cured (single-CPU box)"
        else:
            need = 2.0 * cured_hot * (1.0 - tol)
            label = f"2x cured within tolerance ({cpus} CPUs)"
        status = "ok" if conf_hot >= need else "FAIL"
        print(
            f"[{status}] confluence same_key 8T: confluent {conf_hot:,.0f} ops/s "
            f"vs {need:,.0f} demanded ({label})"
        )
        if conf_hot < need:
            failures.append("confluence 8T same_key confluent vs cured")

        # 9a. Disjoint parity: avoidance is free when nothing contends.
        for t in threads:
            cured = conf[(t, "disjoint", "cured")]
            confluent = conf[(t, "disjoint", "confluent")]
            floor = cured * (1.0 - tol)
            status = "ok" if confluent >= floor else "FAIL"
            print(
                f"[{status}] confluence disjoint {t}T: confluent "
                f"{confluent:,.0f} ops/s vs cured floor {floor:,.0f}"
            )
            if confluent < floor:
                failures.append(f"confluence {t}T disjoint confluent vs cured")

        # 9b. Absolute floor: 8T hot key vs the committed coordination
        #     ceiling (the baseline's cured row).
        if cpus == 1:
            print("[skip] confluence same_key 8T absolute floor: single-CPU box")
        else:
            base_conf = load_occ_rows(os.path.join(baseline_dir, "confluence.json"))
            floor = base_conf[(8, "same_key", "cured")] * (1.0 - tol)
            status = "ok" if conf_hot >= floor else "FAIL"
            print(
                f"[{status}] confluence same_key 8T: confluent {conf_hot:,.0f} ops/s "
                f"vs committed cured ceiling {floor:,.0f}"
            )
            if conf_hot < floor:
                failures.append("confluence 8T same_key vs committed baseline")

    if failures:
        print("scaling gate FAILED: " + "; ".join(failures))
        sys.exit(1)
    print("scaling gate passed")


if __name__ == "__main__":
    main()
