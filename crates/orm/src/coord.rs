//! The unified coordination façade — the paper's second §7 cure.
//!
//! Table 7a shows the studied applications reaching for whatever
//! coordination primitive their stack happened to expose: Redis `SETNX`
//! leases, PostgreSQL advisory locks, hand-built lock tables, `FOR
//! UPDATE`, per-operation isolation hints. Each app re-implements
//! acquisition, release, crash reclaim, and fencing — and each gets a
//! different subset wrong (§4.1). [`Coordinator`] routes all of them
//! through one interface:
//!
//! * **KV leases** (fenced, per the §3.4.2 TTL-steal analysis): when a
//!   [`Client`] is attached, [`Coordinator::lease`] acquires a TTL lease
//!   with a monotonic fencing token; [`CoordGuard::fenced_set`] guards
//!   writes against stale holders.
//! * **Advisory locks**: [`Coordinator::user_lock`] uses the engine's
//!   session-scoped user locks when supported.
//! * **Graceful fallback**: no KV client → a lease degrades to a user
//!   lock; no advisory support → a database-table lock (the fallback the
//!   paper explicitly calls for), implemented here with the boot-safe
//!   read-check-write idiom.
//! * **In-transaction hints**: explicit row locks, table locks, and
//!   per-operation isolation reads, capability-gated per Table 7a.
//!
//! `adhoc-core`'s `HintProxy` is now a thin compatibility shim over this
//! module; the cured app variants use it directly.

use crate::error::OrmError;
use crate::Result;
use adhoc_kv::Client;
use adhoc_sim::RetryPolicy;
use adhoc_storage::db::SessionId;
use adhoc_storage::{
    Column, ColumnType, Database, DbError, LockMode, Row, Schema, Transaction, Value,
};
use std::time::Duration;

/// Capability flags for the engine behind the façade (Table 7a rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordSupport {
    /// Explicit user (advisory) locks: PostgreSQL, MySQL, Oracle.
    pub user_locks: bool,
    /// Explicit table locks.
    pub table_locks: bool,
    /// Explicit row locks (`SELECT … FOR UPDATE`).
    pub row_locks: bool,
    /// Per-operation isolation (SQL Server / Db2 table hints).
    pub per_op_isolation: bool,
}

impl CoordSupport {
    /// Everything available (our engines implement all four).
    pub fn full() -> Self {
        Self {
            user_locks: true,
            table_locks: true,
            row_locks: true,
            per_op_isolation: true,
        }
    }

    /// An engine without advisory locks (e.g., SQL Server per Table 7a) —
    /// exercises the fallback path.
    pub fn without_user_locks() -> Self {
        Self {
            user_locks: false,
            ..Self::full()
        }
    }

    /// An engine without per-operation isolation (e.g., PostgreSQL per
    /// Table 7a).
    pub fn without_per_op_isolation() -> Self {
        Self {
            per_op_isolation: false,
            ..Self::full()
        }
    }
}

/// Table holding fallback lock rows (created idempotently on first use).
const LOCK_TABLE: &str = "__coord_locks";

/// How long a lease/fallback acquisition polls before giving up.
const ACQUIRE_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll interval for busy lease/fallback keys.
const ACQUIRE_POLL: Duration = Duration::from_micros(200);

/// A held coordination guard, released on [`unlock`](Self::unlock) or
/// drop. Which mechanism backs it is observable via
/// [`mechanism`](Self::mechanism) — callers never need to care.
pub enum CoordGuard {
    /// Engine advisory lock held by a dedicated session.
    Advisory {
        /// Database the session lives on.
        db: Database,
        /// The advisory-lock session.
        session: SessionId,
        /// Hashed lock key.
        key: i64,
        /// Whether release already happened.
        released: bool,
    },
    /// Database-table fallback lock row.
    Table {
        /// Database holding the lock table.
        db: Database,
        /// Lock-row primary key (hash of the user key).
        id: i64,
        /// Whether release already happened.
        released: bool,
    },
    /// Fenced KV lease.
    Lease {
        /// The KV client the lease lives on.
        kv: Client,
        /// Lease key.
        key: String,
        /// Holder identity.
        owner: String,
        /// Monotonic fencing token granted with the lease.
        token: u64,
        /// Whether release already happened.
        released: bool,
    },
}

impl CoordGuard {
    /// Which mechanism backs this guard (diagnostics / tests).
    pub fn mechanism(&self) -> &'static str {
        match self {
            CoordGuard::Advisory { .. } => "advisory",
            CoordGuard::Table { .. } => "db-table-fallback",
            CoordGuard::Lease { .. } => "kv-lease",
        }
    }

    /// The fencing token, when this guard is a KV lease.
    pub fn fencing_token(&self) -> Option<u64> {
        match self {
            CoordGuard::Lease { token, .. } => Some(*token),
            _ => None,
        }
    }

    /// A write to `key` guarded by this lease's fencing token:
    /// `Ok(false)` means the lease was reaped and re-granted past us and
    /// nothing was written. Errors on non-lease guards.
    pub fn fenced_set(&self, key: &str, value: &str) -> Result<bool> {
        match self {
            CoordGuard::Lease { kv, token, .. } => {
                kv.fenced_set(key, value, *token)
                    .map_err(|e| OrmError::Coordination {
                        mechanism: "kv-lease",
                        detail: e.to_string(),
                    })
            }
            other => Err(OrmError::Coordination {
                mechanism: other.mechanism(),
                detail: "fenced_set requires a kv-lease guard".into(),
            }),
        }
    }

    /// Release the guard.
    pub fn unlock(mut self) -> Result<()> {
        self.release()
    }

    fn release(&mut self) -> Result<()> {
        match self {
            CoordGuard::Advisory {
                db,
                session,
                key,
                released,
            } => {
                if !*released {
                    *released = true;
                    db.advisory_unlock(*session, *key);
                    db.end_session(*session);
                }
                Ok(())
            }
            CoordGuard::Table { db, id, released } => {
                if *released {
                    return Ok(());
                }
                *released = true;
                db.run(db.default_isolation(), |t| {
                    t.update(LOCK_TABLE, *id, &[("locked", false.into())])
                })
                .map(|_| ())
                .map_err(|e| OrmError::Coordination {
                    mechanism: "db-table-fallback",
                    detail: e.to_string(),
                })
            }
            CoordGuard::Lease {
                kv,
                key,
                owner,
                released,
                ..
            } => {
                if *released {
                    return Ok(());
                }
                *released = true;
                // Checked release (§3.4.2): only delete while still the
                // holder, atomically via WATCH/MULTI — an expired-and-
                // stolen lease must not have its new holder evicted.
                let mut session = kv.session();
                session.watch(key);
                let holder = session.get(key).map_err(|e| OrmError::Coordination {
                    mechanism: "kv-lease",
                    detail: e.to_string(),
                })?;
                if holder.as_deref() == Some(owner.as_str()) {
                    session.multi();
                    session.del(key);
                    let _ = session.exec().map_err(|e| OrmError::Coordination {
                        mechanism: "kv-lease",
                        detail: e.to_string(),
                    })?;
                }
                Ok(())
            }
        }
    }
}

impl Drop for CoordGuard {
    fn drop(&mut self) {
        let _ = self.release();
    }
}

impl std::fmt::Debug for CoordGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordGuard")
            .field("mechanism", &self.mechanism())
            .field("fencing_token", &self.fencing_token())
            .finish_non_exhaustive()
    }
}

/// The coordination façade: one interface over KV leases, advisory
/// locks, the database-table fallback, and in-transaction hints.
#[derive(Clone)]
pub struct Coordinator {
    db: Database,
    kv: Option<Client>,
    support: CoordSupport,
}

impl Coordinator {
    /// A façade over `db` assuming full hint support and no KV substrate.
    pub fn new(db: Database) -> Self {
        Self {
            db,
            kv: None,
            support: CoordSupport::full(),
        }
    }

    /// Attach a KV client; [`lease`](Self::lease) routes to it.
    pub fn with_kv(mut self, kv: Client) -> Self {
        self.kv = Some(kv);
        self
    }

    /// Pretend the engine lacks some hints, to exercise fallbacks.
    pub fn with_support(mut self, support: CoordSupport) -> Self {
        self.support = support;
        self
    }

    /// The capability flags this façade routes around.
    pub fn support(&self) -> CoordSupport {
        self.support
    }

    /// Acquire a fenced TTL lease on `key` (blocking, bounded by an
    /// internal acquisition timeout). Routed to the KV substrate when one
    /// is attached; otherwise degrades to [`user_lock`](Self::user_lock)
    /// — same mutual exclusion, no TTL self-expiry, which is strictly
    /// safer.
    pub fn lease(&self, key: &str, owner: &str, ttl: Duration) -> Result<CoordGuard> {
        let Some(kv) = &self.kv else {
            return self.user_lock(key);
        };
        let policy = RetryPolicy::fixed(ACQUIRE_POLL, ACQUIRE_TIMEOUT);
        let token = policy
            .run(
                "coord-lease",
                None,
                |_e: &OrmError| true,
                |_attempt| {
                    match kv.acquire_lease(key, owner, ttl) {
                        Ok(Some(token)) => Ok(token),
                        Ok(None) => Err(OrmError::Coordination {
                            mechanism: "kv-lease",
                            detail: "busy".into(),
                        }),
                        Err(e) => {
                            // Ambiguous reply (§3.4.1): the grant may have
                            // landed before the connection dropped — read
                            // our token back before retrying.
                            match kv.lease_token(key, owner) {
                                Ok(Some(token)) => Ok(token),
                                _ => Err(OrmError::Coordination {
                                    mechanism: "kv-lease",
                                    detail: e.to_string(),
                                }),
                            }
                        }
                    }
                },
            )
            .map_err(|give_up| OrmError::Coordination {
                mechanism: "kv-lease",
                detail: format!("acquisition timed out: {}", give_up.error),
            })?;
        Ok(CoordGuard::Lease {
            kv: kv.clone(),
            key: key.to_string(),
            owner: owner.to_string(),
            token,
            released: false,
        })
    }

    /// Explicit user lock on an application-chosen key (blocking). Uses
    /// the engine's advisory locks when available; otherwise the
    /// database-table fallback the paper calls for.
    pub fn user_lock(&self, key: &str) -> Result<CoordGuard> {
        if self.support.user_locks {
            let session = self.db.new_session();
            let key_hash = hash_key(key);
            self.db
                .advisory_lock(session, key_hash)
                .map_err(|e| OrmError::Coordination {
                    mechanism: "advisory",
                    detail: e.to_string(),
                })?;
            Ok(CoordGuard::Advisory {
                db: self.db.clone(),
                session,
                key: key_hash,
                released: false,
            })
        } else {
            self.table_fallback_lock(key)
        }
    }

    /// Try-variant of [`user_lock`](Self::user_lock): `None` when held
    /// elsewhere. On the table fallback a single acquisition attempt is
    /// made (no polling).
    pub fn try_user_lock(&self, key: &str) -> Result<Option<CoordGuard>> {
        if self.support.user_locks {
            let session = self.db.new_session();
            let key_hash = hash_key(key);
            if self.db.try_advisory_lock(session, key_hash) {
                Ok(Some(CoordGuard::Advisory {
                    db: self.db.clone(),
                    session,
                    key: key_hash,
                    released: false,
                }))
            } else {
                self.db.end_session(session);
                Ok(None)
            }
        } else {
            let id = hash_key(key);
            self.ensure_lock_table()?;
            Ok(self
                .try_acquire_lock_row(key, id)?
                .then(|| CoordGuard::Table {
                    db: self.db.clone(),
                    id,
                    released: false,
                }))
        }
    }

    /// Explicit row lock inside an open transaction (SQL Server's
    /// `HOLDLOCK`-style hint; our engines spell it `FOR UPDATE`). The
    /// lock persists until the transaction ends.
    pub fn row_lock(&self, txn: &mut Transaction, table: &str, id: i64) -> Result<()> {
        if !self.support.row_locks {
            return Err(OrmError::Coordination {
                mechanism: "row-lock",
                detail: "engine does not support explicit row locks".into(),
            });
        }
        txn.get_for_update(table, id)?;
        Ok(())
    }

    /// Explicit table lock inside an open transaction.
    pub fn table_lock(&self, txn: &mut Transaction, table: &str, mode: LockMode) -> Result<()> {
        if !self.support.table_locks {
            return Err(OrmError::Coordination {
                mechanism: "table-lock",
                detail: "engine does not support explicit table locks".into(),
            });
        }
        txn.lock_table(table, mode)?;
        Ok(())
    }

    /// Escrow reservation on a budget column (`stock >= 0` split into
    /// local reservations): the fast path is one lock-free atomic on the
    /// engine's escrow ledger — no row lock, no validated read — and
    /// contenders only coordinate when the remaining budget is nearly
    /// exhausted. The caller's transaction must apply the matching
    /// `add_delta(column, -amount)` and then
    /// [`confirm`](adhoc_storage::EscrowReservation::confirm) the guard
    /// (or drop it on abort,
    /// [`abandon`](adhoc_storage::EscrowReservation::abandon) it on an
    /// ambiguous outcome). Exhaustion surfaces as
    /// [`DbError::EscrowExhausted`](adhoc_storage::DbError) — not
    /// retryable; report "out of stock" or fall back to a coordinated
    /// path.
    pub fn reserve(
        &self,
        table: &str,
        id: i64,
        column: &str,
        amount: i64,
    ) -> Result<adhoc_storage::EscrowReservation> {
        Ok(self.db.escrow_reserve(table, id, column, amount)?)
    }

    /// Escrow deposit into a budget column: a committed commutative
    /// increment plus the matching ledger credit, ordered so the credit
    /// is never double-counted.
    pub fn deposit(&self, table: &str, id: i64, column: &str, amount: i64) -> Result<()> {
        Ok(self.db.escrow_deposit(table, id, column, amount)?)
    }

    /// Per-operation isolation hint: read this row at Read Committed even
    /// inside a snapshot transaction (Table 7b — §3.1.1's non-critical
    /// reads can opt out of the strict level).
    pub fn read_committed_read(
        &self,
        txn: &mut Transaction,
        table: &str,
        id: i64,
    ) -> Result<Option<Row>> {
        if !self.support.per_op_isolation {
            return Err(OrmError::Coordination {
                mechanism: "per-op-isolation",
                detail: "engine does not support per-operation isolation".into(),
            });
        }
        Ok(txn.get_read_committed(table, id)?)
    }

    fn table_fallback_lock(&self, key: &str) -> Result<CoordGuard> {
        self.ensure_lock_table()?;
        let id = hash_key(key);
        let policy = RetryPolicy::fixed(ACQUIRE_POLL, ACQUIRE_TIMEOUT);
        policy
            .run(
                "coord-table-lock",
                None,
                |e: &OrmError| {
                    matches!(
                        e,
                        OrmError::Coordination {
                            mechanism: "db-table-fallback",
                            ..
                        }
                    )
                },
                |_attempt| match self.try_acquire_lock_row(key, id) {
                    Ok(true) => Ok(()),
                    Ok(false) => Err(OrmError::Coordination {
                        mechanism: "db-table-fallback",
                        detail: "busy".into(),
                    }),
                    Err(e) => Err(e),
                },
            )
            .map_err(|give_up| match give_up.error {
                OrmError::Coordination {
                    mechanism: "db-table-fallback",
                    ..
                } if give_up.retryable => OrmError::Coordination {
                    mechanism: "db-table-fallback",
                    detail: "acquisition timed out".into(),
                },
                other => other,
            })?;
        Ok(CoordGuard::Table {
            db: self.db.clone(),
            id,
            released: false,
        })
    }

    /// One acquisition attempt: the boot-safe read-check-write idiom.
    fn try_acquire_lock_row(&self, key: &str, id: i64) -> Result<bool> {
        let schema = self.db.schema(LOCK_TABLE)?;
        Ok(self.db.run(self.db.default_isolation(), |txn| {
            match txn.get_for_update(LOCK_TABLE, id)? {
                None => {
                    txn.insert(
                        LOCK_TABLE,
                        &[
                            ("id", Value::Int(id)),
                            ("key", key.into()),
                            ("locked", true.into()),
                        ],
                    )?;
                    Ok(true)
                }
                Some(row) => {
                    if row.get_bool(&schema, "locked")? {
                        Ok(false)
                    } else {
                        txn.update(LOCK_TABLE, id, &[("locked", true.into())])?;
                        Ok(true)
                    }
                }
            }
        })?)
    }

    fn ensure_lock_table(&self) -> Result<()> {
        let schema = Schema::new(
            LOCK_TABLE,
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("key", ColumnType::Str),
                Column::new("locked", ColumnType::Bool),
            ],
            "id",
        )
        .expect("static schema");
        match self.db.create_table(schema) {
            Ok(()) | Err(DbError::DuplicateTable { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("support", &self.support)
            .field("has_kv", &self.kv.is_some())
            .finish_non_exhaustive()
    }
}

/// FNV-1a of an application lock key into the advisory key space — the
/// same mapping `pg_advisory_lock(hashtext(...))` deployments use.
pub fn hash_key(key: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & (i64::MAX as u64)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_kv::Store;
    use adhoc_sim::{LatencyModel, RealClock};
    use adhoc_storage::EngineProfile;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn db() -> Database {
        Database::in_memory(EngineProfile::PostgresLike)
    }

    fn kv() -> Client {
        Client::new(Store::new(), RealClock::shared(), LatencyModel::zero())
    }

    #[test]
    fn user_lock_routes_to_advisory() {
        let coord = Coordinator::new(db());
        let g = coord.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "advisory");
        assert!(coord.try_user_lock("checkout:42").unwrap().is_none());
        g.unlock().unwrap();
        assert!(coord.try_user_lock("checkout:42").unwrap().is_some());
    }

    #[test]
    fn user_lock_falls_back_to_lock_table() {
        let coord = Coordinator::new(db()).with_support(CoordSupport::without_user_locks());
        let g = coord.user_lock("checkout:42").unwrap();
        assert_eq!(g.mechanism(), "db-table-fallback");
        assert!(coord.try_user_lock("checkout:42").unwrap().is_none());
        g.unlock().unwrap();
        let g2 = coord.try_user_lock("checkout:42").unwrap().unwrap();
        assert_eq!(g2.mechanism(), "db-table-fallback");
    }

    #[test]
    fn lease_routes_to_kv_with_fencing() {
        let coord = Coordinator::new(db()).with_kv(kv());
        let g = coord
            .lease("job:7", "worker-a", Duration::from_secs(5))
            .unwrap();
        assert_eq!(g.mechanism(), "kv-lease");
        let token = g.fencing_token().unwrap();
        assert!(g.fenced_set("job:7:result", "done").unwrap());
        // A second, later lease on another key gets a higher token.
        let g2 = coord
            .lease("job:8", "worker-a", Duration::from_secs(5))
            .unwrap();
        assert!(g2.fencing_token().unwrap() > 0);
        let _ = token;
    }

    #[test]
    fn lease_degrades_to_user_lock_without_kv() {
        let coord = Coordinator::new(db());
        let g = coord
            .lease("job:7", "worker-a", Duration::from_secs(5))
            .unwrap();
        assert_eq!(g.mechanism(), "advisory");
        assert!(g.fencing_token().is_none());
    }

    #[test]
    fn lease_release_is_checked_not_blind() {
        let clock = std::sync::Arc::new(adhoc_sim::VirtualClock::new());
        let client = Client::new(Store::new(), clock.clone(), LatencyModel::zero());
        let coord = Coordinator::new(db()).with_kv(client.clone());
        let g = coord
            .lease("job:9", "worker-a", Duration::from_millis(10))
            .unwrap();
        // The lease expires and another worker takes it.
        clock.advance(Duration::from_millis(20));
        let g2 = coord
            .lease("job:9", "worker-b", Duration::from_secs(5))
            .unwrap();
        // Worker A's (stale) release must not evict worker B.
        g.unlock().unwrap();
        assert_eq!(client.get("job:9").unwrap().as_deref(), Some("worker-b"));
        drop(g2);
    }

    #[test]
    fn fallback_lock_blocks_until_released() {
        let coord = std::sync::Arc::new(
            Coordinator::new(db()).with_support(CoordSupport::without_user_locks()),
        );
        let g = coord.user_lock("k").unwrap();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let c2 = std::sync::Arc::clone(&coord);
        let d2 = std::sync::Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let g2 = c2.user_lock("k").unwrap();
            d2.store(true, Ordering::SeqCst);
            g2.unlock().unwrap();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst));
        g.unlock().unwrap();
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_releases_every_mechanism() {
        let coord = Coordinator::new(db()).with_kv(kv());
        {
            let _g = coord.user_lock("k").unwrap();
        }
        assert!(coord.try_user_lock("k").unwrap().is_some());
        {
            let _g = coord.lease("l", "w", Duration::from_secs(5)).unwrap();
        }
        // Released lease key is gone, so a new owner acquires instantly.
        let g = coord.lease("l", "w2", Duration::from_secs(5)).unwrap();
        assert_eq!(g.mechanism(), "kv-lease");
    }

    #[test]
    fn hint_capability_gates_error_cleanly() {
        let database = db();
        let coord = Coordinator::new(database.clone()).with_support(CoordSupport {
            user_locks: true,
            table_locks: false,
            row_locks: false,
            per_op_isolation: false,
        });
        let mut txn = database.begin();
        assert!(coord.row_lock(&mut txn, "any", 1).is_err());
        assert!(coord.table_lock(&mut txn, "any", LockMode::Shared).is_err());
        assert!(coord.read_committed_read(&mut txn, "any", 1).is_err());
        txn.abort();
    }
}
